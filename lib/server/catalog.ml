module Z = Sqp_zorder
module R = Sqp_relalg
module O = Sqp_optimizer
module Live = Sqp_btree.Live

(* {1 Idempotency dedup window}

   Per client: the encoded response bytes of recently answered keyed
   requests, so a retry of (client_id, request_seq) replays the original
   answer byte for byte instead of re-executing.  Bounded two ways:
   [dedup_window] seqs per client (older keys age out as the client's
   counter advances) and [dedup_max_clients] clients (LRU evicted). *)

let dedup_window = 128

let dedup_max_clients = 256

type dedup_slot = Pending | Done of string

type dedup_client = {
  slots : (int, dedup_slot) Hashtbl.t;
  mutable max_seq : int;
  mutable last_used : int;  (* LRU tick *)
}

type dedup_outcome = Fresh | Replay of string | In_flight | Too_old

type t = {
  space : Z.Space.t;
  shard : (int * int) option;
      (* owned z interval when this catalog is a cluster shard's slice *)
  points_rel : R.Relation.t;  (* "P": id, z, x0..xk — range-search side *)
  relations : (string * R.Plan.t) list;
  lives : (string * int Live.t) list;  (* mutable tables, payload = id *)
  prepared : int Sqp_core.Range_search.prepared Lazy.t;
      (* the z-sorted point sequence backing the direct range path *)
  pindex : int Sqp_btree.Zindex.t Lazy.t;
      (* front-coded packed index over the same points: the measured
         entries-per-page that recalibrates the page cost model *)
  m : Mutex.t;  (* guards the mutable fields below *)
  mutable stats : O.Stats.t option;
  mutable packed : (string * (int Sqp_btree.Zindex.t * int)) list;
      (* per live table: last packed index and the Live.seq it reflects *)
  dedup : (int, dedup_client) Hashtbl.t;
  mutable dedup_tick : int;
}

(* Byte budget of the packed point index's pages.  Small enough that
   the standard workload spans enough pages for the 5.3.1 block model
   to have texture; the compression ratio is budget-independent to
   first order. *)
let pindex_page_bytes = 512

let make ?(lives = []) ?shard ~space ~points ~relations () =
  let points_rel = R.Query.points_relation space points in
  let relations =
    if List.mem_assoc "P" relations then relations
    else relations @ [ ("P", R.Plan.Scan points_rel) ]
  in
  let swapped = lazy (Array.of_list (List.map (fun (id, p) -> (p, id)) points)) in
  let prepared =
    lazy (Sqp_core.Range_search.prepare space (Lazy.force swapped))
  in
  let pindex =
    lazy
      (Sqp_btree.Zindex.of_points ~page_budget:pindex_page_bytes space
         (Lazy.force swapped))
  in
  {
    space;
    shard;
    points_rel;
    relations;
    lives;
    prepared;
    pindex;
    m = Mutex.create ();
    stats = None;
    packed = [];
    dedup = Hashtbl.create 16;
    dedup_tick = 0;
  }

let of_seeded ?tuples_per_page ?pool_capacity ?shard ?(live_empty = false)
    (wk : Sqp_workload.Seeded.t) =
  let module W = Sqp_workload.Seeded in
  let space = wk.W.space in
  (match shard with
  | Some (zlo, zhi) ->
      if not (Z.Zrange.usable space) then
        invalid_arg "Catalog.of_seeded: shard slicing needs a usable z space";
      if zlo > zhi || zlo < 0 then invalid_arg "Catalog.of_seeded: bad shard range"
  | None -> ());
  (* Points are pixels: each belongs to exactly one shard.  Join-side
     elements carry a z {e interval}: an element goes to every shard its
     interval overlaps (boundary-element replication), which is what
     lets a scatter-gather join find a pair whose containing element
     spans a shard cut — the containing element is present wherever the
     contained one lives. *)
  let point_in_shard p =
    match shard with
    | None -> true
    | Some (zlo, zhi) ->
        let z = Shard_map.z_of_point space p in
        zlo <= z && z <= zhi
  in
  let element_in_shard e =
    match shard with
    | None -> true
    | Some (zlo, zhi) ->
        let lo, hi = Z.Zrange.of_element space e in
        lo <= zhi && hi >= zlo
  in
  let points =
    List.filter
      (fun (_, p) -> point_in_shard p)
      (Array.to_list (Array.mapi (fun i p -> (i, p)) wk.W.points))
  in
  let restrict rel =
    match shard with
    | None -> rel
    | Some _ ->
        let schema = R.Relation.schema rel in
        R.Relation.make ~name:(R.Relation.name rel) schema
          (List.filter
             (fun tu ->
               element_in_shard (R.Value.to_zval (R.Relation.get tu schema "z")))
             (R.Relation.tuples rel))
  in
  let stored name renames objects =
    R.Stored.store ?tuples_per_page ?pool_capacity
      (R.Ops.rename renames
         (restrict
            (R.Query.decompose_relation ~name ~options:wk.W.decompose_options
               space objects)))
  in
  let r = stored "R" [ ("id", "rid"); ("z", "zr") ] wk.W.left_objects in
  let s = stored "S" [ ("id", "sid"); ("z", "zs") ] wk.W.right_objects in
  (* "L": the live ingest table, pre-seeded with the same points as "P"
     (payload = id) so mutation traffic has something to land on.
     [live_empty] starts it empty instead — a rebalance target begins
     with no live entries and receives the moving range as a stream. *)
  let live =
    Live.create ~encode:string_of_int ~decode:int_of_string space
  in
  if not live_empty then
    ignore
      (Live.apply live (List.map (fun (id, p) -> Live.Insert (p, id)) points));
  make ~lives:[ ("L", live) ] ?shard ~space ~points
    ~relations:[ ("R", R.Plan.Scan_stored r); ("S", R.Plan.Scan_stored s) ]
    ()

let space t = t.space

let shard_range t = t.shard

let names t = List.sort compare (List.map fst t.relations)

let resolve t name = List.assoc_opt name t.relations

let live_names t = List.sort compare (List.map fst t.lives)

let live t name = List.assoc_opt name t.lives

let prepared_points t = Lazy.force t.prepared

let point_index t = Lazy.force t.pindex

(* {1 Statistics and caches} *)

let stats t =
  Mutex.lock t.m;
  let s = t.stats in
  Mutex.unlock t.m;
  s

let analyze t =
  let lives = List.map (fun (name, lv) -> (name, Live.length lv)) t.lives in
  let st = O.Stats.analyze ~lives ~space:t.space t.relations in
  (* Part of the ANALYZE pass: build the packed point index so its
     measured entries-per-page (the compressed density) is available to
     the page cost model from here on. *)
  ignore (Lazy.force t.pindex);
  Mutex.lock t.m;
  t.stats <- Some st;
  Mutex.unlock t.m;
  st

let note_packed t name idx seq =
  Mutex.lock t.m;
  t.packed <- (name, (idx, seq)) :: List.remove_assoc name t.packed;
  Mutex.unlock t.m

let packed_index t name =
  Mutex.lock t.m;
  let p = List.assoc_opt name t.packed in
  Mutex.unlock t.m;
  p

(* {1 Dedup window} *)

let dedup_begin t ~client_id ~seq =
  Mutex.lock t.m;
  t.dedup_tick <- t.dedup_tick + 1;
  let entry =
    match Hashtbl.find_opt t.dedup client_id with
    | Some e -> e
    | None ->
        if Hashtbl.length t.dedup >= dedup_max_clients then begin
          (* LRU eviction: linear scan is fine at 256 clients. *)
          let victim =
            Hashtbl.fold
              (fun id e acc ->
                match acc with
                | Some (_, lu) when lu <= e.last_used -> acc
                | _ -> Some (id, e.last_used))
              t.dedup None
          in
          match victim with
          | Some (id, _) -> Hashtbl.remove t.dedup id
          | None -> ()
        end;
        let e = { slots = Hashtbl.create 16; max_seq = 0; last_used = 0 } in
        Hashtbl.add t.dedup client_id e;
        e
  in
  entry.last_used <- t.dedup_tick;
  let outcome =
    if entry.max_seq - seq >= dedup_window then Too_old
    else
      match Hashtbl.find_opt entry.slots seq with
      | Some Pending -> In_flight
      | Some (Done payload) -> Replay payload
      | None ->
          Hashtbl.replace entry.slots seq Pending;
          if seq > entry.max_seq then begin
            entry.max_seq <- seq;
            let floor = entry.max_seq - dedup_window in
            let old =
              Hashtbl.fold
                (fun s _ acc -> if s <= floor then s :: acc else acc)
                entry.slots []
            in
            List.iter (Hashtbl.remove entry.slots) old
          end;
          Fresh
  in
  Mutex.unlock t.m;
  outcome

let dedup_commit t ~client_id ~seq payload =
  Mutex.lock t.m;
  (match Hashtbl.find_opt t.dedup client_id with
  | Some entry -> Hashtbl.replace entry.slots seq (Done payload)
  | None -> ());
  Mutex.unlock t.m

let dedup_abort t ~client_id ~seq =
  Mutex.lock t.m;
  (match Hashtbl.find_opt t.dedup client_id with
  | Some entry -> (
      match Hashtbl.find_opt entry.slots seq with
      | Some Pending -> Hashtbl.remove entry.slots seq
      | Some (Done _) | None -> ())
  | None -> ());
  Mutex.unlock t.m

let dedup_clients t =
  Mutex.lock t.m;
  let n = Hashtbl.length t.dedup in
  Mutex.unlock t.m;
  n

(* {1 Degraded-mode recovery} *)

let lives_ok t = List.for_all (fun (_, lv) -> Live.durable_ok lv) t.lives

let recover_lives t =
  List.filter_map
    (fun (name, lv) ->
      match Live.recover lv with
      | () -> None
      | exception e -> Some (name, e))
    t.lives

let point_histogram t =
  match stats t with
  | None -> None
  | Some st -> (
      match O.Stats.find st "P" with
      | Some rs -> (
          match List.assoc_opt "z" rs.O.Stats.z_columns with
          | Some h -> Some (st, h)
          | None -> None)
      | None -> None)

(* {1 Plans} *)

let validate_bounds t ~lo ~hi =
  let dims = Z.Space.dims t.space and side = Z.Space.side t.space in
  if Array.length lo <> dims || Array.length hi <> dims then
    invalid_arg
      (Printf.sprintf "range bounds must have %d coordinates, got %d/%d" dims
         (Array.length lo) (Array.length hi));
  Array.iteri
    (fun i c ->
      if c < 0 || c >= side || hi.(i) < 0 || hi.(i) >= side then
        invalid_arg
          (Printf.sprintf "range bounds outside the %dx%d grid" side side))
    lo;
  Sqp_geom.Box.make ~lo ~hi (* raises on inverted bounds *)

let coords t = List.init (Z.Space.dims t.space) (fun i -> Printf.sprintf "x%d" i)

let refine_pred t ~lo ~hi =
  let cs = coords t in
  R.Plan.pred
    (Printf.sprintf "refine box [%s]"
       (String.concat "; "
          (List.mapi (fun i c -> Printf.sprintf "%d<=%s<=%d" lo.(i) c hi.(i)) cs)))
    cs
    (fun tu schema ->
      let ok = ref true in
      List.iteri
        (fun i c ->
          let v = R.Value.to_int (R.Relation.get tu schema c) in
          if v < lo.(i) || v > hi.(i) then ok := false)
        cs;
      !ok)

(* The cover of the box at the given decompose budget, as the join's
   right-hand relation (attribute "zb"). *)
let cover_relation t ?max_level ~lo ~hi () =
  let options = { Z.Decompose.default_options with Z.Decompose.max_level } in
  let elements = Z.Decompose.decompose_box ~options t.space ~lo ~hi in
  R.Relation.make ~name:"B"
    (R.Schema.make [ ("zb", R.Value.TZval) ])
    (List.map (fun e -> [| R.Value.Zval e |]) elements)

let range_decision t ~lo ~hi =
  match point_histogram t with
  | None -> None
  | Some (_, hist) ->
      let alts =
        O.Cost.range_alternatives ~space:t.space ~hist
          ~points:(R.Relation.cardinality t.points_rel)
          ~lo ~hi ()
      in
      Some alts

(* The cheapest decompose budget under the {e plan executor's} cost
   function (method-independent: the plan's join does not skip). *)
let best_plan_budget t alts =
  let points = R.Relation.cardinality t.points_rel in
  let seen = Hashtbl.create 8 in
  List.fold_left
    (fun best (a : O.Cost.range_alternative) ->
      if Hashtbl.mem seen a.O.Cost.max_level then best
      else begin
        Hashtbl.add seen a.O.Cost.max_level ();
        let c = O.Cost.plan_path_cost ~points a in
        match best with
        | Some (_, bc) when bc <= c -> best
        | _ -> Some (a, c)
      end)
    None alts

(* {1 Page cost recalibration}

   The paper's 5.3.1 block model predicts pages touched from the page
   count; front-coded pages hold more entries than the fixed-width
   assumption, so the calibrated prediction uses the density measured
   on the packed point index instead. *)

type page_estimate = {
  rows : int;
  entries_per_page : float;
  compression_ratio : float;
  fixed_pages : int;
  compressed_pages : int;
  fixed_predicted : float;
  learned_predicted : float;
}

let page_estimate t ~lo ~hi =
  match stats t with
  | None -> None  (* the density is measured by the ANALYZE pass *)
  | Some _ ->
      let idx = Lazy.force t.pindex in
      let rows = Sqp_btree.Zindex.length idx in
      let epp = Sqp_btree.Zindex.avg_leaf_entries idx in
      let ratio, fixed_per_page =
        match Sqp_btree.Zindex.compression_stats idx with
        | Some c ->
            ( c.Sqp_btree.Zindex.ratio,
              c.Sqp_btree.Zindex.fixed_entries_per_leaf )
        | None -> (1.0, Float.max 1.0 epp)
      in
      let fixed_pages =
        if rows = 0 then 0
        else
          max 1
            (int_of_float (ceil (float_of_int rows /. Float.max 1.0 fixed_per_page)))
      in
      let fixed_predicted =
        O.Cost.predicted_range_pages ~n_pages:fixed_pages ~space:t.space ~lo
          ~hi ()
      in
      let learned_predicted =
        O.Cost.predicted_range_pages ~entries_per_page:epp ~rows
          ~n_pages:fixed_pages ~space:t.space ~lo ~hi ()
      in
      Some
        {
          rows;
          entries_per_page = epp;
          compression_ratio = ratio;
          fixed_pages;
          compressed_pages = Sqp_btree.Zindex.data_page_count idx;
          fixed_predicted;
          learned_predicted;
        }

type range_access =
  | Direct of O.Cost.range_alternative
  | Planned

let range_access t ~lo ~hi =
  match range_decision t ~lo ~hi with
  | None -> Planned
  | Some alts -> (
      (* [alts] is sorted by ascending direct-kernel cost, so the first
         exact entry is the cheapest exact method. *)
      let exact =
        List.find_opt (fun a -> a.O.Cost.max_level = None) alts
      in
      match (exact, best_plan_budget t alts) with
      | Some e, Some (_, plan_cost) when e.O.Cost.cost <= plan_cost -> Direct e
      | Some e, None -> Direct e
      | _ -> Planned)

let range_plan t ~lo ~hi =
  ignore (validate_bounds t ~lo ~hi);
  let mk ?max_level ~refine () =
    let b = cover_relation t ?max_level ~lo ~hi () in
    let join =
      R.Plan.Spatial_join
        {
          zl = "z";
          zr = "zb";
          left = R.Plan.Scan t.points_rel;
          right = R.Plan.Scan b;
          impl = None;
        }
    in
    let body = if refine then R.Plan.Select (refine_pred t ~lo ~hi, join) else join in
    R.Plan.Project (coords t, body)
  in
  match range_decision t ~lo ~hi with
  | None -> mk ~refine:false ()  (* no statistics: pixel-exact, as ever *)
  | Some alts -> (
      match best_plan_budget t alts with
      | None -> mk ~refine:false ()
      | Some (best, _) ->
          mk ?max_level:best.O.Cost.max_level ~refine:best.O.Cost.needs_refine ())

let overlap_plan t =
  match (resolve t "R", resolve t "S") with
  | Some r, Some s ->
      R.Plan.Project
        ( [ "rid"; "sid" ],
          R.Plan.Spatial_join { zl = "zr"; zr = "zs"; left = r; right = s; impl = None } )
  | _ -> invalid_arg "Catalog.overlap_plan: catalog lacks R or S"

let health_detail t =
  let buf = Buffer.create 128 in
  let healthy = ref true in
  Printf.bprintf buf "space: %dd, side %d; relations:" (Z.Space.dims t.space)
    (Z.Space.side t.space);
  List.iter
    (fun name ->
      match resolve t name with
      | None -> ()
      | Some plan -> (
          match R.Plan.schema plan with
          | schema ->
              Printf.bprintf buf " %s(%s)~%.0f" name
                (String.concat "," (R.Schema.names schema))
                (R.Plan.estimated_rows plan)
          | exception _ ->
              healthy := false;
              Printf.bprintf buf " %s(BROKEN SCHEMA)" name))
    (names t);
  List.iter
    (fun name ->
      match live t name with
      | None -> ()
      | Some lv ->
          let poisoned = not (Live.durable_ok lv) in
          if poisoned then healthy := false;
          Printf.bprintf buf " %s(live%s)=%d@%d" name
            (if poisoned then ",store POISONED" else "")
            (Live.length lv) (Live.seq lv))
    (live_names t);
  (match stats t with
  | None -> Printf.bprintf buf "; stats: none (run analyze)"
  | Some st ->
      Printf.bprintf buf "; stats: %d relations analyzed"
        (List.length st.O.Stats.relations));
  (!healthy, Buffer.contents buf)
