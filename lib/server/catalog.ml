module Z = Sqp_zorder
module R = Sqp_relalg
module Live = Sqp_btree.Live

type t = {
  space : Z.Space.t;
  points_rel : R.Relation.t;  (* "P": id, z, x0..xk — range-search side *)
  relations : (string * R.Plan.t) list;
  lives : (string * int Live.t) list;  (* mutable tables, payload = id *)
}

let make ?(lives = []) ~space ~points ~relations () =
  let points_rel = R.Query.points_relation space points in
  let relations =
    if List.mem_assoc "P" relations then relations
    else relations @ [ ("P", R.Plan.Scan points_rel) ]
  in
  { space; points_rel; relations; lives }

let of_seeded ?tuples_per_page ?pool_capacity (wk : Sqp_workload.Seeded.t) =
  let module W = Sqp_workload.Seeded in
  let space = wk.W.space in
  let points =
    Array.to_list (Array.mapi (fun i p -> (i, p)) wk.W.points)
  in
  let stored name renames objects =
    R.Stored.store ?tuples_per_page ?pool_capacity
      (R.Ops.rename renames
         (R.Query.decompose_relation ~name ~options:wk.W.decompose_options space
            objects))
  in
  let r = stored "R" [ ("id", "rid"); ("z", "zr") ] wk.W.left_objects in
  let s = stored "S" [ ("id", "sid"); ("z", "zs") ] wk.W.right_objects in
  (* "L": the live ingest table, pre-seeded with the same points as "P"
     (payload = id) so mutation traffic has something to land on. *)
  let live =
    Live.create ~encode:string_of_int ~decode:int_of_string space
  in
  ignore (Live.apply live (List.map (fun (id, p) -> Live.Insert (p, id)) points));
  make ~lives:[ ("L", live) ] ~space ~points
    ~relations:[ ("R", R.Plan.Scan_stored r); ("S", R.Plan.Scan_stored s) ]
    ()

let space t = t.space

let names t = List.sort compare (List.map fst t.relations)

let resolve t name = List.assoc_opt name t.relations

let live_names t = List.sort compare (List.map fst t.lives)

let live t name = List.assoc_opt name t.lives

let range_plan t ~lo ~hi =
  let dims = Z.Space.dims t.space and side = Z.Space.side t.space in
  if Array.length lo <> dims || Array.length hi <> dims then
    invalid_arg
      (Printf.sprintf "range bounds must have %d coordinates, got %d/%d" dims
         (Array.length lo) (Array.length hi));
  Array.iteri
    (fun i c ->
      if c < 0 || c >= side || hi.(i) < 0 || hi.(i) >= side then
        invalid_arg
          (Printf.sprintf "range bounds outside the %dx%d grid" side side))
    lo;
  let box = Sqp_geom.Box.make ~lo ~hi (* raises on inverted bounds *) in
  let b =
    R.Ops.rename [ ("z", "zb") ] (R.Query.box_relation t.space box)
  in
  let coords = List.init dims (fun i -> Printf.sprintf "x%d" i) in
  R.Plan.Project
    ( coords,
      R.Plan.Spatial_join
        {
          zl = "z";
          zr = "zb";
          left = R.Plan.Scan t.points_rel;
          right = R.Plan.Scan b;
        } )

let overlap_plan t =
  match (resolve t "R", resolve t "S") with
  | Some r, Some s ->
      R.Plan.Project
        ( [ "rid"; "sid" ],
          R.Plan.Spatial_join { zl = "zr"; zr = "zs"; left = r; right = s } )
  | _ -> invalid_arg "Catalog.overlap_plan: catalog lacks R or S"

let health_detail t =
  let buf = Buffer.create 128 in
  let healthy = ref true in
  Printf.bprintf buf "space: %dd, side %d; relations:" (Z.Space.dims t.space)
    (Z.Space.side t.space);
  List.iter
    (fun name ->
      match resolve t name with
      | None -> ()
      | Some plan -> (
          match R.Plan.schema plan with
          | schema ->
              Printf.bprintf buf " %s(%s)~%.0f" name
                (String.concat "," (R.Schema.names schema))
                (R.Plan.estimated_rows plan)
          | exception _ ->
              healthy := false;
              Printf.bprintf buf " %s(BROKEN SCHEMA)" name))
    (names t);
  List.iter
    (fun name ->
      match live t name with
      | None -> ()
      | Some lv ->
          Printf.bprintf buf " %s(live)=%d@%d" name (Live.length lv) (Live.seq lv))
    (live_names t);
  (!healthy, Buffer.contents buf)
