(** What a server instance serves: a space, a point set for range
    queries, named relations that wire plans may [Scan], and live
    tables that absorb insert/delete traffic.

    The catalog's shape is built once at startup: the binding of names
    is immutable and concurrent sessions share it (stored relations
    latch their buffer pools internally — see
    {!Sqp_relalg.Stored.scan}).  Live tables are the mutable exception:
    their {e contents} change under serving traffic, with writer
    serialization and snapshot reads handled inside
    {!Sqp_btree.Live}. *)

type t

val make :
  ?lives:(string * int Sqp_btree.Live.t) list ->
  space:Sqp_zorder.Space.t ->
  points:(int * Sqp_geom.Point.t) list ->
  relations:(string * Sqp_relalg.Plan.t) list ->
  unit ->
  t
(** [points] backs [Range_search] requests; [relations] resolves the
    [Scan name] leaves of wire plans.  The points are also published as
    relation ["P"] (id, z, coordinates) unless [relations] already
    binds that name.  [lives] binds mutable tables for the
    insert/delete/create-index frames (payloads are row ids). *)

val of_seeded :
  ?tuples_per_page:int -> ?pool_capacity:int -> Sqp_workload.Seeded.t -> t
(** The canonical serving catalog, built from the shared seeded
    workload: ["P"] — the point relation; ["R"] / ["S"] — the two
    spatial-join sides, decomposed and materialized onto paged stored
    relations with attributes [(rid, zr)] / [(sid, zs)], exactly as
    {!Sqp_relalg.Query.stored_overlap_plan} lays them out; and ["L"] —
    a live ingest table pre-seeded with the same points as ["P"]
    (payload = id). *)

val space : t -> Sqp_zorder.Space.t

val names : t -> string list
(** Bound relation names, sorted. *)

val resolve : t -> string -> Sqp_relalg.Plan.t option

val live_names : t -> string list
(** Bound live-table names, sorted. *)

val live : t -> string -> int Sqp_btree.Live.t option

val range_plan : t -> lo:int array -> hi:int array -> Sqp_relalg.Plan.t
(** The Section 4 range-query script as a plan: decompose the box,
    spatial-join it with the point relation on z, project the
    coordinates.
    @raise Invalid_argument if the bounds have the wrong dimensionality,
    lie outside the grid, or are inverted. *)

val overlap_plan : t -> Sqp_relalg.Plan.t
(** The canonical join over ["R"] and ["S"]: candidate overlapping
    object-id pairs [(rid, sid)] — the same plan {!of_seeded} clients
    send as [Project ["rid"; "sid"] (Spatial_join ...)].
    @raise Invalid_argument if the catalog lacks ["R"] or ["S"]. *)

val health_detail : t -> bool * string
(** A cheap self-check: every named relation's plan must produce a
    schema (catches catalog misconfiguration); reports names and
    cardinality estimates.  [(healthy, human-readable summary)]. *)
