(** What a server instance serves: a space, a point set for range
    queries, named relations that wire plans may [Scan], and live
    tables that absorb insert/delete traffic.

    The catalog's shape is built once at startup: the binding of names
    is immutable and concurrent sessions share it (stored relations
    latch their buffer pools internally — see
    {!Sqp_relalg.Stored.scan}).  Live tables are the mutable exception:
    their {e contents} change under serving traffic, with writer
    serialization and snapshot reads handled inside
    {!Sqp_btree.Live}. *)

type t

val make :
  ?lives:(string * int Sqp_btree.Live.t) list ->
  ?shard:int * int ->
  space:Sqp_zorder.Space.t ->
  points:(int * Sqp_geom.Point.t) list ->
  relations:(string * Sqp_relalg.Plan.t) list ->
  unit ->
  t
(** [points] backs [Range_search] requests; [relations] resolves the
    [Scan name] leaves of wire plans.  The points are also published as
    relation ["P"] (id, z, coordinates) unless [relations] already
    binds that name.  [lives] binds mutable tables for the
    insert/delete/create-index frames (payloads are row ids).  [shard]
    records the owned z interval when this catalog is one cluster
    shard's slice (see {!shard_range}). *)

val of_seeded :
  ?tuples_per_page:int ->
  ?pool_capacity:int ->
  ?shard:int * int ->
  ?live_empty:bool ->
  Sqp_workload.Seeded.t ->
  t
(** The canonical serving catalog, built from the shared seeded
    workload: ["P"] — the point relation; ["R"] / ["S"] — the two
    spatial-join sides, decomposed and materialized onto paged stored
    relations with attributes [(rid, zr)] / [(sid, zs)], exactly as
    {!Sqp_relalg.Query.stored_overlap_plan} lays them out; and ["L"] —
    a live ingest table pre-seeded with the same points as ["P"]
    (payload = id).

    [shard (zlo, zhi)] builds the z-range-restricted slice a cluster
    shard serves, {e locally from the same deterministic seeds} — no
    data shipping at bring-up.  Points (pixels) are kept iff their z
    value lies in the interval; join-side element rows are kept iff
    their z {e interval} overlaps it, so an element spanning a shard
    cut is replicated to every shard it overlaps (the boundary-element
    replication that keeps scatter-gather joins exact).  [live_empty]
    starts ["L"] with no entries instead of the seeded points — how a
    rebalance target begins life. *)

val space : t -> Sqp_zorder.Space.t

val shard_range : t -> (int * int) option
(** The owned z interval this catalog was sliced to, if any. *)

val names : t -> string list
(** Bound relation names, sorted. *)

val resolve : t -> string -> Sqp_relalg.Plan.t option

val live_names : t -> string list
(** Bound live-table names, sorted. *)

val live : t -> string -> int Sqp_btree.Live.t option

val prepared_points : t -> int Sqp_core.Range_search.prepared
(** The z-sorted point sequence backing the direct range-search path
    (payload = row id).  Built lazily on first use, then shared. *)

val point_index : t -> int Sqp_btree.Zindex.t
(** A front-coded packed {!Sqp_btree.Zindex} over the same points
    (payload = row id), built lazily (and always forced by {!analyze}).
    Its measured entries-per-page is the density that recalibrates the
    page cost model — see {!page_estimate}. *)

(** {1 Idempotency dedup window}

    The exactly-once half of the retry contract.  Every keyed request
    (protocol v2 idempotency key [(client_id, request_seq)]) passes
    through {!dedup_begin} before execution; the window remembers the
    {e encoded response bytes} of completed requests so a replay is
    answered byte-for-byte without re-executing — a retried [Insert]
    cannot double-apply.  Bounded per client (128 seqs — older keys age
    out as the client's counter advances) and across clients (256, LRU
    evicted).  All operations are mutex-guarded and O(1) amortized. *)

type dedup_outcome =
  | Fresh  (** first sighting: execute, then {!dedup_commit} or {!dedup_abort} *)
  | Replay of string  (** already answered: the original encoded response *)
  | In_flight  (** same key currently executing (concurrent duplicate) *)
  | Too_old  (** below the window — answer [Bad_request] *)

val dedup_begin : t -> client_id:int -> seq:int -> dedup_outcome
(** Claim a key.  [Fresh] obliges the caller to eventually
    {!dedup_commit} (cacheable outcome) or {!dedup_abort} (admission
    failure — the client may retry and succeed later). *)

val dedup_commit : t -> client_id:int -> seq:int -> string -> unit
(** Record the encoded response for a [Fresh] key. *)

val dedup_abort : t -> client_id:int -> seq:int -> unit
(** Release a [Fresh] key without an answer (the request was shed,
    timed out pre-execution, or rejected in degraded mode). *)

val dedup_clients : t -> int
(** Clients currently tracked by the window. *)

(** {1 Degraded-mode recovery} *)

val lives_ok : t -> bool
(** [false] if any live table's backing store is poisoned (failed
    commit, e.g. [ENOSPC]) — the catalog-level cue for degraded mode. *)

val recover_lives : t -> (string * exn) list
(** Try {!Sqp_btree.Live.recover} on every live table; the tables that
    {e still} fail, with their errors (empty list = fully recovered). *)

(** {1 Statistics and caches}

    The catalog's only mutable metadata: optimizer statistics written
    by {!analyze} and the packed-index cache written by online index
    builds.  Both are mutex-guarded and safe to touch from concurrent
    sessions. *)

val analyze : t -> Sqp_optimizer.Stats.t
(** Run the ANALYZE pass: execute every named relation's plan once,
    build per-relation row counts and z-prefix histograms
    ({!Sqp_optimizer.Stats.analyze}), record live-table row counts,
    store the result as the catalog's current statistics and return
    it.  Until this has run, {!stats} is [None] and every serving path
    falls back to the statistics-free behavior. *)

val stats : t -> Sqp_optimizer.Stats.t option
(** The statistics from the most recent {!analyze}, if any. *)

val note_packed : t -> string -> int Sqp_btree.Zindex.t -> int -> unit
(** [note_packed t table idx seq] caches a freshly built packed index
    for live table [table], valid as of batch sequence [seq]. *)

val packed_index : t -> string -> (int Sqp_btree.Zindex.t * int) option
(** The cached packed index for a live table and the {!Sqp_btree.Live.seq}
    it reflects.  The caller decides whether it is fresh enough. *)

(** {1 Plans} *)

val validate_bounds : t -> lo:int array -> hi:int array -> Sqp_geom.Box.t
(** Check a range request's bounds against the catalog's space and build
    the box.
    @raise Invalid_argument if the bounds have the wrong dimensionality,
    lie outside the grid, or are inverted. *)

val range_decision :
  t -> lo:int array -> hi:int array -> Sqp_optimizer.Cost.range_alternative list option
(** The costed range-search alternatives for this box under the current
    statistics (ascending direct-kernel cost), or [None] before the
    first {!analyze}. *)

(** {1 Page cost recalibration} *)

type page_estimate = {
  rows : int;  (** points in the packed index *)
  entries_per_page : float;  (** measured front-coded density *)
  compression_ratio : float;  (** vs fixed-width at the same byte budget *)
  fixed_pages : int;  (** pages a fixed-width layout would need *)
  compressed_pages : int;  (** data pages the packed index actually has *)
  fixed_predicted : float;
      (** 5.3.1 block-model pages for the box, fixed-width page count *)
  learned_predicted : float;
      (** same prediction at the measured (compressed) density *)
}

val page_estimate : t -> lo:int array -> hi:int array -> page_estimate option
(** The page cost model before and after recalibration for one range
    box: {!Sqp_optimizer.Cost.predicted_range_pages} evaluated at the
    fixed-width page count and again at the entries-per-page the ANALYZE
    pass measured on the front-coded point index.  [None] until
    {!analyze} has run (the density is measured then). *)

type range_access =
  | Direct of Sqp_optimizer.Cost.range_alternative
      (** run the Section 3.3 merge (plain or skip, per the
          alternative) directly on {!prepared_points} — exact cover *)
  | Planned
      (** run {!range_plan} through the plan executor (also the
          statistics-free fallback) *)

val range_access : t -> lo:int array -> hi:int array -> range_access
(** The access-path decision for one range query: the cheapest exact
    alternative on the direct kernel vs the cheapest decompose budget
    under {!Sqp_optimizer.Cost.plan_path_cost} — the two executors have
    different constants, which is exactly what the latter models. *)

val range_plan : t -> lo:int array -> hi:int array -> Sqp_relalg.Plan.t
(** The Section 4 range-query script as a plan: decompose the box,
    spatial-join it with the point relation on z, project the
    coordinates.  With statistics present, the decompose budget is the
    cheapest of {!range_decision}'s alternatives; a coarsened cover gets
    an exact refine [Select] between the join and the projection, so the
    result rows are identical at every budget.  Without statistics the
    cover is pixel-exact and needs no refine.
    @raise Invalid_argument if the bounds have the wrong dimensionality,
    lie outside the grid, or are inverted. *)

val overlap_plan : t -> Sqp_relalg.Plan.t
(** The canonical join over ["R"] and ["S"]: candidate overlapping
    object-id pairs [(rid, sid)] — the same plan {!of_seeded} clients
    send as [Project ["rid"; "sid"] (Spatial_join ...)].
    @raise Invalid_argument if the catalog lacks ["R"] or ["S"]. *)

val health_detail : t -> bool * string
(** A cheap self-check: every named relation's plan must produce a
    schema (catches catalog misconfiguration); reports names and
    cardinality estimates.  [(healthy, human-readable summary)]. *)
