module P = Protocol

type error =
  | Remote of { code : P.error_code; message : string }
  | Transport of { attempts : int; message : string }

let error_to_string = function
  | Remote { code; message } ->
      Printf.sprintf "%s: %s" (P.error_code_name code) message
  | Transport { attempts; message } ->
      Printf.sprintf "transport failure after %d attempt%s: %s" attempts
        (if attempts = 1 then "" else "s")
        message

type 'a reply = ('a, error) result

type conn = { fd : Unix.file_descr; io : P.io }

type t = {
  host : string;
  port : int;
  wrap : (Unix.file_descr -> P.io) option;
  connect_timeout : float;
  max_attempts : int;
  client_id : int;
  mutable rng : int64;  (* SplitMix64 state for backoff jitter *)
  mutable seq : int;  (* per-client idempotency counter *)
  mutable conn : conn option;
  mutable closed : bool;
  mutable retries : int;
  mutable reconnects : int;
}

let client_id t = t.client_id
let retries t = t.retries
let reconnects t = t.reconnects

(* SplitMix64: the jitter source.  Deterministic per client (seeded from
   the client id), so chaos runs with pinned ids replay their backoff
   schedule exactly. *)
let next_u64 t =
  t.rng <- Int64.add t.rng 0x9E3779B97F4A7C15L;
  let z = t.rng in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* uniform in [0.5, 1.5): +/-50% is plenty to spread a retry herd *)
let next_jitter t =
  0.5
  +. Int64.to_float (Int64.shift_right_logical (next_u64 t) 11)
     /. 9007199254740992.

(* Client ids only need to be collision-unlikely across concurrently
   live clients: mix wall clock, pid and a process-local counter. *)
let id_counter = Atomic.make 0

let fresh_client_id () =
  let raw =
    Int64.logxor
      (Int64.bits_of_float (Unix.gettimeofday ()))
      (Int64.of_int
         ((Unix.getpid () * 0x10001)
         lxor (Atomic.fetch_and_add id_counter 1 lsl 24)))
  in
  let z = Int64.add (Int64.mul raw 0x9E3779B97F4A7C15L) 0x9E3779B97F4A7C15L in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  Int64.to_int z land max_int

let default_connect_timeout = 5.0
let max_connect_timeout = 120.0

(* Bounded connect: non-blocking [connect] + [select], so a black-holed
   address (firewall drop, dead host) surfaces as [ETIMEDOUT] after
   [timeout] seconds instead of hanging for the kernel's SYN-retry
   minutes. *)
let dial ~timeout ~host ~port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
     Unix.set_nonblock fd;
     (try Unix.connect fd addr with
     | Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> (
         match Unix.select [] [ fd ] [] timeout with
         | _, [], _ ->
             raise
               (Unix.Unix_error
                  (Unix.ETIMEDOUT, "connect", Printf.sprintf "%s:%d" host port))
         | _ -> (
             (* Writable means *decided*, not connected: read the verdict. *)
             match Unix.getsockopt_error fd with
             | None -> ()
             | Some err ->
                 raise
                   (Unix.Unix_error
                      (err, "connect", Printf.sprintf "%s:%d" host port)))));
     Unix.clear_nonblock fd;
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let io_for wrap fd = match wrap with Some w -> w fd | None -> P.io_of_fd fd

let connect ?(host = "127.0.0.1") ?client_id
    ?(connect_timeout = default_connect_timeout) ?(max_attempts = 4) ?wrap
    ~port () =
  if max_attempts < 1 then invalid_arg "Client.connect: max_attempts < 1";
  if not (connect_timeout > 0.) || connect_timeout > max_connect_timeout then
    invalid_arg "Client.connect: connect_timeout must be in (0, 120]";
  (* A server that hung up must surface as EPIPE, not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = dial ~timeout:connect_timeout ~host ~port in
  let client_id =
    match client_id with Some id -> id | None -> fresh_client_id ()
  in
  {
    host;
    port;
    wrap;
    connect_timeout;
    max_attempts;
    client_id;
    rng = Int64.of_int client_id;
    seq = 0;
    conn = Some { fd; io = io_for wrap fd };
    closed = false;
    retries = 0;
    reconnects = 0;
  }

let drop_conn t =
  match t.conn with
  | None -> ()
  | Some { fd; _ } ->
      t.conn <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())

let close t =
  if not t.closed then begin
    t.closed <- true;
    drop_conn t
  end

let with_connect ?host ?client_id ?connect_timeout ?max_attempts ?wrap ~port f =
  let t = connect ?host ?client_id ?connect_timeout ?max_attempts ?wrap ~port () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let ensure_conn t =
  match t.conn with
  | Some c -> c
  | None ->
      let fd = dial ~timeout:t.connect_timeout ~host:t.host ~port:t.port in
      let c = { fd; io = io_for t.wrap fd } in
      t.conn <- Some c;
      t.reconnects <- t.reconnects + 1;
      c

let now = Unix.gettimeofday
let backoff_base = 0.005
let backoff_cap = 0.2

let call ?deadline_ms ?idem t request =
  if t.closed then invalid_arg "Client.call: client is closed";
  let deadline =
    match deadline_ms with
    | Some ms -> Some (now () +. (float_of_int ms /. 1000.))
    | None -> None
  in
  (* Mutations get one idempotency key per logical call, reused verbatim
     across every retry — the server's dedup window turns "sent twice"
     into "applied once".  A caller-supplied [idem] substitutes for the
     generated key: a proxy mutating on behalf of another client keys
     the write with the {e origin's} identity, so the downstream dedup
     window collapses replays from either party. *)
  let idem =
    match request with
    | P.Insert _ | P.Delete _ | P.Create_index _ -> (
        match idem with
        | Some _ as k -> k
        | None ->
            t.seq <- t.seq + 1;
            Some { P.client_id = t.client_id; request_seq = t.seq })
    | _ -> None
  in
  let expired () =
    match deadline with None -> false | Some d -> now () >= d
  in
  (* Ship the budget *remaining at send time*, so the server spends only
     what this attempt still has. *)
  let remaining_ms () =
    match deadline with
    | None -> None
    | Some d -> Some (max 1 (int_of_float (ceil ((d -. now ()) *. 1000.))))
  in
  let backoff attempt =
    let d =
      min backoff_cap (backoff_base *. (2. ** float_of_int (attempt - 1)))
      *. next_jitter t
    in
    let d =
      match deadline with
      | None -> d
      | Some dl -> min d (max 0. (dl -. now () -. 0.001))
    in
    if d > 0. then Thread.delay d
  in
  let attempt_once () =
    match
      let { io; _ } = ensure_conn t in
      let payload =
        P.encode_request { P.deadline_ms = remaining_ms (); idem; request }
      in
      P.write_frame_io io payload;
      P.read_frame_io io
    with
    | Ok bytes -> (
        match P.decode_response bytes with
        | Ok resp -> `Answered resp
        | Error m -> `Poisoned ("undecodable response: " ^ m))
    | Error e -> `Torn (P.read_error_to_string e)
    | exception Unix.Unix_error (err, fn, _) ->
        `Torn (Printf.sprintf "%s: %s" fn (Unix.error_message err))
  in
  let rec go attempt =
    match attempt_once () with
    | `Answered (P.Error { code = (P.Overloaded | P.Shutting_down) as code; message })
      when deadline <> None && not (expired ()) ->
        (* The server said "come back later" — worth waiting only when
           the caller gave us a deadline budget to spend. *)
        t.retries <- t.retries + 1;
        backoff attempt;
        if expired () then Error (Remote { code; message })
        else go (attempt + 1)
    | `Answered (P.Error { code; message }) -> Error (Remote { code; message })
    | `Answered resp -> Ok resp
    | `Poisoned message ->
        (* A frame we cannot decode would be replayed verbatim by the
           dedup window: retrying cannot help, fail fast. *)
        drop_conn t;
        Error (Transport { attempts = attempt; message })
    | `Torn message ->
        drop_conn t;
        let retry =
          match deadline with
          | Some _ -> not (expired ())
          | None -> attempt < t.max_attempts
        in
        if not retry then Error (Transport { attempts = attempt; message })
        else begin
          t.retries <- t.retries + 1;
          backoff attempt;
          if expired () then Error (Transport { attempts = attempt; message })
          else go (attempt + 1)
        end
  in
  go 1

(* {1 Typed helpers} *)

let expecting what decode result =
  match result with
  | Error e -> Error e
  | Ok resp -> (
      match decode resp with
      | Some v -> Ok v
      | None ->
          Error
            (Transport
               { attempts = 1; message = "protocol violation: expected " ^ what }))

let range_search ?deadline_ms t ~lo ~hi =
  expecting "rows"
    (function P.Rows r -> Some r | _ -> None)
    (call ?deadline_ms t (P.Range_search { lo; hi }))

let query ?deadline_ms t plan =
  expecting "rows"
    (function P.Rows r -> Some r | _ -> None)
    (call ?deadline_ms t (P.Query plan))

let explain ?deadline_ms t plan =
  expecting "text"
    (function P.Text s -> Some s | _ -> None)
    (call ?deadline_ms t (P.Explain plan))

let analyze ?deadline_ms t plan =
  expecting "analysis"
    (function P.Analyzed { rendered; rows } -> Some (rendered, rows) | _ -> None)
    (call ?deadline_ms t (P.Analyze plan))

let insert ?deadline_ms ?idem t ~table points =
  expecting "ack"
    (function P.Ack { applied; seq } -> Some (applied, seq) | _ -> None)
    (call ?deadline_ms ?idem t (P.Insert { table; points }))

let delete ?deadline_ms ?idem t ~table points =
  expecting "ack"
    (function P.Ack { applied; seq } -> Some (applied, seq) | _ -> None)
    (call ?deadline_ms ?idem t (P.Delete { table; points }))

let create_index ?deadline_ms t ~table =
  expecting "ack"
    (function P.Ack { applied; seq } -> Some (applied, seq) | _ -> None)
    (call ?deadline_ms t (P.Create_index { table }))

let refresh_stats ?deadline_ms t =
  expecting "text"
    (function P.Text s -> Some s | _ -> None)
    (call ?deadline_ms t P.Refresh_stats)

let live_range ?deadline_ms t ~table ~lo ~hi =
  expecting "rows"
    (function P.Rows r -> Some r | _ -> None)
    (call ?deadline_ms t (P.Live_range { table; lo; hi }))

let shard_map_get ?deadline_ms t =
  expecting "shard map"
    (function P.Shard_map m -> Some m | _ -> None)
    (call ?deadline_ms t P.Shard_map_get)

let shard_map_set ?deadline_ms t ~map ~self =
  expecting "ack"
    (function P.Ack { applied; seq } -> Some (applied, seq) | _ -> None)
    (call ?deadline_ms t (P.Shard_map_set { map; self }))

let forward ?deadline_ms t ~epoch ~payload =
  call ?deadline_ms t (P.Forward { epoch; payload })

let health t =
  expecting "health report"
    (function P.Health_report h -> Some h | _ -> None)
    (call t P.Health)

let recover t =
  expecting "text"
    (function P.Text s -> Some s | _ -> None)
    (call t P.Recover)
