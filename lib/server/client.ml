module P = Protocol

type t = { fd : Unix.file_descr; mutable closed : bool }

exception Disconnected of string

let disconnected fmt = Printf.ksprintf (fun s -> raise (Disconnected s)) fmt

let connect ?(host = "127.0.0.1") ~port () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let with_connect ?host ~port f =
  let t = connect ?host ~port () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let call ?deadline_ms t request =
  if t.closed then disconnected "connection already closed";
  (try P.write_frame t.fd (P.encode_request { P.deadline_ms; request })
   with Unix.Unix_error (e, _, _) ->
     disconnected "write failed: %s" (Unix.error_message e));
  match P.read_frame t.fd with
  | Error e -> disconnected "%s" (P.read_error_to_string e)
  | exception Unix.Unix_error (e, _, _) ->
      disconnected "read failed: %s" (Unix.error_message e)
  | Ok payload -> (
      match P.decode_response payload with
      | Ok resp -> resp
      | Error m -> disconnected "undecodable response: %s" m)

type 'a reply = ('a, Protocol.error_code * string) result

let reply_of expected = function
  | P.Error { code; message } -> Error (code, message)
  | resp -> (
      match expected resp with
      | Some v -> Ok v
      | None -> disconnected "response kind does not match the request")

let range_search ?deadline_ms t ~lo ~hi =
  reply_of
    (function P.Rows r -> Some r | _ -> None)
    (call ?deadline_ms t (P.Range_search { lo; hi }))

let query ?deadline_ms t plan =
  reply_of
    (function P.Rows r -> Some r | _ -> None)
    (call ?deadline_ms t (P.Query plan))

let explain ?deadline_ms t plan =
  reply_of
    (function P.Text s -> Some s | _ -> None)
    (call ?deadline_ms t (P.Explain plan))

let analyze ?deadline_ms t plan =
  reply_of
    (function P.Analyzed { rendered; rows } -> Some (rendered, rows) | _ -> None)
    (call ?deadline_ms t (P.Analyze plan))

let insert ?deadline_ms t ~table points =
  reply_of
    (function P.Ack { applied; seq } -> Some (applied, seq) | _ -> None)
    (call ?deadline_ms t (P.Insert { table; points }))

let delete ?deadline_ms t ~table points =
  reply_of
    (function P.Ack { applied; seq } -> Some (applied, seq) | _ -> None)
    (call ?deadline_ms t (P.Delete { table; points }))

let create_index ?deadline_ms t ~table =
  reply_of
    (function P.Ack { applied; seq } -> Some (applied, seq) | _ -> None)
    (call ?deadline_ms t (P.Create_index { table }))

let refresh_stats ?deadline_ms t =
  reply_of
    (function P.Text s -> Some s | _ -> None)
    (call ?deadline_ms t P.Refresh_stats)

let live_range ?deadline_ms t ~table ~lo ~hi =
  reply_of
    (function P.Rows r -> Some r | _ -> None)
    (call ?deadline_ms t (P.Live_range { table; lo; hi }))

let health t =
  reply_of
    (function P.Health_report h -> Some h | _ -> None)
    (call t P.Health)
