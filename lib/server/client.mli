(** A blocking, self-healing client for the {!Protocol} wire format —
    the library under [sqp shell] and [sqp bench-net], and the far end
    the end-to-end and chaos tests drive.

    One connection carries one request at a time (the protocol has no
    frame multiplexing); for concurrency, open one client per thread.

    {b Retries and exactly-once.}  A torn connection (reset, EOF
    mid-frame, EPIPE) does not fail the call: the client reconnects and
    retries under jittered exponential backoff — until the caller's
    [deadline_ms] budget runs out when one was given, else up to
    [max_attempts] attempts.  Every retry of a mutation ([insert],
    [delete], [create_index]) carries the {e same} idempotency key
    [(client_id, request_seq)], so the server's dedup window applies the
    batch at most once and answers the replay with the original [Ack] —
    a retried insert that actually landed the first time is {e not}
    applied twice.  [Overloaded] / [Shutting_down] answers are also
    retried, but only while a deadline budget remains (without one they
    surface immediately).

    Failures are ordinary values, never exceptions: {!Remote} carries
    the server's typed error, {!Transport} what the socket did and how
    many attempts were spent.  Only {!connect} itself still raises
    ([Unix.Unix_error]) — an unreachable server at startup is a
    configuration error, not a retryable condition. *)

type t

type error =
  | Remote of { code : Protocol.error_code; message : string }
      (** the server answered with a typed [Error] response *)
  | Transport of { attempts : int; message : string }
      (** the transport failed and retries were exhausted; [attempts]
          counts tries of this one logical call *)

val error_to_string : error -> string
(** One human-readable line, e.g.
    ["transport failure after 4 attempts: read failed: ECONNRESET"]. *)

type 'a reply = ('a, error) result

val connect :
  ?host:string ->
  ?client_id:int ->
  ?connect_timeout:float ->
  ?max_attempts:int ->
  ?wrap:(Unix.file_descr -> Protocol.io) ->
  port:int ->
  unit ->
  t
(** [host] defaults to ["127.0.0.1"].  [client_id] (default: a fresh
    collision-unlikely random id) names this client in idempotency keys
    — pin it to make chaos runs deterministic.  [connect_timeout]
    (default 5 s, bounded to (0, 120]) caps {e every} dial this client
    performs — the initial one and each reconnect — via a non-blocking
    connect, so a black-holed endpoint fails with [ETIMEDOUT] instead of
    hanging for the kernel's SYN-retry minutes; on the reconnect path
    the timeout surfaces as a typed {!Transport} error like any other
    dial failure.  [max_attempts] (default 4, min 1) bounds transport
    retries for calls {e without} a deadline.  [wrap] interposes on
    every socket this client opens (reconnects included), e.g.
    {!Faulty_net.wrap} for fault injection.
    @raise Unix.Unix_error if the connection is refused or times out.
    @raise Invalid_argument if [max_attempts < 1] or [connect_timeout]
    is out of range. *)

val close : t -> unit
(** Idempotent. *)

val with_connect :
  ?host:string ->
  ?client_id:int ->
  ?connect_timeout:float ->
  ?max_attempts:int ->
  ?wrap:(Unix.file_descr -> Protocol.io) ->
  port:int ->
  (t -> 'a) ->
  'a
(** Connect, run, always close. *)

val client_id : t -> int
(** The id this client stamps into idempotency keys. *)

val retries : t -> int
(** Attempts beyond the first across all calls so far (transport retries
    plus [Overloaded]/[Shutting_down] waits). *)

val reconnects : t -> int
(** Connections re-dialed after the initial one. *)

val call :
  ?deadline_ms:int ->
  ?idem:Protocol.idem ->
  t ->
  Protocol.request ->
  Protocol.response reply
(** Send one request and wait for its response, retrying as described
    above.  [deadline_ms] is the total budget for the logical call; each
    attempt ships the {e remaining} budget so the server never spends
    time the caller no longer has.  Mutation requests are automatically
    assigned their idempotency key; [idem] substitutes an explicit one —
    how a proxy (e.g. the cluster router's rebalance dual-writes) keys a
    write with the {e origin} client's identity so the server's dedup
    window collapses replays from either party.  [idem] is ignored on
    non-mutation requests.  The response is never [Protocol.Error] —
    typed errors come back as [Error (Remote _)]. *)

(** {1 Typed conveniences}

    Each returns [Error (Remote _)] when the server answered with a
    typed error, [Error (Transport _)] when the transport gave out (or
    the response kind does not match the request — a protocol
    violation). *)

val range_search :
  ?deadline_ms:int -> t -> lo:int array -> hi:int array ->
  Sqp_relalg.Relation.t reply

val query :
  ?deadline_ms:int -> t -> Sqp_relalg.Wire.plan -> Sqp_relalg.Relation.t reply

val explain : ?deadline_ms:int -> t -> Sqp_relalg.Wire.plan -> string reply

val analyze :
  ?deadline_ms:int -> t -> Sqp_relalg.Wire.plan ->
  (string * Sqp_relalg.Relation.t) reply
(** [(rendered EXPLAIN ANALYZE tree, result rows)]. *)

val insert :
  ?deadline_ms:int -> ?idem:Protocol.idem -> t -> table:string ->
  (int array * int) list -> (int * int) reply
(** Append [(point, id)] entries to a live table; [(applied, seq)].
    Exactly-once under retries.  [idem] overrides the generated
    idempotency key (see {!call}). *)

val delete :
  ?deadline_ms:int -> ?idem:Protocol.idem -> t -> table:string ->
  int array list -> (int * int) reply
(** Remove the first entry at each exact point; [applied] counts the
    points actually present.  Exactly-once under retries.  [idem]
    overrides the generated idempotency key (see {!call}). *)

val create_index : ?deadline_ms:int -> t -> table:string -> (int * int) reply
(** Online index rebuild; [(entry count of the finished index, seq)]. *)

val refresh_stats : ?deadline_ms:int -> t -> string reply
(** Run the server-side ANALYZE pass: rebuild the catalog statistics
    the cost-based optimizer reads, and return their summary.  Until a
    client has called this once, the server plans without statistics. *)

val live_range :
  ?deadline_ms:int -> t -> table:string -> lo:int array -> hi:int array ->
  Sqp_relalg.Relation.t reply
(** Snapshot range query over a live table: rows [(id, x0..xk)] in z
    order. *)

val shard_map_get : ?deadline_ms:int -> t -> Shard_map.t reply
(** Fetch the node's current shard map ([Error (Remote
    { code = Unknown_relation; _ })] if none is installed) — how a
    cluster client bootstraps and how it refreshes after
    [Stale_epoch]. *)

val shard_map_set :
  ?deadline_ms:int -> t -> map:Shard_map.t -> self:int -> (int * int) reply
(** Install a shard map on a node; [self] is the node's own entry index
    (or [-1] for map-only holders such as the router's seed).  Answers
    [(entries, epoch)]; a map older than the node's current epoch is
    refused with [Remote { code = Stale_epoch; _ }]. *)

val forward :
  ?deadline_ms:int -> t -> epoch:int -> payload:string -> Protocol.response reply
(** Router-to-shard envelope: deliver an already-encoded request
    [payload] fenced at [epoch].  The response is whatever the inner
    request produced; an epoch mismatch comes back as
    [Remote { code = Stale_epoch; _ }] {e before} the payload is even
    decoded. *)

val health : t -> Protocol.health reply
(** Liveness, load and {e mode} (["serving"] / ["draining"] /
    ["degraded: <reason>"]). *)

val recover : t -> string reply
(** Ask a degraded server to reopen its poisoned stores and resume
    mutations; [Error (Remote { code = Degraded; _ })] if they are
    still sick. *)
