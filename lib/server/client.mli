(** A blocking client for the {!Protocol} wire format — the library
    under [sqp shell] and [sqp bench-net], and the far end the
    end-to-end tests drive.

    One connection carries one request at a time (the protocol has no
    frame multiplexing); for concurrency, open one client per thread.
    Transport failures raise {!Disconnected}; {e protocol}-level
    failures are ordinary values — the typed [Error] responses the
    server answers with ([Overloaded], [Timed_out], ...). *)

type t

exception Disconnected of string
(** The TCP stream died or the peer sent an undecodable frame. *)

val connect : ?host:string -> port:int -> unit -> t
(** [host] defaults to ["127.0.0.1"].
    @raise Unix.Unix_error if the connection is refused. *)

val close : t -> unit
(** Idempotent. *)

val with_connect : ?host:string -> port:int -> (t -> 'a) -> 'a
(** Connect, run, always close. *)

val call : ?deadline_ms:int -> t -> Protocol.request -> Protocol.response
(** Send one request, wait for its response.  [deadline_ms] is shipped
    in the frame and enforced by the server.
    @raise Disconnected on transport failure. *)

(** {1 Typed conveniences}

    Each returns [Error (code, message)] when the server answered with
    a typed error, and raises {!Disconnected} if the response kind does
    not match the request (a protocol violation). *)

type 'a reply = ('a, Protocol.error_code * string) result

val range_search :
  ?deadline_ms:int -> t -> lo:int array -> hi:int array ->
  Sqp_relalg.Relation.t reply

val query :
  ?deadline_ms:int -> t -> Sqp_relalg.Wire.plan -> Sqp_relalg.Relation.t reply

val explain : ?deadline_ms:int -> t -> Sqp_relalg.Wire.plan -> string reply

val analyze :
  ?deadline_ms:int -> t -> Sqp_relalg.Wire.plan ->
  (string * Sqp_relalg.Relation.t) reply
(** [(rendered EXPLAIN ANALYZE tree, result rows)]. *)

val insert :
  ?deadline_ms:int -> t -> table:string -> (int array * int) list ->
  (int * int) reply
(** Append [(point, id)] entries to a live table; [(applied, seq)]. *)

val delete :
  ?deadline_ms:int -> t -> table:string -> int array list -> (int * int) reply
(** Remove the first entry at each exact point; [applied] counts the
    points actually present. *)

val create_index : ?deadline_ms:int -> t -> table:string -> (int * int) reply
(** Online index rebuild; [(entry count of the finished index, seq)]. *)

val refresh_stats : ?deadline_ms:int -> t -> string reply
(** Run the server-side ANALYZE pass: rebuild the catalog statistics
    the cost-based optimizer reads, and return their summary.  Until a
    client has called this once, the server plans without statistics. *)

val live_range :
  ?deadline_ms:int -> t -> table:string -> lo:int array -> hi:int array ->
  Sqp_relalg.Relation.t reply
(** Snapshot range query over a live table: rows [(id, x0..xk)] in z
    order. *)

val health : t -> Protocol.health reply
