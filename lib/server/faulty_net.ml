(* Deterministic fault injection for socket I/O — Faulty_io's sibling
   for the wire.  A plan wraps a connected descriptor's Protocol.io so
   every frame read/write can suffer EINTR, short transfers, injected
   latency, or a mid-frame connection reset, reproducibly from a seed. *)

(* SplitMix64, same construction as Faulty_io: plans are a pure function
   of their seed with no dependency on [Random]'s global state. *)
type rng = { mutable s : int64 }

let next_i64 r =
  r.s <- Int64.add r.s 0x9E3779B97F4A7C15L;
  let z = r.s in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let unit_float r =
  Int64.to_float (Int64.shift_right_logical (next_i64 r) 11) /. 9007199254740992.0

let rand_int r n =
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_i64 r) 1) (Int64.of_int n))

let chance r p = p > 0.0 && unit_float r < p

type seeded_spec = {
  p_eintr : float;
  p_short : float;
  p_delay : float;
  delay_s : float;
  p_reset : float;
  seed : int;
}

type plan =
  | Passthrough
  | Seeded of { spec : seeded_spec; mutable conns : int }
  | Kill_after of { ops : int; mutable conns : int }

let none = Passthrough

let seeded ?(p_eintr = 0.0) ?(p_short = 0.0) ?(p_delay = 0.0) ?(delay_s = 0.001)
    ?(p_reset = 0.0) ~seed () =
  Seeded { spec = { p_eintr; p_short; p_delay; delay_s; p_reset; seed }; conns = 0 }

let kill_after ops =
  if ops < 0 then invalid_arg "Faulty_net.kill_after: negative operation index";
  Kill_after { ops; conns = 0 }

(* Per-connection state: each [wrap] gets its own logical-op clock and
   its own deterministic stream (seed mixed with the connection index),
   so a client that reconnects after a kill faces the same plan afresh —
   and a schedule is replayable from (seed, connection index, op). *)
type conn = {
  fd : Unix.file_descr;
  rng : rng;
  kill_at : int;  (* kill the connection at this logical op; -1 = never *)
  spec : seeded_spec option;
  mutable ops : int;
  mutable killed : bool;
}

let reset conn ~op =
  conn.killed <- true;
  (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  let error = if op = "read" then Unix.ECONNRESET else Unix.EPIPE in
  raise (Unix.Unix_error (error, op, "faulty_net"))

(* One logical op = one io.read or io.write call. *)
let gate conn ~op =
  if conn.killed then reset conn ~op;
  let k = conn.ops in
  conn.ops <- k + 1;
  if conn.kill_at >= 0 && k >= conn.kill_at then reset conn ~op;
  match conn.spec with
  | None -> None
  | Some spec ->
      if chance conn.rng spec.p_reset then reset conn ~op;
      if chance conn.rng spec.p_eintr then
        raise (Unix.Unix_error (Unix.EINTR, op, "faulty_net"));
      if chance conn.rng spec.p_delay then Thread.delay spec.delay_s;
      Some spec

let shorten conn spec len =
  if len > 1 && chance conn.rng spec.p_short then 1 + rand_int conn.rng (len - 1)
  else len

let wrap plan fd =
  let base = Protocol.io_of_fd fd in
  match plan with
  | Passthrough -> base
  | Seeded _ | Kill_after _ ->
      let kill_at, spec, conn_seed =
        match plan with
        | Passthrough -> assert false
        | Seeded s ->
            s.conns <- s.conns + 1;
            (-1, Some s.spec, (s.spec.seed * 0x9e3779b1) + s.conns)
        | Kill_after k ->
            k.conns <- k.conns + 1;
            (k.ops, None, 0)
      in
      let conn =
        { fd; rng = { s = Int64.of_int conn_seed }; kill_at; spec; ops = 0; killed = false }
      in
      {
        Protocol.read =
          (fun buf pos len ->
            let len =
              match gate conn ~op:"read" with
              | None -> len
              | Some spec -> shorten conn spec len
            in
            base.Protocol.read buf pos len);
        write =
          (fun buf pos len ->
            let len =
              match gate conn ~op:"write" with
              | None -> len
              | Some spec -> shorten conn spec len
            in
            base.Protocol.write buf pos len);
        wait_read =
          (fun timeout -> if conn.killed then true else base.Protocol.wait_read timeout);
        wait_write =
          (fun timeout -> if conn.killed then true else base.Protocol.wait_write timeout);
      }
