(** Deterministic fault injection for socket I/O — {!Sqp_storage.Faulty_io}'s
    sibling for the wire.

    A {e plan} wraps a connected descriptor's {!Protocol.io} record so
    that every frame read and write can suffer [EINTR], short transfers,
    injected latency, or a mid-frame connection reset — reproducibly.
    Plans are a pure function of their seed: each {!wrap} (one
    connection) gets its own logical-op clock and its own deterministic
    stream derived from (seed, connection index), so any failing
    schedule replays exactly, and a client that reconnects after a kill
    faces the same hostile network afresh.

    A reset shuts the socket down both ways (the peer sees it too) and
    raises [ECONNRESET] from reads / [EPIPE] from writes — exactly what
    a dropped TCP connection looks like, which is what the client's
    retry loop and the server's session accounting are tested against.

    The chaos suite ([test/test_chaos.ml]) threads these plans under
    both sides of a real loopback server; [sqp bench-net --faults] and
    [sqp serve --chaos] use them operationally. *)

type plan

val none : plan
(** Plain passthrough: {!wrap} returns {!Protocol.io_of_fd}'s record. *)

val seeded :
  ?p_eintr:float ->
  ?p_short:float ->
  ?p_delay:float ->
  ?delay_s:float ->
  ?p_reset:float ->
  seed:int ->
  unit ->
  plan
(** A deterministic random plan.  Each logical operation (one [io.read]
    or [io.write] call) independently suffers: a connection reset
    (probability [p_reset]), [EINTR] ([p_eintr]), an injected delay of
    [delay_s] seconds ([p_delay]), or a shortened transfer ([p_short]).
    All probabilities default to 0. *)

val kill_after : int -> plan
(** Kill the connection at the [n]-th (0-based) logical operation of
    each wrapped descriptor: the socket is shut down and every further
    operation raises.  Models a peer or middlebox with a deterministic
    attention span. *)

val wrap : plan -> Unix.file_descr -> Protocol.io
(** Thread the plan under a connected descriptor.  Call once per
    connection (each call advances the plan's connection index). *)
