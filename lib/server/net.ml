module P = Protocol
module Metrics = Sqp_obs.Metrics

type config = {
  host : string;
  port : int;
  max_frame_bytes : int;
  idle_timeout_s : float option;
  frame_timeout_s : float option;
  session_io : (Unix.file_descr -> P.io) option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    max_frame_bytes = P.default_max_frame_bytes;
    idle_timeout_s = None;
    frame_timeout_s = None;
    session_io = None;
  }

type t = {
  config : config;
  handle : string -> string;
  lfd : Unix.file_descr;
  bound_port : int;
  mutable stopping : bool;
  mutable stopped : bool;
  mutable acceptor : Thread.t option;
  mutable sessions : (Unix.file_descr * Thread.t option ref) list;
      (* The thread slot is filled right after spawn; [stop] joins the
         acceptor first, so by the time it walks this list every slot of
         a registered session is filled. *)
  m : Mutex.t;
  c_sessions : Metrics.counter;
  g_active_sessions : Metrics.gauge;
  c_aborted_sessions : Metrics.counter;
  c_idle_closed : Metrics.counter;
  c_bad_frames : Metrics.counter;
}

let port t = t.bound_port

let stopping t = t.stopping

(* {1 Sessions} *)

let unregister t fd =
  Mutex.lock t.m;
  t.sessions <- List.filter (fun (fd', _) -> fd' != fd) t.sessions;
  Metrics.set_gauge t.g_active_sessions (List.length t.sessions);
  Mutex.unlock t.m

let session t fd =
  let io =
    match t.config.session_io with Some wrap -> wrap fd | None -> P.io_of_fd fd
  in
  let aborted = ref false in
  let rec loop () =
    match
      P.read_frame_io ~max_bytes:t.config.max_frame_bytes
        ?idle_timeout:t.config.idle_timeout_s
        ?frame_timeout:t.config.frame_timeout_s io
    with
    | Error P.Eof -> ()
    | Error P.Truncated ->
        Metrics.incr t.c_bad_frames;
        aborted := true
    | Error (P.Stalled { mid_frame }) ->
        (* Idle sessions are reaped quietly; a peer that went silent
           inside a frame (slow-loris, partition) counts as aborted. *)
        if mid_frame then aborted := true else Metrics.incr t.c_idle_closed
    | Error (P.Oversized n) ->
        (* The payload was not consumed, so the stream cannot be
           resynchronized: answer once (best effort) and hang up. *)
        Metrics.incr t.c_bad_frames;
        (try
           P.write_frame_io ?timeout:t.config.frame_timeout_s io
             (P.encode_response
                (P.Error
                   {
                     code = P.Bad_request;
                     message = P.read_error_to_string (P.Oversized n);
                   }))
         with _ -> ())
    | exception _ ->
        (* Connection reset (or injected fault) mid-read. *)
        aborted := true
    | Ok payload -> (
        match
          let bytes = t.handle payload in
          P.write_frame_io ?timeout:t.config.frame_timeout_s io bytes
        with
        | () -> loop ()
        | exception _ ->
            (* client went away mid-response *)
            aborted := true)
  in
  Fun.protect
    ~finally:(fun () ->
      if !aborted then Metrics.incr t.c_aborted_sessions;
      (* Unregister first: once off the list, [stop] cannot touch this
         fd, so closing (and the OS reusing the number) is safe. *)
      unregister t fd;
      try Unix.close fd with Unix.Unix_error _ -> ())
    loop

(* {1 Accepting} *)

let rec accept_loop t =
  match Unix.accept ~cloexec:true t.lfd with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop t
  | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EAGAIN), _, _) ->
      accept_loop t
  | exception Unix.Unix_error _ ->
      () (* listen socket closed or broken: stop accepting *)
  | fd, _ ->
      if t.stopping then begin
        (try Unix.close fd with Unix.Unix_error _ -> ());
        () (* the wake-up connection from [stop] *)
      end
      else begin
        Metrics.incr t.c_sessions;
        (* Register before spawning so [stop] can never miss a session
           it has to join. *)
        let slot = ref None in
        Mutex.lock t.m;
        t.sessions <- (fd, slot) :: t.sessions;
        Metrics.set_gauge t.g_active_sessions (List.length t.sessions);
        Mutex.unlock t.m;
        slot := Some (Thread.create (fun () -> session t fd) ());
        accept_loop t
      end

let start ?(config = default_config) ?metrics ?(metrics_prefix = "server")
    ~handle () =
  (* A dead client must surface as EPIPE on write, not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let reg = match metrics with Some m -> m | None -> Metrics.global () in
  let lfd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt lfd Unix.SO_REUSEADDR true;
     Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen lfd 64
   with e ->
     (try Unix.close lfd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let metric name = metrics_prefix ^ "." ^ name in
  let t =
    {
      config;
      handle;
      lfd;
      bound_port;
      stopping = false;
      stopped = false;
      acceptor = None;
      sessions = [];
      m = Mutex.create ();
      c_sessions = Metrics.counter reg (metric "sessions");
      g_active_sessions = Metrics.gauge reg (metric "sessions.active");
      c_aborted_sessions = Metrics.counter reg (metric "sessions.aborted");
      c_idle_closed = Metrics.counter reg (metric "sessions.idle_closed");
      c_bad_frames = Metrics.counter reg (metric "bad_frames");
    }
  in
  t.acceptor <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let stop ?(drain = ignore) t =
  Mutex.lock t.m;
  let already = t.stopped || t.stopping in
  if not already then t.stopping <- true;
  Mutex.unlock t.m;
  if not already then begin
    (* Wake the acceptor with a throwaway connection; it sees [stopping]
       and exits. *)
    (try
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try
          Unix.connect fd
            (Unix.ADDR_INET (Unix.inet_addr_of_string t.config.host, t.bound_port))
        with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    (match t.acceptor with Some th -> Thread.join th | None -> ());
    (try Unix.close t.lfd with Unix.Unix_error _ -> ());
    (* The caller quiesces (e.g. admission drain: in-flight requests
       finish and answer) while sessions can still write responses. *)
    drain ();
    (* Unblock sessions idling in [read_frame]; SHUT_RD only, so a
       response still in flight is not torn.  Shutting down under the
       lock pins each listed fd open (sessions unregister before they
       close), so a recycled descriptor can never be hit. *)
    Mutex.lock t.m;
    let sessions = t.sessions in
    List.iter
      (fun (fd, _) ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      sessions;
    Mutex.unlock t.m;
    List.iter
      (fun (_, slot) -> match !slot with Some th -> Thread.join th | None -> ())
      sessions;
    t.stopped <- true
  end
