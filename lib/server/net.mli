(** The generic concurrent TCP frame server under {!Server} — and, in
    [lib/cluster], under the router.

    This is the session machinery of PR 4/8 factored out of the query
    server so a second kind of node (the cluster router) can serve the
    same wire format without duplicating the lifecycle: one acceptor
    thread, one thread per session doing blocking frame I/O through
    {!Protocol.read_frame_io} / {!Protocol.write_frame_io}, per-session
    idle/frame timeouts, an I/O wrap seam for fault injection, and a
    graceful [stop] that joins every thread.

    What stays with the caller: what a payload {e means}.  [handle]
    maps one request payload to one encoded response payload; admission
    control, dedup windows and execution all live behind it. *)

type config = {
  host : string;  (** bind address *)
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  max_frame_bytes : int;  (** per-frame payload cap *)
  idle_timeout_s : float option;
      (** close a session that starts no frame for this long *)
  frame_timeout_s : float option;
      (** bound reading one payload / writing one response *)
  session_io : (Unix.file_descr -> Protocol.io) option;
      (** wrap every session's socket, e.g. {!Faulty_net.wrap} *)
}

val default_config : config
(** [127.0.0.1:0], 8 MiB frames, no timeouts, honest I/O. *)

type t

val start :
  ?config:config ->
  ?metrics:Sqp_obs.Metrics.t ->
  ?metrics_prefix:string ->
  handle:(string -> string) ->
  unit ->
  t
(** Bind, listen, spawn the acceptor.  [handle] is called on each
    session's thread with the raw request payload and must return the
    encoded response payload; it must not raise (a raise aborts that
    session).  [metrics_prefix] (default ["server"]) names the
    instruments: [<p>.sessions], [<p>.sessions.active],
    [<p>.sessions.aborted], [<p>.sessions.idle_closed],
    [<p>.bad_frames].
    @raise Unix.Unix_error if the address cannot be bound. *)

val port : t -> int
(** The actual listening port (useful with [port = 0]). *)

val stopping : t -> bool
(** True once {!stop} has begun: new connections are turned away. *)

val stop : ?drain:(unit -> unit) -> t -> unit
(** Graceful shutdown: stop accepting, join the acceptor, close the
    listener, run [drain] (the caller's quiesce step — e.g. admission
    drain — while sessions can still answer), then shut down each
    session's read side and join it.  Idempotent; [drain] runs once. *)
