module Wire = Sqp_relalg.Wire

let version = 2
let default_max_frame_bytes = 8 * 1024 * 1024

(* {1 Messages} *)

type request =
  | Range_search of { lo : int array; hi : int array }
  | Query of Sqp_relalg.Wire.plan
  | Explain of Sqp_relalg.Wire.plan
  | Analyze of Sqp_relalg.Wire.plan
  | Health
  | Insert of { table : string; points : (int array * int) list }
  | Delete of { table : string; points : int array list }
  | Create_index of { table : string }
  | Live_range of { table : string; lo : int array; hi : int array }
  | Refresh_stats
  | Recover
  | Shard_map_get
  | Shard_map_set of { map : Shard_map.t; self : int }
  | Forward of { epoch : int; payload : string }

type idem = { client_id : int; request_seq : int }

type request_frame = {
  deadline_ms : int option;
  idem : idem option;
  request : request;
}

type error_code =
  | Bad_request
  | Unsupported_version
  | Unknown_relation
  | Overloaded
  | Timed_out
  | Shutting_down
  | Server_error
  | Degraded
  | Stale_epoch

type health = {
  healthy : bool;
  detail : string;
  in_flight : int;
  queued : int;
  served : int;
  mode : string;
}

type response =
  | Rows of Sqp_relalg.Relation.t
  | Text of string
  | Analyzed of { rendered : string; rows : Sqp_relalg.Relation.t }
  | Health_report of health
  | Error of { code : error_code; message : string }
  | Ack of { applied : int; seq : int }
  | Shard_map of Shard_map.t

let error_code_name = function
  | Bad_request -> "bad_request"
  | Unsupported_version -> "unsupported_version"
  | Unknown_relation -> "unknown_relation"
  | Overloaded -> "overloaded"
  | Timed_out -> "timed_out"
  | Shutting_down -> "shutting_down"
  | Server_error -> "server_error"
  | Degraded -> "degraded"
  | Stale_epoch -> "stale_epoch"

let error_code_byte = function
  | Bad_request -> 0
  | Unsupported_version -> 1
  | Unknown_relation -> 2
  | Overloaded -> 3
  | Timed_out -> 4
  | Shutting_down -> 5
  | Server_error -> 6
  | Degraded -> 7
  | Stale_epoch -> 8

let error_code_of_byte = function
  | 0 -> Bad_request
  | 1 -> Unsupported_version
  | 2 -> Unknown_relation
  | 3 -> Overloaded
  | 4 -> Timed_out
  | 5 -> Shutting_down
  | 6 -> Server_error
  | 7 -> Degraded
  | 8 -> Stale_epoch
  | n -> raise (Wire.Corrupt (Printf.sprintf "unknown error code %d" n))

(* {1 Payload codecs}

   Request payload (v2) =
     version:u8 | tag:u8 | deadline:u32 | idem:u8 [client:i64 seq:i64] | body
   A version-1 payload is the same minus the idempotency block; decoders
   accept both, encoders emit version 2. *)

let write_int_array = Wire.write_int_array

let read_int_array = Wire.read_int_array

let request_tag = function
  | Range_search _ -> 1
  | Query _ -> 2
  | Explain _ -> 3
  | Analyze _ -> 4
  | Health -> 5
  | Insert _ -> 6
  | Delete _ -> 7
  | Create_index _ -> 8
  | Live_range _ -> 9
  | Refresh_stats -> 10
  | Recover -> 11
  | Shard_map_get -> 12
  | Shard_map_set _ -> 13
  | Forward _ -> 14

(* Tags allowed to carry an idempotency key: the live-table frames.  The
   client only keys the true mutations (6-8), but a keyed 9 is harmless
   (replaying a read is idempotent by definition). *)
let idem_tag tag = tag >= 6 && tag <= 9

let payload_version payload =
  if String.length payload = 0 then 0 else Char.code payload.[0]

let encode_request { deadline_ms; idem; request } =
  let b = Buffer.create 64 in
  let tag = request_tag request in
  (match idem with
  | Some _ when not (idem_tag tag) ->
      invalid_arg "Protocol.encode_request: idempotency key on a non-mutation frame"
  | _ -> ());
  Wire.write_u8 b version;
  Wire.write_u8 b tag;
  Wire.write_u32 b (match deadline_ms with None -> 0 | Some ms -> max 1 ms);
  (match idem with
  | None -> Wire.write_u8 b 0
  | Some { client_id; request_seq } ->
      Wire.write_u8 b 1;
      Wire.write_i64 b client_id;
      Wire.write_i64 b request_seq);
  (match request with
  | Range_search { lo; hi } ->
      write_int_array b lo;
      write_int_array b hi
  | Query plan | Explain plan | Analyze plan -> Wire.write_plan b plan
  | Health -> ()
  | Insert { table; points } ->
      Wire.write_string b table;
      Wire.write_point_list b points
  | Delete { table; points } ->
      Wire.write_string b table;
      Wire.write_u32 b (List.length points);
      List.iter (write_int_array b) points
  | Create_index { table } -> Wire.write_string b table
  | Live_range { table; lo; hi } ->
      Wire.write_string b table;
      write_int_array b lo;
      write_int_array b hi
  | Refresh_stats -> ()
  | Recover -> ()
  | Shard_map_get -> ()
  | Shard_map_set { map; self } ->
      Shard_map.write b map;
      (* [self]: index of the recipient's own entry, or -1 when the
         recipient owns no range under this map. *)
      Wire.write_i64 b self
  | Forward { epoch; payload } ->
      if String.length payload >= 2 && Char.code payload.[1] = 14 then
        invalid_arg "Protocol.encode_request: nested Forward envelope";
      Wire.write_u32 b epoch;
      Wire.write_string b payload);
  Buffer.contents b

let decode_request payload =
  if String.length payload < 2 then
    Stdlib.Error (Bad_request, "payload shorter than 2 bytes")
  else
    let c = Wire.cursor payload in
    let ver = Wire.read_u8 c in
    if ver <> 1 && ver <> version then
      Stdlib.Error
        ( Unsupported_version,
          Printf.sprintf "protocol version %d; this server speaks %d (and 1)" ver
            version )
    else
      let tag = Wire.read_u8 c in
      match
        let deadline_ms =
          match Wire.read_u32 c with 0 -> None | ms -> Some ms
        in
        let idem =
          if ver < 2 then None
          else
            match Wire.read_u8 c with
            | 0 -> None
            | 1 ->
                if not (idem_tag tag) then
                  raise
                    (Wire.Corrupt
                       (Printf.sprintf
                          "idempotency key on request tag %d (only 6-9 may carry one)"
                          tag));
                let client_id = Wire.read_i64 c in
                let request_seq = Wire.read_i64 c in
                Some { client_id; request_seq }
            | n ->
                raise (Wire.Corrupt (Printf.sprintf "bad idempotency flag %d" n))
        in
        let request =
          match tag with
          | 1 ->
              let lo = read_int_array c in
              let hi = read_int_array c in
              if Array.length lo <> Array.length hi then
                raise (Wire.Corrupt "lo/hi dimensionality mismatch");
              Range_search { lo; hi }
          | 2 -> Query (Wire.read_plan c)
          | 3 -> Explain (Wire.read_plan c)
          | 4 -> Analyze (Wire.read_plan c)
          | 5 -> Health
          | 6 ->
              let table = Wire.read_string c in
              let points = Wire.read_point_list c in
              Insert { table; points }
          | 7 ->
              let table = Wire.read_string c in
              let n = Wire.read_u32 c in
              let points = ref [] in
              for _ = 1 to n do
                points := read_int_array c :: !points
              done;
              Delete { table; points = List.rev !points }
          | 8 -> Create_index { table = Wire.read_string c }
          | 9 ->
              let table = Wire.read_string c in
              let lo = read_int_array c in
              let hi = read_int_array c in
              if Array.length lo <> Array.length hi then
                raise (Wire.Corrupt "lo/hi dimensionality mismatch");
              Live_range { table; lo; hi }
          | 10 -> Refresh_stats
          | 11 -> Recover
          | 12 -> Shard_map_get
          | 13 ->
              let map = Shard_map.read c in
              let self = Wire.read_i64 c in
              if self < -1 || self >= List.length map.Shard_map.entries then
                raise (Wire.Corrupt "shard map self index out of range");
              Shard_map_set { map; self }
          | 14 ->
              let epoch = Wire.read_u32 c in
              let payload = Wire.read_string c in
              if String.length payload < 2 then
                raise (Wire.Corrupt "forwarded payload shorter than 2 bytes");
              (* One level only: a Forward carrying a Forward is a
                 routing loop, not a request. *)
              if Char.code payload.[1] = 14 then
                raise (Wire.Corrupt "nested Forward envelope");
              Forward { epoch; payload }
          | t -> raise (Wire.Corrupt (Printf.sprintf "unknown request tag %d" t))
        in
        if not (Wire.at_end c) then raise (Wire.Corrupt "trailing bytes");
        { deadline_ms; idem; request }
      with
      | frame -> Stdlib.Ok frame
      | exception Wire.Corrupt m -> Stdlib.Error (Bad_request, m)

let encode_response ?version:(ver = version) resp =
  if ver <> 1 && ver <> version then
    invalid_arg (Printf.sprintf "Protocol.encode_response: unknown version %d" ver);
  let b = Buffer.create 256 in
  Wire.write_u8 b ver;
  (match resp with
  | Rows r ->
      Wire.write_u8 b 1;
      Wire.write_relation b r
  | Text s ->
      Wire.write_u8 b 2;
      Wire.write_string b s
  | Analyzed { rendered; rows } ->
      Wire.write_u8 b 3;
      Wire.write_string b rendered;
      Wire.write_relation b rows
  | Health_report h ->
      Wire.write_u8 b 4;
      Wire.write_u8 b (if h.healthy then 1 else 0);
      Wire.write_string b h.detail;
      Wire.write_i64 b h.in_flight;
      Wire.write_i64 b h.queued;
      Wire.write_i64 b h.served;
      if ver >= 2 then Wire.write_string b h.mode
  | Error { code; message } ->
      (* A v1 peer has no byte for [Degraded]; downgrade it to the
         lowest common denominator with the mode in the message. *)
      let code, message =
        if ver < 2 then
          match code with
          | Degraded -> (Server_error, "degraded: " ^ message)
          | Stale_epoch -> (Server_error, "stale epoch: " ^ message)
          | _ -> (code, message)
        else (code, message)
      in
      Wire.write_u8 b 5;
      Wire.write_u8 b (error_code_byte code);
      Wire.write_string b message
  | Ack { applied; seq } ->
      Wire.write_u8 b 6;
      Wire.write_i64 b applied;
      Wire.write_i64 b seq
  | Shard_map map ->
      Wire.write_u8 b 7;
      Shard_map.write b map);
  Buffer.contents b

let decode_response payload =
  if String.length payload < 2 then Stdlib.Error "payload shorter than 2 bytes"
  else
    let c = Wire.cursor payload in
    match
      let ver = Wire.read_u8 c in
      if ver <> 1 && ver <> version then
        raise (Wire.Corrupt (Printf.sprintf "unsupported response version %d" ver));
      let resp =
        match Wire.read_u8 c with
        | 1 -> Rows (Wire.read_relation c)
        | 2 -> Text (Wire.read_string c)
        | 3 ->
            let rendered = Wire.read_string c in
            let rows = Wire.read_relation c in
            Analyzed { rendered; rows }
        | 4 ->
            let healthy = Wire.read_u8 c <> 0 in
            let detail = Wire.read_string c in
            let in_flight = Wire.read_i64 c in
            let queued = Wire.read_i64 c in
            let served = Wire.read_i64 c in
            let mode = if ver >= 2 then Wire.read_string c else "" in
            Health_report { healthy; detail; in_flight; queued; served; mode }
        | 5 ->
            let code = error_code_of_byte (Wire.read_u8 c) in
            let message = Wire.read_string c in
            Error { code; message }
        | 6 ->
            let applied = Wire.read_i64 c in
            let seq = Wire.read_i64 c in
            Ack { applied; seq }
        | 7 -> Shard_map (Shard_map.read c)
        | t -> raise (Wire.Corrupt (Printf.sprintf "unknown response tag %d" t))
      in
      if not (Wire.at_end c) then raise (Wire.Corrupt "trailing bytes");
      resp
    with
    | resp -> Stdlib.Ok resp
    | exception Wire.Corrupt m -> Stdlib.Error m

(* {1 Frame I/O} *)

type read_error =
  | Eof
  | Truncated
  | Oversized of int
  | Stalled of { mid_frame : bool }

let read_error_to_string = function
  | Eof -> "clean end of stream"
  | Truncated -> "stream ended mid-frame"
  | Oversized n -> Printf.sprintf "advertised payload of %d bytes out of range" n
  | Stalled { mid_frame = true } -> "peer stalled mid-frame"
  | Stalled { mid_frame = false } -> "idle timeout waiting for a frame"

let rec retry_intr f = try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_intr f

type io = {
  read : bytes -> int -> int -> int;
  write : bytes -> int -> int -> int;
  wait_read : float -> bool;
  wait_write : float -> bool;
}

let io_of_fd fd =
  {
    read = (fun buf pos len -> Unix.read fd buf pos len);
    (* [single_write], not [write]: [Unix.write] loops until the whole
       buffer is gone, which would let one large frame sail past the
       select-based write deadline. *)
    write = (fun buf pos len -> Unix.single_write fd buf pos len);
    wait_read =
      (fun timeout ->
        match retry_intr (fun () -> Unix.select [ fd ] [] [] timeout) with
        | r, _, _ -> r <> []);
    wait_write =
      (fun timeout ->
        match retry_intr (fun () -> Unix.select [] [ fd ] [] timeout) with
        | _, w, _ -> w <> []);
  }

let now () = Unix.gettimeofday ()

(* Read exactly [n] bytes through [io] before [deadline] (absolute;
   [None] = no limit): the bytes, or how far we got when the stream
   ended or the peer stalled.  [EINTR] retries; a ready-then-blocking
   descriptor is tolerated (we only [read] after [wait_read]). *)
let really_read_io io ?deadline n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then `Ok (Bytes.unsafe_to_string buf)
    else
      let budget = match deadline with None -> -1.0 | Some d -> d -. now () in
      if (match deadline with Some _ -> budget <= 0.0 | None -> false) then
        `Stalled off
      else if not (io.wait_read budget) then `Stalled off
      else
        match io.read buf off (n - off) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | 0 -> `Eof off
        | k -> go (off + k)
  in
  go 0

let deadline_in = Option.map (fun s -> now () +. s)

let read_frame_io ?(max_bytes = default_max_frame_bytes) ?idle_timeout
    ?frame_timeout io =
  match really_read_io io ?deadline:(deadline_in idle_timeout) 4 with
  | `Eof 0 -> Stdlib.Error Eof
  | `Eof _ -> Stdlib.Error Truncated
  | `Stalled consumed -> Stdlib.Error (Stalled { mid_frame = consumed > 0 })
  | `Ok prefix ->
      let byte i = Char.code prefix.[i] in
      let len = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
      if len < 2 || len > max_bytes then Stdlib.Error (Oversized len)
      else (
        match really_read_io io ?deadline:(deadline_in frame_timeout) len with
        | `Eof _ -> Stdlib.Error Truncated
        | `Stalled _ -> Stdlib.Error (Stalled { mid_frame = true })
        | `Ok payload -> Stdlib.Ok payload)

let really_write_io io ?deadline s =
  let buf = Bytes.unsafe_of_string s in
  let n = Bytes.length buf in
  let rec go off =
    if off < n then begin
      let budget = match deadline with None -> -1.0 | Some d -> d -. now () in
      if
        (match deadline with Some _ -> budget <= 0.0 | None -> false)
        || not (io.wait_write budget)
      then raise (Unix.Unix_error (Unix.ETIMEDOUT, "write_frame", ""));
      match io.write buf off (n - off) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | k -> go (off + k)
    end
  in
  go 0

let write_frame_io ?timeout io payload =
  let n = String.length payload in
  if n < 2 || n > 0xffff_ffff then
    invalid_arg "Protocol.write_frame: payload length out of range";
  let prefix = Bytes.create 4 in
  Bytes.set prefix 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set prefix 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set prefix 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set prefix 3 (Char.chr (n land 0xff));
  (* One deadline covers prefix + payload: a frame is written whole or
     the connection is torn down by the caller. *)
  let deadline = deadline_in timeout in
  (* One writev-style call would be nicer; two writes keep it simple and
     the kernel coalesces them (TCP_NODELAY is not set). *)
  really_write_io io ?deadline (Bytes.unsafe_to_string prefix);
  really_write_io io ?deadline payload

let read_frame ?max_bytes fd = read_frame_io ?max_bytes (io_of_fd fd)

let write_frame fd payload = write_frame_io (io_of_fd fd) payload
