module Wire = Sqp_relalg.Wire

let version = 1
let default_max_frame_bytes = 8 * 1024 * 1024

(* {1 Messages} *)

type request =
  | Range_search of { lo : int array; hi : int array }
  | Query of Sqp_relalg.Wire.plan
  | Explain of Sqp_relalg.Wire.plan
  | Analyze of Sqp_relalg.Wire.plan
  | Health
  | Insert of { table : string; points : (int array * int) list }
  | Delete of { table : string; points : int array list }
  | Create_index of { table : string }
  | Live_range of { table : string; lo : int array; hi : int array }
  | Refresh_stats

type request_frame = { deadline_ms : int option; request : request }

type error_code =
  | Bad_request
  | Unsupported_version
  | Unknown_relation
  | Overloaded
  | Timed_out
  | Shutting_down
  | Server_error

type health = {
  healthy : bool;
  detail : string;
  in_flight : int;
  queued : int;
  served : int;
}

type response =
  | Rows of Sqp_relalg.Relation.t
  | Text of string
  | Analyzed of { rendered : string; rows : Sqp_relalg.Relation.t }
  | Health_report of health
  | Error of { code : error_code; message : string }
  | Ack of { applied : int; seq : int }

let error_code_name = function
  | Bad_request -> "bad_request"
  | Unsupported_version -> "unsupported_version"
  | Unknown_relation -> "unknown_relation"
  | Overloaded -> "overloaded"
  | Timed_out -> "timed_out"
  | Shutting_down -> "shutting_down"
  | Server_error -> "server_error"

let error_code_byte = function
  | Bad_request -> 0
  | Unsupported_version -> 1
  | Unknown_relation -> 2
  | Overloaded -> 3
  | Timed_out -> 4
  | Shutting_down -> 5
  | Server_error -> 6

let error_code_of_byte = function
  | 0 -> Bad_request
  | 1 -> Unsupported_version
  | 2 -> Unknown_relation
  | 3 -> Overloaded
  | 4 -> Timed_out
  | 5 -> Shutting_down
  | 6 -> Server_error
  | n -> raise (Wire.Corrupt (Printf.sprintf "unknown error code %d" n))

(* {1 Payload codecs}

   Payload = version:u8 | tag:u8 | body.  Request body opens with the
   deadline (u32 milliseconds, 0 = none). *)

let write_int_array = Wire.write_int_array

let read_int_array = Wire.read_int_array

let encode_request { deadline_ms; request } =
  let b = Buffer.create 64 in
  Wire.write_u8 b version;
  Wire.write_u8 b
    (match request with
    | Range_search _ -> 1
    | Query _ -> 2
    | Explain _ -> 3
    | Analyze _ -> 4
    | Health -> 5
    | Insert _ -> 6
    | Delete _ -> 7
    | Create_index _ -> 8
    | Live_range _ -> 9
    | Refresh_stats -> 10);
  Wire.write_u32 b (match deadline_ms with None -> 0 | Some ms -> max 1 ms);
  (match request with
  | Range_search { lo; hi } ->
      write_int_array b lo;
      write_int_array b hi
  | Query plan | Explain plan | Analyze plan -> Wire.write_plan b plan
  | Health -> ()
  | Insert { table; points } ->
      Wire.write_string b table;
      Wire.write_point_list b points
  | Delete { table; points } ->
      Wire.write_string b table;
      Wire.write_u32 b (List.length points);
      List.iter (write_int_array b) points
  | Create_index { table } -> Wire.write_string b table
  | Live_range { table; lo; hi } ->
      Wire.write_string b table;
      write_int_array b lo;
      write_int_array b hi
  | Refresh_stats -> ());
  Buffer.contents b

let decode_request payload =
  if String.length payload < 2 then
    Stdlib.Error (Bad_request, "payload shorter than 2 bytes")
  else
    let c = Wire.cursor payload in
    let ver = Wire.read_u8 c in
    if ver <> version then
      Stdlib.Error
        ( Unsupported_version,
          Printf.sprintf "protocol version %d; this server speaks %d" ver version )
    else
      let tag = Wire.read_u8 c in
      match
        let deadline_ms =
          match Wire.read_u32 c with 0 -> None | ms -> Some ms
        in
        let request =
          match tag with
          | 1 ->
              let lo = read_int_array c in
              let hi = read_int_array c in
              if Array.length lo <> Array.length hi then
                raise (Wire.Corrupt "lo/hi dimensionality mismatch");
              Range_search { lo; hi }
          | 2 -> Query (Wire.read_plan c)
          | 3 -> Explain (Wire.read_plan c)
          | 4 -> Analyze (Wire.read_plan c)
          | 5 -> Health
          | 6 ->
              let table = Wire.read_string c in
              let points = Wire.read_point_list c in
              Insert { table; points }
          | 7 ->
              let table = Wire.read_string c in
              let n = Wire.read_u32 c in
              let points = ref [] in
              for _ = 1 to n do
                points := read_int_array c :: !points
              done;
              Delete { table; points = List.rev !points }
          | 8 -> Create_index { table = Wire.read_string c }
          | 9 ->
              let table = Wire.read_string c in
              let lo = read_int_array c in
              let hi = read_int_array c in
              if Array.length lo <> Array.length hi then
                raise (Wire.Corrupt "lo/hi dimensionality mismatch");
              Live_range { table; lo; hi }
          | 10 -> Refresh_stats
          | t -> raise (Wire.Corrupt (Printf.sprintf "unknown request tag %d" t))
        in
        if not (Wire.at_end c) then raise (Wire.Corrupt "trailing bytes");
        { deadline_ms; request }
      with
      | frame -> Stdlib.Ok frame
      | exception Wire.Corrupt m -> Stdlib.Error (Bad_request, m)

let encode_response resp =
  let b = Buffer.create 256 in
  Wire.write_u8 b version;
  (match resp with
  | Rows r ->
      Wire.write_u8 b 1;
      Wire.write_relation b r
  | Text s ->
      Wire.write_u8 b 2;
      Wire.write_string b s
  | Analyzed { rendered; rows } ->
      Wire.write_u8 b 3;
      Wire.write_string b rendered;
      Wire.write_relation b rows
  | Health_report h ->
      Wire.write_u8 b 4;
      Wire.write_u8 b (if h.healthy then 1 else 0);
      Wire.write_string b h.detail;
      Wire.write_i64 b h.in_flight;
      Wire.write_i64 b h.queued;
      Wire.write_i64 b h.served
  | Error { code; message } ->
      Wire.write_u8 b 5;
      Wire.write_u8 b (error_code_byte code);
      Wire.write_string b message
  | Ack { applied; seq } ->
      Wire.write_u8 b 6;
      Wire.write_i64 b applied;
      Wire.write_i64 b seq);
  Buffer.contents b

let decode_response payload =
  if String.length payload < 2 then Stdlib.Error "payload shorter than 2 bytes"
  else
    let c = Wire.cursor payload in
    match
      let ver = Wire.read_u8 c in
      if ver <> version then
        raise (Wire.Corrupt (Printf.sprintf "unsupported response version %d" ver));
      let resp =
        match Wire.read_u8 c with
        | 1 -> Rows (Wire.read_relation c)
        | 2 -> Text (Wire.read_string c)
        | 3 ->
            let rendered = Wire.read_string c in
            let rows = Wire.read_relation c in
            Analyzed { rendered; rows }
        | 4 ->
            let healthy = Wire.read_u8 c <> 0 in
            let detail = Wire.read_string c in
            let in_flight = Wire.read_i64 c in
            let queued = Wire.read_i64 c in
            let served = Wire.read_i64 c in
            Health_report { healthy; detail; in_flight; queued; served }
        | 5 ->
            let code = error_code_of_byte (Wire.read_u8 c) in
            let message = Wire.read_string c in
            Error { code; message }
        | 6 ->
            let applied = Wire.read_i64 c in
            let seq = Wire.read_i64 c in
            Ack { applied; seq }
        | t -> raise (Wire.Corrupt (Printf.sprintf "unknown response tag %d" t))
      in
      if not (Wire.at_end c) then raise (Wire.Corrupt "trailing bytes");
      resp
    with
    | resp -> Stdlib.Ok resp
    | exception Wire.Corrupt m -> Stdlib.Error m

(* {1 Frame I/O} *)

type read_error = Eof | Truncated | Oversized of int

let read_error_to_string = function
  | Eof -> "clean end of stream"
  | Truncated -> "stream ended mid-frame"
  | Oversized n -> Printf.sprintf "advertised payload of %d bytes out of range" n

let rec retry_intr f = try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_intr f

(* Read exactly [n] bytes: [Ok bytes], or [Error read] if the stream
   ended after [read] bytes. *)
let really_read fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then Stdlib.Ok (Bytes.unsafe_to_string buf)
    else
      match retry_intr (fun () -> Unix.read fd buf off (n - off)) with
      | 0 -> Stdlib.Error off
      | k -> go (off + k)
  in
  go 0

let read_frame ?(max_bytes = default_max_frame_bytes) fd =
  match really_read fd 4 with
  | Stdlib.Error 0 -> Stdlib.Error Eof
  | Stdlib.Error _ -> Stdlib.Error Truncated
  | Stdlib.Ok prefix ->
      let byte i = Char.code prefix.[i] in
      let len = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
      if len < 2 || len > max_bytes then Stdlib.Error (Oversized len)
      else (
        match really_read fd len with
        | Stdlib.Error _ -> Stdlib.Error Truncated
        | Stdlib.Ok payload -> Stdlib.Ok payload)

let really_write fd s =
  let buf = Bytes.unsafe_of_string s in
  let n = Bytes.length buf in
  let rec go off =
    if off < n then
      let k = retry_intr (fun () -> Unix.write fd buf off (n - off)) in
      go (off + k)
  in
  go 0

let write_frame fd payload =
  let n = String.length payload in
  if n < 2 || n > 0xffff_ffff then
    invalid_arg "Protocol.write_frame: payload length out of range";
  let prefix = Bytes.create 4 in
  Bytes.set prefix 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set prefix 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set prefix 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set prefix 3 (Char.chr (n land 0xff));
  (* One writev-style call would be nicer; two writes keep it simple and
     the kernel coalesces them (TCP_NODELAY is not set). *)
  really_write fd (Bytes.unsafe_to_string prefix);
  really_write fd payload
