(** The wire protocol: versioned, length-prefixed binary frames.

    Frame layout on the socket (all integers big-endian):

    {v
    +-------------+-----------+-------+-------------------+
    | length: u32 | ver: u8   | tag:u8| body (length - 2) |
    +-------------+-----------+-------+-------------------+
    v}

    [length] counts the payload (version byte, tag byte and body) and
    must be between 2 and the reader's [max_bytes]; anything else is a
    framing error and ends the session.  Within a well-framed payload,
    decoding errors are {e recoverable}: the bytes were fully consumed,
    so the server answers a typed {!constructor-Error} response and the
    session continues.

    Version {!version} (= 2) adds the resilience header: after the
    deadline, a request carries an optional {e idempotency key}
    [(client_id, request_seq)] (flag byte 0/1, then two [i64]s),
    permitted on the live-table tags 6-9.  The server's per-client dedup
    window uses the key to answer a {e replayed} mutation with the
    original [Ack] bytes instead of applying the batch again — the
    foundation of the client's retry loop.  Decoders accept version 1
    frames (same layout, no idempotency block) so old clients keep
    working; responses are encoded at the requester's version.  A
    request with any other version byte draws [Unsupported_version]
    (the error frame itself encoded at version 2).

    Requests carry a deadline in milliseconds (0 = none) — the
    {e remaining} budget as seen by the client at send time, so the
    server spends only what the caller still has.  Responses mirror
    requests; every request can also draw [Error].  Codecs are total on
    hostile bytes: [decode_*] return [Result], never raise. *)

val version : int
(** Protocol version, currently 2.  Decoders also accept 1. *)

val default_max_frame_bytes : int
(** Reader-side payload cap, 8 MiB. *)

(** {1 Messages} *)

type request =
  | Range_search of { lo : int array; hi : int array }
      (** Range query over the server's point set: coordinates of the
          points inside the box \[lo, hi\] (inclusive, one bound per
          dimension). *)
  | Query of Sqp_relalg.Wire.plan
      (** Execute a closure-free plan against the server catalog. *)
  | Explain of Sqp_relalg.Wire.plan  (** Optimize + EXPLAIN, no execution. *)
  | Analyze of Sqp_relalg.Wire.plan
      (** EXPLAIN ANALYZE: execute under measurement, return both the
          annotated operator tree and the result rows. *)
  | Health  (** Liveness + catalog check; bypasses admission control. *)
  | Insert of { table : string; points : (int array * int) list }
      (** Append (point, payload) entries to a live table; drawn through
          the same admission control as queries.  Answered by [Ack]. *)
  | Delete of { table : string; points : int array list }
      (** Remove the first entry at each exact point from a live table;
          [Ack.applied] counts the points actually present. *)
  | Create_index of { table : string }
      (** Online index rebuild: backfill + catch-up + atomic swap, while
          concurrent mutations keep flowing.  [Ack.applied] is the entry
          count of the finished index. *)
  | Live_range of { table : string; lo : int array; hi : int array }
      (** Snapshot range query over a live table: rows [(id, x0..xk)]
          for the entries inside the (inclusive) box, in z order, read
          from one frozen snapshot — never a half-applied batch. *)
  | Refresh_stats
      (** Run the ANALYZE pass over the catalog: rebuild row counts and
          z-prefix histograms for every relation and store them as the
          statistics the cost-based optimizer uses for all subsequent
          [Range_search]/[Query]/[Explain]/[Analyze] requests.  Answered
          by [Text] with the statistics summary.  Admission-controlled
          like a query (it executes every catalog plan once). *)
  | Recover
      (** Admin frame: attempt to leave degraded mode — reopen any
          poisoned live-table store (journal recovery) and, on success,
          resume accepting mutations.  Bypasses admission control like
          [Health].  Answered by [Text], or [Error Degraded] if the
          stores are still sick. *)
  | Shard_map_get
      (** Fetch the current {!Shard_map.t} (from a router, the routing
          truth; from a shard, the last map pushed to it).  Answered by
          [Shard_map], or [Error Unknown_relation] when the peer has no
          map.  Bypasses admission control like [Health]. *)
  | Shard_map_set of { map : Shard_map.t; self : int }
      (** Install a shard map (router → shard, at cluster bring-up and
          on every epoch flip).  [self] is the index of the recipient's
          own entry in [map.entries], or [-1] if it owns no range; the
          shard derives its owned z interval from it and thereafter
          filters range reads to that interval (so a just-moved range
          cannot be double-answered by its old owner).  A map whose
          epoch is below the installed one draws [Error Stale_epoch].
          Answered by [Ack { applied = entries; seq = epoch }]. *)
  | Forward of { epoch : int; payload : string }
      (** The forwarded-request envelope (router → shard): [payload] is
          a complete inner request payload (version byte, tag byte,
          body — one level deep only), [epoch] the shard-map epoch the
          sender routed under.  A shard holding a different epoch
          answers [Error Stale_epoch] without looking at the inner
          request — the fencing that makes rebalance flips safe.  The
          inner request passes through the full normal pipeline
          (admission, dedup window, degraded checks), so a forwarded
          mutation carrying the {e origin client's} idempotency key is
          exactly-once end to end across router and shard retries. *)

type idem = { client_id : int; request_seq : int }
(** An idempotency key: [client_id] names a client instance (random,
    collision-unlikely), [request_seq] its per-client monotone request
    counter.  A client retries a mutation with the {e same} key until it
    has an answer; the server's dedup window makes the pair
    apply-at-most-once. *)

type request_frame = {
  deadline_ms : int option;
      (** Remaining deadline budget in milliseconds; bounds queue wait
          plus execution, expiry draws [Error Timed_out]. *)
  idem : idem option;
      (** Idempotency key; only on tags 6-9 (mutations and live reads),
          [Bad_request] elsewhere. *)
  request : request;
}
(** What a request payload decodes to. *)

type error_code =
  | Bad_request  (** undecodable payload or malformed plan *)
  | Unsupported_version  (** version byte neither 1 nor {!version} *)
  | Unknown_relation  (** plan names a relation the catalog lacks *)
  | Overloaded  (** admission queue full: load was shed *)
  | Timed_out  (** the request's deadline expired *)
  | Shutting_down  (** server is draining; retry elsewhere *)
  | Server_error  (** execution raised; message has details *)
  | Degraded
      (** read-only degraded mode (disk full or runtime corruption):
          mutations are rejected, reads keep serving.  Not sent to v1
          peers — they see [Server_error] with a ["degraded: "] message
          prefix. *)
  | Stale_epoch
      (** the request's shard-map epoch (a [Forward] envelope's stamp,
          or a [Shard_map_set] going backwards) does not match the
          shard's installed epoch: refetch the map and retry.  Not sent
          to v1 peers — they see [Server_error] with a
          ["stale epoch: "] message prefix. *)

type health = {
  healthy : bool;
  detail : string;  (** human-readable catalog/self-check summary *)
  in_flight : int;  (** queries executing right now *)
  queued : int;  (** queries waiting for an execution slot *)
  served : int;  (** requests answered since startup *)
  mode : string;
      (** ["serving"], ["draining"] or ["degraded: <reason>"]; [""] when
          the report came from a v1 server that predates modes. *)
}

type response =
  | Rows of Sqp_relalg.Relation.t  (** result of [Range_search]/[Query] *)
  | Text of string  (** result of [Explain] *)
  | Analyzed of { rendered : string; rows : Sqp_relalg.Relation.t }
      (** result of [Analyze] *)
  | Health_report of health
  | Error of { code : error_code; message : string }
  | Ack of { applied : int; seq : int }
      (** Result of a mutation: [applied] ops took effect, [seq] is the
          table's batch sequence number after the mutation (reads after
          this sequence see the batch).  A replayed mutation (same
          idempotency key) returns the {e original} [Ack], byte for
          byte.  Through a router, [applied] sums the per-shard counts
          and [seq] is the highest per-shard sequence touched. *)
  | Shard_map of Shard_map.t  (** result of [Shard_map_get] *)

val error_code_name : error_code -> string
(** Stable lower-snake name, e.g. ["overloaded"]. *)

(** {1 Payload codecs}

    These encode/decode the frame {e payload} (version byte, tag byte,
    body) — the length prefix belongs to the frame I/O below. *)

val encode_request : request_frame -> string
(** Always encodes at version {!version}.
    @raise Invalid_argument if [idem] is set on a tag outside 6-9. *)

val decode_request : string -> (request_frame, error_code * string) result
(** Accepts version 1 and {!version} payloads.
    [Error (Unsupported_version, _)] on any other version byte,
    [Error (Bad_request, _)] on anything else malformed. *)

val encode_response : ?version:int -> response -> string
(** [version] defaults to {!version}; pass [1] to answer a v1 peer
    (health loses [mode]; [Degraded] downgrades to [Server_error]).
    @raise Invalid_argument on a version that is neither 1 nor 2. *)

val decode_response : string -> (response, string) result
(** Accepts version 1 and {!version} payloads. *)

val payload_version : string -> int
(** First byte of a payload (0 when empty): the peer's protocol version,
    so a server can encode its reply at the requester's version without
    decoding the frame twice. *)

(** {1 Frame I/O}

    Blocking reads/writes of whole frames.  [EINTR] is retried; short
    reads are completed or reported.  All I/O goes through an {!io}
    record, so tests can thread a fault-injecting shim
    ({!Faulty_net}) under every frame without touching this module. *)

type io = {
  read : bytes -> int -> int -> int;  (** [read buf pos len], as read(2) *)
  write : bytes -> int -> int -> int;  (** as write(2) *)
  wait_read : float -> bool;
      (** Wait up to the given seconds (negative = forever) for
          readability; [false] on timeout. *)
  wait_write : float -> bool;  (** likewise for writability *)
}
(** A socket's I/O surface — the seam where fault injection and
    timeouts plug in. *)

val io_of_fd : Unix.file_descr -> io
(** The honest implementation: read/write/select on the descriptor. *)

type read_error =
  | Eof  (** clean end of stream before any byte of a frame *)
  | Truncated  (** the stream ended mid-frame *)
  | Oversized of int  (** advertised payload length out of \[2, max\] *)
  | Stalled of { mid_frame : bool }
      (** a timeout expired: [mid_frame] distinguishes a peer that went
          quiet inside a frame (slow-loris, network partition) from one
          that simply sent nothing (idle session) *)

val read_error_to_string : read_error -> string

val read_frame_io :
  ?max_bytes:int ->
  ?idle_timeout:float ->
  ?frame_timeout:float ->
  io ->
  (string, read_error) result
(** Read one length-prefixed payload.  [idle_timeout] bounds the wait
    for the frame to {e start} (through the 4-byte prefix);
    [frame_timeout] separately bounds reading the payload once the
    length is known — so a peer dribbling one byte per minute cannot pin
    the reader.  After [Oversized] or [Stalled] the stream position is
    unusable; close the connection. *)

val write_frame_io : ?timeout:float -> io -> string -> unit
(** Write the length prefix and payload; [timeout] bounds the whole
    frame.
    @raise Invalid_argument if the payload exceeds [u32] or is shorter
    than 2 bytes.
    @raise Unix.Unix_error as write(2) does (e.g. [EPIPE]), or
    [ETIMEDOUT] if the timeout expires. *)

val read_frame :
  ?max_bytes:int -> Unix.file_descr -> (string, read_error) result
(** [read_frame_io] over {!io_of_fd}, no timeouts. *)

val write_frame : Unix.file_descr -> string -> unit
(** [write_frame_io] over {!io_of_fd}, no timeout. *)
