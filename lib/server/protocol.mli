(** The wire protocol: versioned, length-prefixed binary frames.

    Frame layout on the socket (all integers big-endian):

    {v
    +-------------+-----------+-------+-------------------+
    | length: u32 | ver: u8   | tag:u8| body (length - 2) |
    +-------------+-----------+-------+-------------------+
    v}

    [length] counts the payload (version byte, tag byte and body) and
    must be between 2 and the reader's [max_bytes]; anything else is a
    framing error and ends the session.  Within a well-framed payload,
    decoding errors are {e recoverable}: the bytes were fully consumed,
    so the server answers a typed {!constructor-Error} response and the
    session continues.

    Version {!version} (= 1) is the only version either side speaks; a
    request frame with a different version byte draws an
    [Unsupported_version] error response (the error frame itself is
    encoded at version 1, lowest-common-denominator style).

    Requests carry a deadline in milliseconds (0 = none).  Responses
    mirror requests; every request can also draw [Error].  Codecs are
    total on hostile bytes: [decode_*] return [Result], never raise. *)

val version : int
(** Protocol version, currently 1. *)

val default_max_frame_bytes : int
(** Reader-side payload cap, 8 MiB. *)

(** {1 Messages} *)

type request =
  | Range_search of { lo : int array; hi : int array }
      (** Range query over the server's point set: coordinates of the
          points inside the box \[lo, hi\] (inclusive, one bound per
          dimension). *)
  | Query of Sqp_relalg.Wire.plan
      (** Execute a closure-free plan against the server catalog. *)
  | Explain of Sqp_relalg.Wire.plan  (** Optimize + EXPLAIN, no execution. *)
  | Analyze of Sqp_relalg.Wire.plan
      (** EXPLAIN ANALYZE: execute under measurement, return both the
          annotated operator tree and the result rows. *)
  | Health  (** Liveness + catalog check; bypasses admission control. *)
  | Insert of { table : string; points : (int array * int) list }
      (** Append (point, payload) entries to a live table; drawn through
          the same admission control as queries.  Answered by [Ack]. *)
  | Delete of { table : string; points : int array list }
      (** Remove the first entry at each exact point from a live table;
          [Ack.applied] counts the points actually present. *)
  | Create_index of { table : string }
      (** Online index rebuild: backfill + catch-up + atomic swap, while
          concurrent mutations keep flowing.  [Ack.applied] is the entry
          count of the finished index. *)
  | Live_range of { table : string; lo : int array; hi : int array }
      (** Snapshot range query over a live table: rows [(id, x0..xk)]
          for the entries inside the (inclusive) box, in z order, read
          from one frozen snapshot — never a half-applied batch. *)
  | Refresh_stats
      (** Run the ANALYZE pass over the catalog: rebuild row counts and
          z-prefix histograms for every relation and store them as the
          statistics the cost-based optimizer uses for all subsequent
          [Range_search]/[Query]/[Explain]/[Analyze] requests.  Answered
          by [Text] with the statistics summary.  Admission-controlled
          like a query (it executes every catalog plan once). *)

type request_frame = { deadline_ms : int option; request : request }
(** What a request payload decodes to.  [deadline_ms] bounds queue wait
    plus execution; expiry draws [Error Timed_out]. *)

type error_code =
  | Bad_request  (** undecodable payload or malformed plan *)
  | Unsupported_version  (** version byte <> {!version} *)
  | Unknown_relation  (** plan names a relation the catalog lacks *)
  | Overloaded  (** admission queue full: load was shed *)
  | Timed_out  (** the request's deadline expired *)
  | Shutting_down  (** server is draining; retry elsewhere *)
  | Server_error  (** execution raised; message has details *)

type health = {
  healthy : bool;
  detail : string;  (** human-readable catalog/self-check summary *)
  in_flight : int;  (** queries executing right now *)
  queued : int;  (** queries waiting for an execution slot *)
  served : int;  (** requests answered since startup *)
}

type response =
  | Rows of Sqp_relalg.Relation.t  (** result of [Range_search]/[Query] *)
  | Text of string  (** result of [Explain] *)
  | Analyzed of { rendered : string; rows : Sqp_relalg.Relation.t }
      (** result of [Analyze] *)
  | Health_report of health
  | Error of { code : error_code; message : string }
  | Ack of { applied : int; seq : int }
      (** Result of a mutation: [applied] ops took effect, [seq] is the
          table's batch sequence number after the mutation (reads after
          this sequence see the batch). *)

val error_code_name : error_code -> string
(** Stable lower-snake name, e.g. ["overloaded"]. *)

(** {1 Payload codecs}

    These encode/decode the frame {e payload} (version byte, tag byte,
    body) — the length prefix belongs to the frame I/O below. *)

val encode_request : request_frame -> string

val decode_request : string -> (request_frame, error_code * string) result
(** [Error (Unsupported_version, _)] when the version byte differs,
    [Error (Bad_request, _)] on anything else malformed. *)

val encode_response : response -> string

val decode_response : string -> (response, string) result

(** {1 Frame I/O}

    Blocking reads/writes of whole frames on a file descriptor.  [EINTR]
    is retried; short reads are completed or reported. *)

type read_error =
  | Eof  (** clean end of stream before any byte of a frame *)
  | Truncated  (** the stream ended mid-frame *)
  | Oversized of int  (** advertised payload length out of \[2, max\] *)

val read_error_to_string : read_error -> string

val read_frame :
  ?max_bytes:int -> Unix.file_descr -> (string, read_error) result
(** Read one length-prefixed payload.  After [Oversized] the stream
    position is unusable (the payload was not consumed); close the
    connection. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write the length prefix and payload.
    @raise Invalid_argument if the payload exceeds [u32] or is shorter
    than 2 bytes.
    @raise Unix.Unix_error as write(2) does, e.g. [EPIPE]. *)
