module P = Protocol
module R = Sqp_relalg
module Metrics = Sqp_obs.Metrics
module Storage_error = Sqp_storage.Storage_error

type config = {
  host : string;
  port : int;
  parallelism : int;
  max_in_flight : int;
  max_queue : int;
  max_frame_bytes : int;
  default_deadline_ms : int option;
  idle_timeout_s : float option;
  frame_timeout_s : float option;
  session_io : (Unix.file_descr -> P.io) option;
  on_execute : unit -> unit;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    parallelism = 2;
    max_in_flight = 8;
    max_queue = 32;
    max_frame_bytes = P.default_max_frame_bytes;
    default_deadline_ms = None;
    idle_timeout_s = None;
    frame_timeout_s = None;
    session_io = None;
    on_execute = ignore;
  }

type t = {
  config : config;
  cat : Catalog.t;
  pool : Sqp_parallel.Pool.t;
  adm : Admission.t;
  lfd : Unix.file_descr;
  bound_port : int;
  mutable stopping : bool;
  mutable stopped : bool;
  mutable degraded : string option;  (* read-only mode, with its reason *)
  mutable acceptor : Thread.t option;
  mutable sessions : (Unix.file_descr * Thread.t option ref) list;
      (* The thread slot is filled right after spawn; [stop] joins the
         acceptor first, so by the time it walks this list every slot of
         a registered session is filled. *)
  m : Mutex.t;
  (* instruments *)
  c_requests : Metrics.counter;
  c_ok : Metrics.counter;
  c_err : Metrics.counter;
  c_bad_frames : Metrics.counter;
  c_timeouts : Metrics.counter;
  h_latency : Metrics.histogram;
  c_sessions : Metrics.counter;
  g_active_sessions : Metrics.gauge;
  c_aborted_sessions : Metrics.counter;
  c_idle_closed : Metrics.counter;
  c_dedup_hits : Metrics.counter;
  g_degraded : Metrics.gauge;
}

let port t = t.bound_port
let catalog t = t.cat

let now = Unix.gettimeofday

let expired = function None -> false | Some d -> now () >= d

(* {1 Degraded mode}

   ENOSPC (or runtime corruption) on a mutation flips the server
   read-only: reads keep answering from memory, mutations draw the
   typed [Degraded] error, health reports the mode.  The [Recover]
   admin frame (or a restart) reopens the poisoned stores and flips
   back. *)

let degraded_reason t =
  Mutex.lock t.m;
  let d = t.degraded in
  Mutex.unlock t.m;
  d

let enter_degraded t reason =
  Mutex.lock t.m;
  if t.degraded = None then t.degraded <- Some reason;
  Mutex.unlock t.m;
  Metrics.set_gauge t.g_degraded 1

let leave_degraded t =
  Mutex.lock t.m;
  t.degraded <- None;
  Mutex.unlock t.m;
  Metrics.set_gauge t.g_degraded 0

let storage_failure_message e =
  match Storage_error.to_string e with
  | Some s -> s
  | None -> Printexc.to_string e

(* {1 Execution}

   Plan failures must come back as typed errors, not dead sessions:
   unresolvable names map to [Unknown_relation], malformed plans
   (missing attributes, clashing schemas) to [Bad_request], storage
   failures that make the store unwritable (disk full, corruption) flip
   degraded mode and map to [Degraded], anything else to
   [Server_error]. *)

let guard t f =
  try f () with
  | Sqp_relalg.Wire.Unknown_relation name ->
      P.Error
        {
          code = P.Unknown_relation;
          message = Printf.sprintf "no relation %S in the catalog" name;
        }
  | Storage_error.Io_error _ as e when Storage_error.is_disk_full e ->
      let message = storage_failure_message e in
      enter_degraded t ("disk full: " ^ message);
      P.Error { code = P.Degraded; message = "entering read-only mode: " ^ message }
  | Storage_error.Corrupt _ as e ->
      let message = storage_failure_message e in
      enter_degraded t ("corruption detected: " ^ message);
      P.Error { code = P.Degraded; message = "entering read-only mode: " ^ message }
  | Invalid_argument m -> P.Error { code = P.Bad_request; message = m }
  | Not_found ->
      P.Error
        { code = P.Bad_request; message = "plan references an unknown attribute" }
  | e -> P.Error { code = P.Server_error; message = Printexc.to_string e }

module O = Sqp_optimizer

(* Wire plan -> runnable plan: resolve names, push-down-optimize, and —
   once statistics exist — let the cost-based optimizer force join
   implementations and orders. *)
let instantiate t wplan =
  let plan =
    R.Plan.optimize (R.Wire.to_plan ~resolve:(Catalog.resolve t.cat) wplan)
  in
  match Catalog.stats t.cat with
  | None -> plan
  | Some st -> fst (O.Optimizer.choose_plan st plan)

module Live = Sqp_btree.Live

let live_table t name =
  match Catalog.live t.cat name with
  | Some lv -> lv
  | None -> raise (R.Wire.Unknown_relation name)

(* Rows (id, x0..xk) for live-table reads, in z order. *)
let live_rows space entries =
  let k = Sqp_zorder.Space.dims space in
  let schema =
    R.Schema.make
      (("id", R.Value.TInt)
      :: List.init k (fun i -> (Printf.sprintf "x%d" i, R.Value.TInt)))
  in
  let tuples =
    List.map
      (fun (p, id) ->
        Array.of_list (R.Value.Int id :: List.init k (fun i -> R.Value.Int p.(i))))
      entries
  in
  R.Relation.make ~name:"live" schema tuples

(* The coordinate-row relation a range search answers with — the same
   schema as the plan path's [Project [x0..xk]]. *)
let coord_rows space entries =
  let k = Sqp_zorder.Space.dims space in
  let schema =
    R.Schema.make (List.init k (fun i -> (Printf.sprintf "x%d" i, R.Value.TInt)))
  in
  let tuples =
    List.map
      (fun (p, _payload) -> Array.init k (fun i -> R.Value.Int p.(i)))
      entries
  in
  R.Relation.make ~name:"range" schema tuples

let range_search t ~lo ~hi =
  match Catalog.range_access t.cat ~lo ~hi with
  | Catalog.Direct best ->
      (* Exact cover on the direct kernel: run the Section 3.3 merge on
         the prepared point sequence — no plan, no refine, identical
         rows. *)
      let box = Sqp_geom.Box.make ~lo ~hi in
      let prep = Catalog.prepared_points t.cat in
      let search =
        match best.O.Cost.method_ with
        | O.Cost.Plain -> Sqp_core.Range_search.search_plain
        | O.Cost.Skip -> Sqp_core.Range_search.search_skip
      in
      let entries, _counters = search prep box in
      coord_rows (Catalog.space t.cat) entries
  | Catalog.Planned ->
      let plan = R.Plan.optimize (Catalog.range_plan t.cat ~lo ~hi) in
      R.Plan.run_in_pool t.pool plan

let execute t request =
  match request with
  | P.Range_search { lo; hi } ->
      guard t (fun () ->
          ignore (Catalog.validate_bounds t.cat ~lo ~hi);
          P.Rows (range_search t ~lo ~hi))
  | P.Query wplan ->
      guard t (fun () -> P.Rows (R.Plan.run_in_pool t.pool (instantiate t wplan)))
  | P.Explain wplan ->
      guard t (fun () ->
          let plan = instantiate t wplan in
          let parallelism = Sqp_parallel.Pool.domains t.pool in
          P.Text
            (match Catalog.stats t.cat with
            | None -> R.Plan.explain ~parallelism plan
            | Some st -> O.Optimizer.explain ~parallelism st plan))
  | P.Analyze wplan ->
      guard t (fun () ->
          let plan = instantiate t wplan in
          let a = R.Plan.run_analyze_in_pool t.pool plan in
          let rendered =
            match Catalog.stats t.cat with
            | None -> R.Plan.render_analysis a
            | Some st ->
                R.Plan.render_analysis a ^ "\n"
                ^ O.Optimizer.render_comparison
                    (O.Optimizer.compare_analysis st plan a.R.Plan.report)
          in
          P.Analyzed { rendered; rows = a.R.Plan.result })
  | P.Refresh_stats ->
      guard t (fun () -> P.Text (O.Stats.summary (Catalog.analyze t.cat)))
  | P.Insert { table; points } ->
      guard t (fun () ->
          let lv = live_table t table in
          let seq, applied =
            Live.apply lv (List.map (fun (p, id) -> Live.Insert (p, id)) points)
          in
          P.Ack { applied; seq })
  | P.Delete { table; points } ->
      guard t (fun () ->
          let lv = live_table t table in
          let seq, applied =
            Live.apply lv (List.map (fun p -> Live.Delete p) points)
          in
          P.Ack { applied; seq })
  | P.Create_index { table } ->
      guard t (fun () ->
          let lv = live_table t table in
          let idx, seq = Live.rebuild_online lv in
          (* Cache it: packed reads dominate snapshot merges whenever the
             table has not moved past [seq] (see docs/COST_MODEL.md). *)
          Catalog.note_packed t.cat table idx seq;
          P.Ack { applied = Sqp_btree.Zindex.length idx; seq })
  | P.Live_range { table; lo; hi } ->
      guard t (fun () ->
          let lv = live_table t table in
          let space = Live.space lv in
          let dims = Sqp_zorder.Space.dims space in
          if Array.length lo <> dims || Array.length hi <> dims then
            invalid_arg
              (Printf.sprintf "live range bounds must have %d coordinates" dims);
          let box = Sqp_geom.Box.make ~lo ~hi in
          let rows =
            (* Access-path choice: a packed index that is still current
               (same batch sequence) strictly dominates the live
               snapshot merge — paged leaves, no decomposition of the
               tree in memory.  Any mutation since the build invalidates
               it, and we fall back to the snapshot. *)
            match Catalog.packed_index t.cat table with
            | Some (idx, seq) when seq = Live.seq lv ->
                fst (Sqp_btree.Zindex.range_search idx box)
            | _ -> fst (Live.range_search (Live.snapshot lv) box)
          in
          P.Rows (live_rows space rows))
  | P.Health | P.Recover -> assert false (* handled before admission *)

let is_mutation = function
  | P.Insert _ | P.Delete _ | P.Create_index _ -> true
  | P.Range_search _ | P.Query _ | P.Explain _ | P.Analyze _ | P.Health
  | P.Live_range _ | P.Refresh_stats | P.Recover ->
      false

let mode t =
  match degraded_reason t with
  | Some reason -> "degraded: " ^ reason
  | None -> if t.stopping then "draining" else "serving"

let health t =
  let healthy, detail = Catalog.health_detail t.cat in
  let in_flight, queued, _draining = Admission.stats t.adm in
  let degraded = degraded_reason t <> None in
  P.Health_report
    {
      P.healthy = healthy && (not t.stopping) && not degraded;
      detail = (if t.stopping then detail ^ "; draining" else detail);
      in_flight;
      queued;
      served = Metrics.counter_value t.c_ok + Metrics.counter_value t.c_err;
      mode = mode t;
    }

(* The [Recover] admin frame: reopen any poisoned live-table store
   (journal recovery decides which side of the failed commit the disk
   landed on) and, if every store comes back, leave degraded mode.  A
   no-op success on a healthy server. *)
let recover t =
  match Catalog.recover_lives t.cat with
  | [] ->
      leave_degraded t;
      P.Text "recovered: all live stores healthy; accepting mutations"
  | failures ->
      let message =
        String.concat "; "
          (List.map
             (fun (name, e) -> name ^ ": " ^ storage_failure_message e)
             failures)
      in
      P.Error { code = P.Degraded; message = "recovery failed: " ^ message }

(* One request payload in, one encoded response payload out.

   Keyed requests (protocol v2 idempotency keys) pass through the
   catalog's dedup window: a replay returns the original encoded bytes
   without re-executing; a fresh key claims a slot that is committed
   with the encoded response after execution — {e before} the
   post-execution deadline check, so a mutation that applied but
   overshot its deadline still leaves its [Ack] behind for the retry.
   Admission-level failures (shed / queue timeout / draining / degraded
   rejection) release the slot instead: the client may retry and
   succeed later. *)
let handle t payload =
  let arrival = now () in
  Metrics.incr t.c_requests;
  (* Encode the reply at the requester's version (a v1 peer cannot
     decode v2 bytes). *)
  let ver = if P.payload_version payload = 1 then 1 else P.version in
  let record resp =
    Metrics.observe t.h_latency (int_of_float ((now () -. arrival) *. 1e6));
    match resp with
    | P.Error _ -> Metrics.incr t.c_err
    | _ -> Metrics.incr t.c_ok
  in
  let finish resp =
    record resp;
    P.encode_response ~version:ver resp
  in
  match P.decode_request payload with
  | Error (code, message) -> finish (P.Error { code; message })
  | Ok { P.request = P.Health; _ } -> finish (health t)
  | Ok { P.request = P.Recover; _ } -> finish (recover t)
  | Ok { P.deadline_ms; idem; request } -> (
      let deadline =
        match
          match deadline_ms with
          | Some _ -> deadline_ms
          | None -> t.config.default_deadline_ms
        with
        | Some ms -> Some (arrival +. (float_of_int ms /. 1000.))
        | None -> None
      in
      let idem_key =
        match idem with
        | Some { P.client_id; request_seq } -> Some (client_id, request_seq)
        | None -> None
      in
      let abort_idem () =
        match idem_key with
        | Some (client_id, seq) -> Catalog.dedup_abort t.cat ~client_id ~seq
        | None -> ()
      in
      let commit_idem bytes =
        match idem_key with
        | Some (client_id, seq) -> Catalog.dedup_commit t.cat ~client_id ~seq bytes
        | None -> ()
      in
      (* Claim the key.  A concurrent duplicate (same key in flight on
         another session) waits for the original to settle. *)
      let rec claim () =
        match idem_key with
        | None -> `Execute
        | Some (client_id, seq) -> (
            match Catalog.dedup_begin t.cat ~client_id ~seq with
            | Catalog.Fresh -> `Execute
            | Catalog.Replay bytes -> `Replay bytes
            | Catalog.Too_old -> `Too_old
            | Catalog.In_flight ->
                if expired deadline then `Expired
                else begin
                  Thread.delay 0.001;
                  claim ()
                end)
      in
      match claim () with
      | `Replay bytes ->
          (* Only settled non-error answers are committed to the window,
             so a replay always counts as an ok response. *)
          Metrics.incr t.c_dedup_hits;
          Metrics.observe t.h_latency (int_of_float ((now () -. arrival) *. 1e6));
          Metrics.incr t.c_ok;
          bytes
      | `Too_old ->
          finish
            (P.Error
               {
                 code = P.Bad_request;
                 message = "idempotency key below the dedup window";
               })
      | `Expired ->
          Metrics.incr t.c_timeouts;
          finish
            (P.Error
               {
                 code = P.Timed_out;
                 message = "deadline expired awaiting a duplicate in flight";
               })
      | `Execute -> (
          match degraded_reason t with
          | Some reason when is_mutation request ->
              abort_idem ();
              finish
                (P.Error
                   {
                     code = P.Degraded;
                     message = "server is read-only (degraded: " ^ reason ^ ")";
                   })
          | _ -> (
              match Admission.acquire ?deadline t.adm with
              | Admission.Shed ->
                  abort_idem ();
                  finish
                    (P.Error
                       {
                         code = P.Overloaded;
                         message =
                           Printf.sprintf
                             "load shed: %d in flight, queue of %d full"
                             t.config.max_in_flight t.config.max_queue;
                       })
              | Admission.Timed_out ->
                  abort_idem ();
                  finish
                    (P.Error
                       { code = P.Timed_out; message = "deadline expired in queue" })
              | Admission.Draining ->
                  abort_idem ();
                  finish
                    (P.Error
                       { code = P.Shutting_down; message = "server is draining" })
              | Admission.Admitted -> (
                  Fun.protect
                    ~finally:(fun () -> Admission.release t.adm)
                    (fun () ->
                      match
                        t.config.on_execute ();
                        if expired deadline then begin
                          abort_idem ();
                          Metrics.incr t.c_timeouts;
                          finish
                            (P.Error
                               {
                                 code = P.Timed_out;
                                 message = "deadline expired before execution";
                               })
                        end
                        else begin
                          let resp = execute t request in
                          let bytes = P.encode_response ~version:ver resp in
                          (* Only settled, re-sendable answers enter the
                             window; errors release the key so a retry
                             can run again (and maybe succeed). *)
                          (match resp with
                          | P.Error _ -> abort_idem ()
                          | _ -> commit_idem bytes);
                          if expired deadline then begin
                            Metrics.incr t.c_timeouts;
                            finish
                              (P.Error
                                 {
                                   code = P.Timed_out;
                                   message = "deadline expired during execution";
                                 })
                          end
                          else begin
                            record resp;
                            bytes
                          end
                        end
                      with
                      | bytes -> bytes
                      | exception e ->
                          (* A hook or internal bug must not leave the
                             key claimed forever. *)
                          abort_idem ();
                          raise e)))))

(* {1 Sessions} *)

let unregister t fd =
  Mutex.lock t.m;
  t.sessions <- List.filter (fun (fd', _) -> fd' != fd) t.sessions;
  Metrics.set_gauge t.g_active_sessions (List.length t.sessions);
  Mutex.unlock t.m

let session t fd =
  let io =
    match t.config.session_io with Some wrap -> wrap fd | None -> P.io_of_fd fd
  in
  let aborted = ref false in
  let rec loop () =
    match
      P.read_frame_io ~max_bytes:t.config.max_frame_bytes
        ?idle_timeout:t.config.idle_timeout_s
        ?frame_timeout:t.config.frame_timeout_s io
    with
    | Error P.Eof -> ()
    | Error P.Truncated ->
        Metrics.incr t.c_bad_frames;
        aborted := true
    | Error (P.Stalled { mid_frame }) ->
        (* Idle sessions are reaped quietly; a peer that went silent
           inside a frame (slow-loris, partition) counts as aborted. *)
        if mid_frame then aborted := true else Metrics.incr t.c_idle_closed
    | Error (P.Oversized n) ->
        (* The payload was not consumed, so the stream cannot be
           resynchronized: answer once (best effort) and hang up. *)
        Metrics.incr t.c_bad_frames;
        (try
           P.write_frame_io ?timeout:t.config.frame_timeout_s io
             (P.encode_response
                (P.Error
                   {
                     code = P.Bad_request;
                     message = P.read_error_to_string (P.Oversized n);
                   }))
         with _ -> ())
    | exception _ ->
        (* Connection reset (or injected fault) mid-read. *)
        aborted := true
    | Ok payload -> (
        match
          let bytes = handle t payload in
          P.write_frame_io ?timeout:t.config.frame_timeout_s io bytes
        with
        | () -> loop ()
        | exception _ ->
            (* client went away mid-response *)
            aborted := true)
  in
  Fun.protect
    ~finally:(fun () ->
      if !aborted then Metrics.incr t.c_aborted_sessions;
      (* Unregister first: once off the list, [stop] cannot touch this
         fd, so closing (and the OS reusing the number) is safe. *)
      unregister t fd;
      try Unix.close fd with Unix.Unix_error _ -> ())
    loop

(* {1 Accepting} *)

let rec accept_loop t =
  match Unix.accept ~cloexec:true t.lfd with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop t
  | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EAGAIN), _, _) ->
      accept_loop t
  | exception Unix.Unix_error _ ->
      () (* listen socket closed or broken: stop accepting *)
  | fd, _ ->
      if t.stopping then begin
        (try Unix.close fd with Unix.Unix_error _ -> ());
        () (* the wake-up connection from [stop] *)
      end
      else begin
        Metrics.incr t.c_sessions;
        (* Register before spawning so [stop] can never miss a session
           it has to join. *)
        let slot = ref None in
        Mutex.lock t.m;
        t.sessions <- (fd, slot) :: t.sessions;
        Metrics.set_gauge t.g_active_sessions (List.length t.sessions);
        Mutex.unlock t.m;
        slot := Some (Thread.create (fun () -> session t fd) ());
        accept_loop t
      end

let start ?(config = default_config) ?metrics cat =
  if config.parallelism < 1 then invalid_arg "Server.start: parallelism < 1";
  (* A dead client must surface as EPIPE on write, not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let reg = match metrics with Some m -> m | None -> Metrics.global () in
  let lfd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt lfd Unix.SO_REUSEADDR true;
     Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen lfd 64
   with e ->
     (try Unix.close lfd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let t =
    {
      config;
      cat;
      pool = Sqp_parallel.Pool.create ~domains:config.parallelism;
      adm =
        Admission.create ~metrics:reg ~max_in_flight:config.max_in_flight
          ~max_queue:config.max_queue ();
      lfd;
      bound_port;
      stopping = false;
      stopped = false;
      degraded = None;
      acceptor = None;
      sessions = [];
      m = Mutex.create ();
      c_requests = Metrics.counter reg "server.requests";
      c_ok = Metrics.counter reg "server.responses.ok";
      c_err = Metrics.counter reg "server.responses.error";
      c_bad_frames = Metrics.counter reg "server.bad_frames";
      c_timeouts = Metrics.counter reg "server.timeouts";
      h_latency = Metrics.histogram reg "server.latency_us";
      c_sessions = Metrics.counter reg "server.sessions";
      g_active_sessions = Metrics.gauge reg "server.sessions.active";
      c_aborted_sessions = Metrics.counter reg "server.sessions.aborted";
      c_idle_closed = Metrics.counter reg "server.sessions.idle_closed";
      c_dedup_hits = Metrics.counter reg "server.dedup.hits";
      g_degraded = Metrics.gauge reg "server.degraded";
    }
  in
  t.acceptor <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let stop t =
  Mutex.lock t.m;
  let already = t.stopped || t.stopping in
  if not already then t.stopping <- true;
  Mutex.unlock t.m;
  if not already then begin
    (* Wake the acceptor with a throwaway connection; it sees [stopping]
       and exits. *)
    (try
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try
          Unix.connect fd
            (Unix.ADDR_INET (Unix.inet_addr_of_string t.config.host, t.bound_port))
        with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    (match t.acceptor with Some th -> Thread.join th | None -> ());
    (try Unix.close t.lfd with Unix.Unix_error _ -> ());
    (* Drain: new queries are refused, in-flight ones finish and answer. *)
    Admission.begin_drain t.adm;
    Admission.await_drain t.adm;
    (* Unblock sessions idling in [read_frame]; SHUT_RD only, so a
       response still in flight is not torn.  Shutting down under the
       lock pins each listed fd open (sessions unregister before they
       close), so a recycled descriptor can never be hit. *)
    Mutex.lock t.m;
    let sessions = t.sessions in
    List.iter
      (fun (fd, _) ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      sessions;
    Mutex.unlock t.m;
    List.iter
      (fun (_, slot) -> match !slot with Some th -> Thread.join th | None -> ())
      sessions;
    Sqp_parallel.Pool.shutdown t.pool;
    t.stopped <- true
  end
