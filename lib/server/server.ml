module P = Protocol
module R = Sqp_relalg
module Metrics = Sqp_obs.Metrics
module Storage_error = Sqp_storage.Storage_error

type config = {
  host : string;
  port : int;
  parallelism : int;
  max_in_flight : int;
  max_queue : int;
  max_frame_bytes : int;
  default_deadline_ms : int option;
  idle_timeout_s : float option;
  frame_timeout_s : float option;
  session_io : (Unix.file_descr -> P.io) option;
  on_execute : unit -> unit;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    parallelism = 2;
    max_in_flight = 8;
    max_queue = 32;
    max_frame_bytes = P.default_max_frame_bytes;
    default_deadline_ms = None;
    idle_timeout_s = None;
    frame_timeout_s = None;
    session_io = None;
    on_execute = ignore;
  }

(* Cluster membership, installed by a [Shard_map_set] frame: the map
   (for epoch fencing of [Forward] envelopes) and this shard's owned z
   interval ([None] = owns no range — every range read filters empty).
   A server that never receives a map serves everything, as before. *)
type cluster_state = {
  map : Shard_map.t;
  owned : (int * int) option;
}

type t = {
  config : config;
  cat : Catalog.t;
  pool : Sqp_parallel.Pool.t;
  adm : Admission.t;
  mutable net : Net.t option;  (* filled right after [Net.start] *)
  mutable stopped : bool;
  mutable degraded : string option;  (* read-only mode, with its reason *)
  mutable cluster : cluster_state option;
  m : Mutex.t;
  (* instruments *)
  c_requests : Metrics.counter;
  c_ok : Metrics.counter;
  c_err : Metrics.counter;
  c_timeouts : Metrics.counter;
  h_latency : Metrics.histogram;
  c_dedup_hits : Metrics.counter;
  c_stale_epoch : Metrics.counter;
  g_degraded : Metrics.gauge;
}

let port t = match t.net with Some n -> Net.port n | None -> 0

let catalog t = t.cat

let stopping t = match t.net with Some n -> Net.stopping n | None -> false

let now = Unix.gettimeofday

let expired = function None -> false | Some d -> now () >= d

(* {1 Degraded mode}

   ENOSPC (or runtime corruption) on a mutation flips the server
   read-only: reads keep answering from memory, mutations draw the
   typed [Degraded] error, health reports the mode.  The [Recover]
   admin frame (or a restart) reopens the poisoned stores and flips
   back. *)

let degraded_reason t =
  Mutex.lock t.m;
  let d = t.degraded in
  Mutex.unlock t.m;
  d

let enter_degraded t reason =
  Mutex.lock t.m;
  if t.degraded = None then t.degraded <- Some reason;
  Mutex.unlock t.m;
  Metrics.set_gauge t.g_degraded 1

let leave_degraded t =
  Mutex.lock t.m;
  t.degraded <- None;
  Mutex.unlock t.m;
  Metrics.set_gauge t.g_degraded 0

(* {1 Cluster membership} *)

let cluster_state t =
  Mutex.lock t.m;
  let c = t.cluster in
  Mutex.unlock t.m;
  c

(* The z interval range reads must stay inside, as an always-filterable
   pair: [(1, 0)] (empty) when this shard owns no range, [None] when the
   server is not cluster-aware at all (single-node: serve everything).
   The filter is what keeps a just-moved range from being answered by
   both its old and new owner after an epoch flip — the old owner's
   catalog still holds the moved rows, but they are outside its owned
   interval. *)
let owned_interval t =
  match cluster_state t with
  | None -> None
  | Some { owned = Some (zlo, zhi); _ } -> Some (zlo, zhi)
  | Some { owned = None; _ } -> Some (1, 0)

let in_owned t z =
  match owned_interval t with
  | None -> true
  | Some (zlo, zhi) -> zlo <= z && z <= zhi

let filter_owned_entries t entries =
  match owned_interval t with
  | None -> entries
  | Some _ ->
      let space = Catalog.space t.cat in
      List.filter (fun (p, _) -> in_owned t (Shard_map.z_of_point space p)) entries

(* Same filter over a coordinate-row relation (columns x0..xk, possibly
   after an [id] column) — the planned range path answers with one. *)
let filter_owned_rows t rel =
  match owned_interval t with
  | None -> rel
  | Some _ ->
      let space = Catalog.space t.cat in
      let k = Sqp_zorder.Space.dims space in
      let schema = R.Relation.schema rel in
      let tuples =
        List.filter
          (fun tu ->
            let p =
              Array.init k (fun i ->
                  R.Value.to_int
                    (R.Relation.get tu schema (Printf.sprintf "x%d" i)))
            in
            in_owned t (Shard_map.z_of_point space p))
          (R.Relation.tuples rel)
      in
      R.Relation.make ~name:(R.Relation.name rel) schema tuples

let storage_failure_message e =
  match Storage_error.to_string e with
  | Some s -> s
  | None -> Printexc.to_string e

(* {1 Execution}

   Plan failures must come back as typed errors, not dead sessions:
   unresolvable names map to [Unknown_relation], malformed plans
   (missing attributes, clashing schemas) to [Bad_request], storage
   failures that make the store unwritable (disk full, corruption) flip
   degraded mode and map to [Degraded], anything else to
   [Server_error]. *)

let guard t f =
  try f () with
  | Sqp_relalg.Wire.Unknown_relation name ->
      P.Error
        {
          code = P.Unknown_relation;
          message = Printf.sprintf "no relation %S in the catalog" name;
        }
  | Storage_error.Io_error _ as e when Storage_error.is_disk_full e ->
      let message = storage_failure_message e in
      enter_degraded t ("disk full: " ^ message);
      P.Error { code = P.Degraded; message = "entering read-only mode: " ^ message }
  | Storage_error.Corrupt _ as e ->
      let message = storage_failure_message e in
      enter_degraded t ("corruption detected: " ^ message);
      P.Error { code = P.Degraded; message = "entering read-only mode: " ^ message }
  | Invalid_argument m -> P.Error { code = P.Bad_request; message = m }
  | Not_found ->
      P.Error
        { code = P.Bad_request; message = "plan references an unknown attribute" }
  | e -> P.Error { code = P.Server_error; message = Printexc.to_string e }

module O = Sqp_optimizer

(* Wire plan -> runnable plan: resolve names, push-down-optimize, and —
   once statistics exist — let the cost-based optimizer force join
   implementations and orders. *)
let instantiate t wplan =
  let plan =
    R.Plan.optimize (R.Wire.to_plan ~resolve:(Catalog.resolve t.cat) wplan)
  in
  match Catalog.stats t.cat with
  | None -> plan
  | Some st -> fst (O.Optimizer.choose_plan st plan)

module Live = Sqp_btree.Live

let live_table t name =
  match Catalog.live t.cat name with
  | Some lv -> lv
  | None -> raise (R.Wire.Unknown_relation name)

(* Rows (id, x0..xk) for live-table reads, in z order. *)
let live_rows space entries =
  let k = Sqp_zorder.Space.dims space in
  let schema =
    R.Schema.make
      (("id", R.Value.TInt)
      :: List.init k (fun i -> (Printf.sprintf "x%d" i, R.Value.TInt)))
  in
  let tuples =
    List.map
      (fun (p, id) ->
        Array.of_list (R.Value.Int id :: List.init k (fun i -> R.Value.Int p.(i))))
      entries
  in
  R.Relation.make ~name:"live" schema tuples

(* The coordinate-row relation a range search answers with — the same
   schema as the plan path's [Project [x0..xk]]. *)
let coord_rows space entries =
  let k = Sqp_zorder.Space.dims space in
  let schema =
    R.Schema.make (List.init k (fun i -> (Printf.sprintf "x%d" i, R.Value.TInt)))
  in
  let tuples =
    List.map
      (fun (p, _payload) -> Array.init k (fun i -> R.Value.Int p.(i)))
      entries
  in
  R.Relation.make ~name:"range" schema tuples

let range_search t ~lo ~hi =
  match Catalog.range_access t.cat ~lo ~hi with
  | Catalog.Direct best ->
      (* Exact cover on the direct kernel: run the Section 3.3 merge on
         the prepared point sequence — no plan, no refine, identical
         rows. *)
      let box = Sqp_geom.Box.make ~lo ~hi in
      let prep = Catalog.prepared_points t.cat in
      let search =
        match best.O.Cost.method_ with
        | O.Cost.Plain -> Sqp_core.Range_search.search_plain
        | O.Cost.Skip -> Sqp_core.Range_search.search_skip
      in
      let entries, _counters = search prep box in
      coord_rows (Catalog.space t.cat) (filter_owned_entries t entries)
  | Catalog.Planned ->
      let plan = R.Plan.optimize (Catalog.range_plan t.cat ~lo ~hi) in
      filter_owned_rows t (R.Plan.run_in_pool t.pool plan)

let execute t request =
  match request with
  | P.Range_search { lo; hi } ->
      guard t (fun () ->
          ignore (Catalog.validate_bounds t.cat ~lo ~hi);
          P.Rows (range_search t ~lo ~hi))
  | P.Query wplan ->
      guard t (fun () -> P.Rows (R.Plan.run_in_pool t.pool (instantiate t wplan)))
  | P.Explain wplan ->
      guard t (fun () ->
          let plan = instantiate t wplan in
          let parallelism = Sqp_parallel.Pool.domains t.pool in
          P.Text
            (match Catalog.stats t.cat with
            | None -> R.Plan.explain ~parallelism plan
            | Some st -> O.Optimizer.explain ~parallelism st plan))
  | P.Analyze wplan ->
      guard t (fun () ->
          let plan = instantiate t wplan in
          let a = R.Plan.run_analyze_in_pool t.pool plan in
          let rendered =
            match Catalog.stats t.cat with
            | None -> R.Plan.render_analysis a
            | Some st ->
                R.Plan.render_analysis a ^ "\n"
                ^ O.Optimizer.render_comparison
                    (O.Optimizer.compare_analysis st plan a.R.Plan.report)
          in
          P.Analyzed { rendered; rows = a.R.Plan.result })
  | P.Refresh_stats ->
      guard t (fun () -> P.Text (O.Stats.summary (Catalog.analyze t.cat)))
  | P.Insert { table; points } ->
      guard t (fun () ->
          let lv = live_table t table in
          let seq, applied =
            Live.apply lv (List.map (fun (p, id) -> Live.Insert (p, id)) points)
          in
          P.Ack { applied; seq })
  | P.Delete { table; points } ->
      guard t (fun () ->
          let lv = live_table t table in
          let seq, applied =
            Live.apply lv (List.map (fun p -> Live.Delete p) points)
          in
          P.Ack { applied; seq })
  | P.Create_index { table } ->
      guard t (fun () ->
          let lv = live_table t table in
          let idx, seq = Live.rebuild_online lv in
          (* Cache it: packed reads dominate snapshot merges whenever the
             table has not moved past [seq] (see docs/COST_MODEL.md). *)
          Catalog.note_packed t.cat table idx seq;
          P.Ack { applied = Sqp_btree.Zindex.length idx; seq })
  | P.Live_range { table; lo; hi } ->
      guard t (fun () ->
          let lv = live_table t table in
          let space = Live.space lv in
          let dims = Sqp_zorder.Space.dims space in
          if Array.length lo <> dims || Array.length hi <> dims then
            invalid_arg
              (Printf.sprintf "live range bounds must have %d coordinates" dims);
          let box = Sqp_geom.Box.make ~lo ~hi in
          let rows =
            (* Access-path choice: a packed index that is still current
               (same batch sequence) strictly dominates the live
               snapshot merge — paged leaves, no decomposition of the
               tree in memory.  Any mutation since the build invalidates
               it, and we fall back to the snapshot. *)
            match Catalog.packed_index t.cat table with
            | Some (idx, seq) when seq = Live.seq lv ->
                fst (Sqp_btree.Zindex.range_search idx box)
            | _ -> fst (Live.range_search (Live.snapshot lv) box)
          in
          P.Rows (live_rows space (filter_owned_entries t rows)))
  | P.Health | P.Recover | P.Shard_map_get | P.Shard_map_set _ | P.Forward _ ->
      assert false (* handled before admission *)

let is_mutation = function
  | P.Insert _ | P.Delete _ | P.Create_index _ -> true
  | P.Range_search _ | P.Query _ | P.Explain _ | P.Analyze _ | P.Health
  | P.Live_range _ | P.Refresh_stats | P.Recover | P.Shard_map_get
  | P.Shard_map_set _ | P.Forward _ ->
      false

let mode t =
  match degraded_reason t with
  | Some reason -> "degraded: " ^ reason
  | None -> if stopping t then "draining" else "serving"

let health t =
  let healthy, detail = Catalog.health_detail t.cat in
  let detail =
    match cluster_state t with
    | None -> detail
    | Some { map; owned } ->
        detail
        ^ Printf.sprintf "; cluster: epoch %d, owns %s" map.Shard_map.epoch
            (match owned with
            | Some (zlo, zhi) -> Printf.sprintf "z [%d, %d]" zlo zhi
            | None -> "no range")
  in
  let in_flight, queued, _draining = Admission.stats t.adm in
  let degraded = degraded_reason t <> None in
  let draining = stopping t in
  P.Health_report
    {
      P.healthy = healthy && (not draining) && not degraded;
      detail = (if draining then detail ^ "; draining" else detail);
      in_flight;
      queued;
      served = Metrics.counter_value t.c_ok + Metrics.counter_value t.c_err;
      mode = mode t;
    }

(* The [Recover] admin frame: reopen any poisoned live-table store
   (journal recovery decides which side of the failed commit the disk
   landed on) and, if every store comes back, leave degraded mode.  A
   no-op success on a healthy server. *)
let recover t =
  match Catalog.recover_lives t.cat with
  | [] ->
      leave_degraded t;
      P.Text "recovered: all live stores healthy; accepting mutations"
  | failures ->
      let message =
        String.concat "; "
          (List.map
             (fun (name, e) -> name ^ ": " ^ storage_failure_message e)
             failures)
      in
      P.Error { code = P.Degraded; message = "recovery failed: " ^ message }

(* [Shard_map_set]: install (or advance) cluster membership.  Equal or
   newer epochs are accepted idempotently — a router retries the push on
   a torn connection — while a map going {e backwards} is fenced off. *)
let shard_map_set t map self =
  Mutex.lock t.m;
  let resp =
    match t.cluster with
    | Some { map = old; _ } when map.Shard_map.epoch < old.Shard_map.epoch ->
        P.Error
          {
            code = P.Stale_epoch;
            message =
              Printf.sprintf "map epoch %d below installed epoch %d"
                map.Shard_map.epoch old.Shard_map.epoch;
          }
    | _ ->
        let owned =
          if self < 0 then None
          else
            let e = List.nth map.Shard_map.entries self in
            Some (e.Shard_map.zlo, e.Shard_map.zhi)
        in
        t.cluster <- Some { map; owned };
        P.Ack
          {
            applied = List.length map.Shard_map.entries;
            seq = map.Shard_map.epoch;
          }
  in
  Mutex.unlock t.m;
  resp

let shard_map_get t =
  match cluster_state t with
  | Some { map; _ } -> P.Shard_map map
  | None ->
      P.Error { code = P.Unknown_relation; message = "no shard map installed" }

(* One request payload in, one encoded response payload out.

   Keyed requests (protocol v2 idempotency keys) pass through the
   catalog's dedup window: a replay returns the original encoded bytes
   without re-executing; a fresh key claims a slot that is committed
   with the encoded response after execution — {e before} the
   post-execution deadline check, so a mutation that applied but
   overshot its deadline still leaves its [Ack] behind for the retry.
   Admission-level failures (shed / queue timeout / draining / degraded
   rejection) release the slot instead: the client may retry and
   succeed later. *)
let rec handle t payload =
  let arrival = now () in
  Metrics.incr t.c_requests;
  (* Encode the reply at the requester's version (a v1 peer cannot
     decode v2 bytes). *)
  let ver = if P.payload_version payload = 1 then 1 else P.version in
  let record resp =
    Metrics.observe t.h_latency (int_of_float ((now () -. arrival) *. 1e6));
    match resp with
    | P.Error _ -> Metrics.incr t.c_err
    | _ -> Metrics.incr t.c_ok
  in
  let finish resp =
    record resp;
    P.encode_response ~version:ver resp
  in
  match P.decode_request payload with
  | Error (code, message) -> finish (P.Error { code; message })
  | Ok { P.request = P.Health; _ } -> finish (health t)
  | Ok { P.request = P.Recover; _ } -> finish (recover t)
  | Ok { P.request = P.Shard_map_get; _ } -> finish (shard_map_get t)
  | Ok { P.request = P.Shard_map_set { map; self }; _ } ->
      finish (shard_map_set t map self)
  | Ok { P.request = P.Forward { epoch; payload = inner }; _ } -> (
      (* Epoch fencing happens before the inner request is even decoded:
         a sender routing under the wrong map learns so and refetches.
         A matching envelope unwraps into the full normal pipeline —
         admission, dedup window, degraded checks — so a forwarded
         mutation keeps its origin client's exactly-once key. *)
      match cluster_state t with
      | Some { map; _ } when map.Shard_map.epoch = epoch -> handle t inner
      | Some { map; _ } ->
          Metrics.incr t.c_stale_epoch;
          finish
            (P.Error
               {
                 code = P.Stale_epoch;
                 message =
                   Printf.sprintf "forwarded at epoch %d; shard holds epoch %d"
                     epoch map.Shard_map.epoch;
               })
      | None ->
          Metrics.incr t.c_stale_epoch;
          finish
            (P.Error
               {
                 code = P.Stale_epoch;
                 message = "forwarded to a shard holding no shard map";
               }))
  | Ok { P.deadline_ms; idem; request } -> (
      let deadline =
        match
          match deadline_ms with
          | Some _ -> deadline_ms
          | None -> t.config.default_deadline_ms
        with
        | Some ms -> Some (arrival +. (float_of_int ms /. 1000.))
        | None -> None
      in
      let idem_key =
        match idem with
        | Some { P.client_id; request_seq } -> Some (client_id, request_seq)
        | None -> None
      in
      let abort_idem () =
        match idem_key with
        | Some (client_id, seq) -> Catalog.dedup_abort t.cat ~client_id ~seq
        | None -> ()
      in
      let commit_idem bytes =
        match idem_key with
        | Some (client_id, seq) -> Catalog.dedup_commit t.cat ~client_id ~seq bytes
        | None -> ()
      in
      (* Claim the key.  A concurrent duplicate (same key in flight on
         another session) waits for the original to settle. *)
      let rec claim () =
        match idem_key with
        | None -> `Execute
        | Some (client_id, seq) -> (
            match Catalog.dedup_begin t.cat ~client_id ~seq with
            | Catalog.Fresh -> `Execute
            | Catalog.Replay bytes -> `Replay bytes
            | Catalog.Too_old -> `Too_old
            | Catalog.In_flight ->
                if expired deadline then `Expired
                else begin
                  Thread.delay 0.001;
                  claim ()
                end)
      in
      match claim () with
      | `Replay bytes ->
          (* Only settled non-error answers are committed to the window,
             so a replay always counts as an ok response. *)
          Metrics.incr t.c_dedup_hits;
          Metrics.observe t.h_latency (int_of_float ((now () -. arrival) *. 1e6));
          Metrics.incr t.c_ok;
          bytes
      | `Too_old ->
          finish
            (P.Error
               {
                 code = P.Bad_request;
                 message = "idempotency key below the dedup window";
               })
      | `Expired ->
          Metrics.incr t.c_timeouts;
          finish
            (P.Error
               {
                 code = P.Timed_out;
                 message = "deadline expired awaiting a duplicate in flight";
               })
      | `Execute -> (
          match degraded_reason t with
          | Some reason when is_mutation request ->
              abort_idem ();
              finish
                (P.Error
                   {
                     code = P.Degraded;
                     message = "server is read-only (degraded: " ^ reason ^ ")";
                   })
          | _ -> (
              match Admission.acquire ?deadline t.adm with
              | Admission.Shed ->
                  abort_idem ();
                  finish
                    (P.Error
                       {
                         code = P.Overloaded;
                         message =
                           Printf.sprintf
                             "load shed: %d in flight, queue of %d full"
                             t.config.max_in_flight t.config.max_queue;
                       })
              | Admission.Timed_out ->
                  abort_idem ();
                  finish
                    (P.Error
                       { code = P.Timed_out; message = "deadline expired in queue" })
              | Admission.Draining ->
                  abort_idem ();
                  finish
                    (P.Error
                       { code = P.Shutting_down; message = "server is draining" })
              | Admission.Admitted -> (
                  Fun.protect
                    ~finally:(fun () -> Admission.release t.adm)
                    (fun () ->
                      match
                        t.config.on_execute ();
                        if expired deadline then begin
                          abort_idem ();
                          Metrics.incr t.c_timeouts;
                          finish
                            (P.Error
                               {
                                 code = P.Timed_out;
                                 message = "deadline expired before execution";
                               })
                        end
                        else begin
                          let resp = execute t request in
                          let bytes = P.encode_response ~version:ver resp in
                          (* Only settled, re-sendable answers enter the
                             window; errors release the key so a retry
                             can run again (and maybe succeed). *)
                          (match resp with
                          | P.Error _ -> abort_idem ()
                          | _ -> commit_idem bytes);
                          if expired deadline then begin
                            Metrics.incr t.c_timeouts;
                            finish
                              (P.Error
                                 {
                                   code = P.Timed_out;
                                   message = "deadline expired during execution";
                                 })
                          end
                          else begin
                            record resp;
                            bytes
                          end
                        end
                      with
                      | bytes -> bytes
                      | exception e ->
                          (* A hook or internal bug must not leave the
                             key claimed forever. *)
                          abort_idem ();
                          raise e)))))

(* {1 Lifecycle}

   The listener, sessions and their threads live in {!Net}; this module
   supplies the payload handler and the admission drain. *)

let start ?(config = default_config) ?metrics cat =
  if config.parallelism < 1 then invalid_arg "Server.start: parallelism < 1";
  let reg = match metrics with Some m -> m | None -> Metrics.global () in
  let t =
    {
      config;
      cat;
      pool = Sqp_parallel.Pool.create ~domains:config.parallelism;
      adm =
        Admission.create ~metrics:reg ~max_in_flight:config.max_in_flight
          ~max_queue:config.max_queue ();
      net = None;
      stopped = false;
      degraded = None;
      cluster = None;
      m = Mutex.create ();
      c_requests = Metrics.counter reg "server.requests";
      c_ok = Metrics.counter reg "server.responses.ok";
      c_err = Metrics.counter reg "server.responses.error";
      c_timeouts = Metrics.counter reg "server.timeouts";
      h_latency = Metrics.histogram reg "server.latency_us";
      c_dedup_hits = Metrics.counter reg "server.dedup.hits";
      c_stale_epoch = Metrics.counter reg "server.stale_epoch";
      g_degraded = Metrics.gauge reg "server.degraded";
    }
  in
  let net_config =
    {
      Net.host = config.host;
      port = config.port;
      max_frame_bytes = config.max_frame_bytes;
      idle_timeout_s = config.idle_timeout_s;
      frame_timeout_s = config.frame_timeout_s;
      session_io = config.session_io;
    }
  in
  (match
     Net.start ~config:net_config ~metrics:reg ~handle:(fun payload ->
         handle t payload) ()
   with
  | net -> t.net <- Some net
  | exception e ->
      Sqp_parallel.Pool.shutdown t.pool;
      raise e);
  t

let stop t =
  Mutex.lock t.m;
  let already = t.stopped in
  t.stopped <- true;
  Mutex.unlock t.m;
  if not already then begin
    (match t.net with
    | Some net ->
        (* Drain between acceptor shutdown and session teardown: new
           queries are refused, in-flight ones finish and answer. *)
        Net.stop
          ~drain:(fun () ->
            Admission.begin_drain t.adm;
            Admission.await_drain t.adm)
          net
    | None -> ());
    Sqp_parallel.Pool.shutdown t.pool
  end
