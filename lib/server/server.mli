(** The concurrent TCP query server.

    One acceptor thread turns connections into {e sessions} (one thread
    each, blocking frame I/O); every request then passes {!Admission}
    before executing on a {e shared, long-lived} {!Sqp_parallel.Pool} —
    sessions supply concurrency, the pool supplies parallelism within a
    query (sharded z-merge joins), and the admission layer bounds how
    much of either a burst can claim.

    Session lifecycle: [accept] → read frame → decode → (admission) →
    execute → respond → read next frame … until clean EOF, a framing
    error, a session timeout, or server drain.  A payload that decodes
    to garbage draws a typed [Bad_request] {e response} and the session
    continues; a frame whose advertised length is unusable ends the
    session (the stream cannot be resynchronized).  No client input can
    raise past the session loop — the fuzz suite in
    [test/test_protocol.ml], the malformed-frame cases in
    [test/test_server.ml] and the fault-injected torture in
    [test/test_chaos.ml] hold it to that.

    {b Exactly-once mutations.}  Requests carrying a protocol v2
    idempotency key pass through the catalog's dedup window
    ({!Catalog.dedup_begin}): a replayed mutation — the client resent
    because the connection died before the answer arrived — returns the
    {e original} encoded [Ack] byte for byte instead of applying the
    batch again.  Admission failures (shed, queue timeout, draining,
    degraded rejection) release the key so a later retry can still
    succeed; a mutation that applied but overshot its deadline commits
    its [Ack] to the window {e before} answering [Timed_out], so the
    retry is answered with the truth.

    {b Degraded mode.}  [ENOSPC] or detected corruption while executing
    a mutation flips the server read-only: reads keep serving, mutations
    draw the typed [Degraded] error, health reports
    [mode = "degraded: <reason>"].  The [Recover] admin frame reopens
    the poisoned live-table stores (journal recovery) and resumes
    mutations if every store comes back; a restart does the same.

    {!stop} drains gracefully: stop accepting, reject new queries with
    [Shutting_down], let in-flight queries finish and answer, then
    close sessions and join every thread.  [sqp serve] wires SIGTERM /
    SIGINT to exactly this, so Ctrl-C and orchestrated shutdowns are
    loss-free. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  parallelism : int;  (** domains of the shared execution pool *)
  max_in_flight : int;  (** concurrent query executions *)
  max_queue : int;  (** waiters beyond that before shedding *)
  max_frame_bytes : int;  (** per-frame payload cap *)
  default_deadline_ms : int option;
      (** applied when a request carries no deadline *)
  idle_timeout_s : float option;
      (** close a session that starts no frame for this long (reaps
          leaked/forgotten connections); default [None] = wait forever *)
  frame_timeout_s : float option;
      (** bound reading one frame's payload and writing one response —
          the slow-loris guard: a peer dribbling bytes cannot pin a
          session thread; default [None] *)
  session_io : (Unix.file_descr -> Protocol.io) option;
      (** wrap every session's socket I/O, e.g. {!Faulty_net.wrap} for
          chaos tests; default [None] = {!Protocol.io_of_fd} *)
  on_execute : unit -> unit;
      (** test/fault-injection hook, run while holding an admission slot
          just before plan execution; default [ignore] *)
}

val default_config : config
(** [127.0.0.1:0], parallelism 2, 8 in flight, queue 32, 8 MiB frames,
    no default deadline, no session timeouts, honest socket I/O. *)

type t

val start : ?config:config -> ?metrics:Sqp_obs.Metrics.t -> Catalog.t -> t
(** Bind, listen, spawn the acceptor, spawn the execution pool.
    [metrics] (default {!Sqp_obs.Metrics.global}) receives the serving
    instruments: [server.requests], [server.responses.{ok,error}],
    [server.sessions], [server.sessions.aborted] (connection reset /
    stalled mid-frame / write failure), [server.sessions.idle_closed],
    [server.dedup.hits], [server.shed], [server.timeouts],
    [server.bad_frames] counters; [server.in_flight],
    [server.queue_depth], [server.sessions.active], [server.degraded]
    gauges; [server.latency_us], [server.queue_wait_us] histograms.
    @raise Unix.Unix_error if the address cannot be bound. *)

val port : t -> int
(** The actual listening port (useful with [port = 0]). *)

val catalog : t -> Catalog.t

val stop : t -> unit
(** Graceful drain, as described above.  Idempotent; blocks until every
    session and the pool have been joined. *)
