module Z = Sqp_zorder
module Wire = Sqp_relalg.Wire

type entry = { zlo : int; zhi : int; host : string; port : int }

type t = { epoch : int; entries : entry list }

let make ~epoch entries =
  if epoch < 1 then invalid_arg "Shard_map.make: epoch < 1";
  if entries = [] then invalid_arg "Shard_map.make: no entries";
  (* Contiguity is a correctness requirement, not hygiene: the router
     routes every mutation by exact z ownership, so a gap would leave
     z values no shard owns. *)
  (match entries with
  | e :: _ when e.zlo <> 0 ->
      invalid_arg "Shard_map.make: first entry must start at z = 0"
  | _ -> ());
  let rec check prev = function
    | [] -> ()
    | e :: rest ->
        if e.zlo > e.zhi then invalid_arg "Shard_map.make: entry with zlo > zhi";
        (match prev with
        | Some p when e.zlo <> p.zhi + 1 ->
            invalid_arg
              "Shard_map.make: entries must be contiguous and ascending (gap \
               or overlap between ranges)"
        | _ -> ());
        check (Some e) rest
  in
  check None entries;
  { epoch; entries }

let even_ranges space n =
  if n < 1 then invalid_arg "Shard_map.even_ranges: n < 1";
  if not (Z.Zrange.usable space) then
    invalid_arg "Shard_map.even_ranges: space deeper than 61 total bits";
  let total = 1 lsl Z.Space.total_bits space in
  if n > total then invalid_arg "Shard_map.even_ranges: more shards than cells";
  List.init n (fun i ->
      let lo = i * total / n in
      let hi = if i = n - 1 then total - 1 else ((i + 1) * total / n) - 1 in
      (lo, hi))

let even space endpoints =
  let ranges = even_ranges space (List.length endpoints) in
  make ~epoch:1
    (List.map2 (fun (zlo, zhi) (host, port) -> { zlo; zhi; host; port })
       ranges endpoints)

let owner t z = List.find_opt (fun e -> e.zlo <= z && z <= e.zhi) t.entries

let overlapping t intervals =
  List.filter
    (fun (_, e) -> Z.Zrange.overlaps_interval intervals ~lo:e.zlo ~hi:e.zhi)
    (List.mapi (fun i e -> (i, e)) t.entries)

let to_string t =
  String.concat "\n"
    (Printf.sprintf "shard map epoch %d (%d shards)" t.epoch
       (List.length t.entries)
    :: List.mapi
         (fun i e ->
           Printf.sprintf "  shard %d: z [%d, %d] -> %s:%d" i e.zlo e.zhi
             e.host e.port)
         t.entries)

let write b t =
  Wire.write_u32 b t.epoch;
  Wire.write_u32 b (List.length t.entries);
  List.iter
    (fun e ->
      Wire.write_i64 b e.zlo;
      Wire.write_i64 b e.zhi;
      Wire.write_string b e.host;
      Wire.write_u32 b e.port)
    t.entries

let read c =
  let epoch = Wire.read_u32 c in
  let n = Wire.read_u32 c in
  if n > 4096 then raise (Wire.Corrupt "shard map with more than 4096 entries");
  let entries = ref [] in
  for _ = 1 to n do
    let zlo = Wire.read_i64 c in
    let zhi = Wire.read_i64 c in
    let host = Wire.read_string c in
    let port = Wire.read_u32 c in
    entries := { zlo; zhi; host; port } :: !entries
  done;
  match make ~epoch (List.rev !entries) with
  | t -> t
  | exception Invalid_argument m -> raise (Wire.Corrupt m)

let z_of_point space p =
  fst (Z.Zrange.of_element space (Z.Element.pixel space p))
