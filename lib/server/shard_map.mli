(** The shard map: which z range lives where — versioned, serializable
    data, not configuration.

    A cluster partitions the full-resolution z keyspace of one
    {!Sqp_zorder.Space} (which must satisfy {!Sqp_zorder.Zrange.usable},
    i.e. at most 61 total bits) into contiguous, disjoint, ascending
    [entries], each owned by one [sqp serve] endpoint.  The [epoch]
    counts map changes: every rebalance installs a successor map with
    [epoch + 1], and shards reject forwarded requests stamped with any
    other epoch ({!Protocol} error [Stale_epoch]) — the fencing that
    keeps a stale router or cached client from writing to the old owner
    of a moved range.

    Maps travel on the wire (request tags 12/13, response tag 7) via the
    {!Sqp_relalg.Wire} cursor codecs, so they are length-safe against
    hostile bytes like every other frame body. *)

type entry = {
  zlo : int;  (** first owned z value, inclusive *)
  zhi : int;  (** last owned z value, inclusive *)
  host : string;
  port : int;
}

type t = {
  epoch : int;  (** monotone map version; starts at 1 *)
  entries : entry list;  (** ascending, disjoint, non-empty *)
}

val make : epoch:int -> entry list -> t
(** Validates: non-empty, every [zlo <= zhi], contiguous coverage from
    z = 0 (the first entry starts at 0 and each entry's [zlo] is its
    predecessor's [zhi + 1] — so every z value up to the last [zhi] has
    exactly one owner), [epoch >= 1].
    @raise Invalid_argument otherwise. *)

val even_ranges : Sqp_zorder.Space.t -> int -> (int * int) list
(** The canonical even split of the space's z interval
    [0, 2^total_bits - 1] into [n] contiguous ranges — what
    [sqp serve --shard I/N] and [sqp route] both compute, so shard
    catalogs and the router's map agree by construction.
    @raise Invalid_argument if [n < 1] or the space is not
    {!Sqp_zorder.Zrange.usable}. *)

val even : Sqp_zorder.Space.t -> (string * int) list -> t
(** Epoch-1 map assigning {!even_ranges} to the endpoints in order. *)

val owner : t -> int -> entry option
(** The entry owning z value [z], if any. *)

val overlapping : t -> (int * int) list -> (int * entry) list
(** Entries (with their index) whose range intersects any of the
    (ascending, disjoint) z intervals — the fan-out set for a query
    whose decompose cover merged to those intervals. *)

val to_string : t -> string
(** One human-readable line per entry, prefixed by the epoch. *)

val write : Buffer.t -> t -> unit

val read : Sqp_relalg.Wire.cursor -> t
(** @raise Sqp_relalg.Wire.Corrupt on malformed bytes (including maps
    that fail {!make}'s validation). *)

val z_of_point : Sqp_zorder.Space.t -> int array -> int
(** Full-resolution z value of a point — the mutation-routing key.
    @raise Invalid_argument if the space is not usable or the point is
    outside the grid. *)
