(* Table-driven CRC-32 with the reflected IEEE polynomial 0xEDB88320 —
   the same function as zlib's crc32(), so stored checksums can be
   cross-checked with external tools.  All arithmetic is on OCaml ints
   (63-bit), masking to 32 bits where needed. *)

type state = int

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let init = 0xFFFFFFFF

let update state buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Crc32.update: range out of bounds";
  let table = Lazy.force table in
  let c = ref state in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get buf i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c

let finish state = state lxor 0xFFFFFFFF

let bytes_crc buf ~pos ~len = finish (update init buf ~pos ~len)

let string_crc s = bytes_crc (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)
