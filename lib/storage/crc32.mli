(** CRC-32 (IEEE 802.3, the zlib polynomial) over byte ranges.

    The storage layer stamps every page and journal record with a
    checksum so that torn writes, truncation and bit rot are {e detected}
    at read time instead of silently decoding as garbage.  Values are
    returned as non-negative OCaml [int]s holding the unsigned 32-bit
    checksum. *)

type state
(** A running checksum (fold bytes in with {!update}). *)

val init : state
(** The empty-message state. *)

val update : state -> bytes -> pos:int -> len:int -> state
(** Fold [len] bytes of [buf] starting at [pos] into the state.
    @raise Invalid_argument if the range is out of bounds. *)

val finish : state -> int
(** The checksum of everything folded in so far, in [0, 2^32). *)

val bytes_crc : bytes -> pos:int -> len:int -> int
(** One-shot [finish (update init buf ~pos ~len)]. *)

val string_crc : string -> int
(** One-shot checksum of a whole string. *)
