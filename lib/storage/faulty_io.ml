exception Crashed

(* Mirror retry events into the ambient metrics registry; one branch
   when observability is off (same pattern as Pager). *)
let obs_incr name =
  if Sqp_obs.Trace.global_enabled () then
    Sqp_obs.Metrics.incr (Sqp_obs.Metrics.counter (Sqp_obs.Metrics.global ()) name)

(* SplitMix64: a tiny deterministic PRNG so fault plans are a pure
   function of their seed, with no dependency on [Random]'s state. *)
type seeded_state = {
  mutable s : int64;
  p_eintr : float;
  p_short : float;
  p_eio : float;
  p_flip : float;
}

let next_i64 r =
  r.s <- Int64.add r.s 0x9E3779B97F4A7C15L;
  let z = r.s in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let unit_float r =
  Int64.to_float (Int64.shift_right_logical (next_i64 r) 11) /. 9007199254740992.0

let rand_int r n = Int64.to_int (Int64.rem (Int64.shift_right_logical (next_i64 r) 1) (Int64.of_int n))

let chance r p = p > 0.0 && unit_float r < p

type injector =
  | Passthrough
  | Counting of { mutable ops : int }
  | Crash of { op : int; torn : int option; mutable ops : int; mutable dead : bool }
  | Seeded of seeded_state
  | Enospc of { mutable budget : int }

let none = Passthrough

let counting () = Counting { ops = 0 }

let crash_at ?torn op =
  if op < 0 then invalid_arg "Faulty_io.crash_at: negative operation index";
  Crash { op; torn; ops = 0; dead = false }

let seeded ?(p_eintr = 0.0) ?(p_short = 0.0) ?(p_eio = 0.0) ?(p_flip = 0.0) ~seed () =
  Seeded { s = Int64.of_int seed; p_eintr; p_short; p_eio; p_flip }

let enospc_after budget = Enospc { budget }

let refill_enospc injector bytes =
  match injector with
  | Enospc e -> e.budget <- e.budget + bytes
  | Passthrough | Counting _ | Crash _ | Seeded _ -> ()

let op_count = function
  | Counting c -> c.ops
  | Crash c -> c.ops
  | Passthrough | Seeded _ | Enospc _ -> 0

let check_alive = function
  | Crash c when c.dead -> raise Crashed
  | _ -> ()

(* One logical mutating operation: the crash plan's unit of time.
   [tear] persists a prefix of the in-flight write before the kill. *)
let gate injector ~tear =
  match injector with
  | Counting c -> c.ops <- c.ops + 1
  | Crash c ->
      if c.dead then raise Crashed;
      let k = c.ops in
      c.ops <- k + 1;
      if k = c.op then begin
        c.dead <- true;
        (match c.torn with Some n -> tear n | None -> ());
        raise Crashed
      end
  | Passthrough | Seeded _ | Enospc _ -> ()

type t = {
  fd : Unix.file_descr;
  fpath : string;
  injector : injector;
  mutable closed : bool;
}

let openfile injector path flags perm =
  check_alive injector;
  (* Opening with O_TRUNC destroys existing contents, so it is a
     mutating operation the crash plan can kill before. *)
  if List.mem Unix.O_TRUNC flags then gate injector ~tear:(fun _ -> ());
  { fd = Unix.openfile path flags perm; fpath = path; injector; closed = false }

let path t = t.fpath

let injector_of t = t.injector

let check_open t =
  if t.closed then invalid_arg "Faulty_io: handle is closed";
  check_alive t.injector

let file_size t =
  check_open t;
  (Unix.fstat t.fd).Unix.st_size

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* Raw syscalls, perturbed by the plan. *)

let raw_read t buf pos len =
  check_alive t.injector;
  match t.injector with
  | Seeded r ->
      if chance r r.p_eintr then raise (Unix.Unix_error (Unix.EINTR, "read", t.fpath));
      if chance r r.p_eio then raise (Unix.Unix_error (Unix.EIO, "read", t.fpath));
      let len = if len > 1 && chance r r.p_short then 1 + rand_int r (len - 1) else len in
      let n = Unix.read t.fd buf pos len in
      if n > 0 && chance r r.p_flip then begin
        let bit = rand_int r (n * 8) in
        let byte = pos + (bit / 8) in
        Bytes.set buf byte (Char.chr (Char.code (Bytes.get buf byte) lxor (1 lsl (bit mod 8))))
      end;
      n
  | _ -> Unix.read t.fd buf pos len

let raw_write t buf pos len =
  check_alive t.injector;
  match t.injector with
  | Seeded r ->
      if chance r r.p_eintr then raise (Unix.Unix_error (Unix.EINTR, "write", t.fpath));
      if chance r r.p_eio then raise (Unix.Unix_error (Unix.EIO, "write", t.fpath));
      let len = if len > 1 && chance r r.p_short then 1 + rand_int r (len - 1) else len in
      Unix.write t.fd buf pos len
  | Enospc e ->
      if e.budget < len then raise (Unix.Unix_error (Unix.ENOSPC, "write", t.fpath));
      let n = Unix.write t.fd buf pos len in
      e.budget <- e.budget - n;
      n
  | _ -> Unix.write t.fd buf pos len

let raw_fsync t =
  check_alive t.injector;
  match t.injector with
  | Seeded r ->
      if chance r r.p_eintr then raise (Unix.Unix_error (Unix.EINTR, "fsync", t.fpath));
      if chance r r.p_eio then raise (Unix.Unix_error (Unix.EIO, "fsync", t.fpath));
      Unix.fsync t.fd
  | _ -> Unix.fsync t.fd

(* Retry policy: EINTR retries immediately and does not count as an
   attempt; transient EIO backs off exponentially up to [max_attempts];
   anything else (ENOSPC, EBADF, ...) is fatal at once. *)

let max_attempts = 6

let backoff attempt = Float.min 0.01 (0.0005 *. Float.pow 2.0 (float_of_int attempt))

let seek t offset = ignore (Unix.lseek t.fd offset Unix.SEEK_SET)

let read_fully t ~offset ~len =
  check_open t;
  seek t offset;
  let buf = Bytes.create len in
  let rec go off attempt =
    if off < len then
      match raw_read t buf off (len - off) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          obs_incr "file_pager.io.eintr_retries";
          go off attempt
      | exception Unix.Unix_error (Unix.EIO, _, _) when attempt + 1 < max_attempts ->
          obs_incr "file_pager.io.transient_retries";
          Unix.sleepf (backoff attempt);
          go off (attempt + 1)
      | exception Unix.Unix_error (e, _, _) ->
          Storage_error.io_error ~path:t.fpath ~op:"read" ~attempts:(attempt + 1) e
      | 0 ->
          Storage_error.corrupt ~path:t.fpath
            (Printf.sprintf "unexpected end of file at offset %d (wanted %d more bytes)"
               (offset + off) (len - off))
      | n -> go (off + n) attempt
  in
  go 0 0;
  buf

let write_fully t ~offset buf =
  check_open t;
  let len = Bytes.length buf in
  gate t.injector ~tear:(fun n ->
      let n = min (max n 0) len in
      seek t offset;
      let rec go off =
        if off < n then go (off + Unix.write t.fd buf off (n - off))
      in
      go 0);
  seek t offset;
  let rec go off attempt =
    if off < len then
      match raw_write t buf off (len - off) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          obs_incr "file_pager.io.eintr_retries";
          go off attempt
      | exception Unix.Unix_error (Unix.EIO, _, _) when attempt + 1 < max_attempts ->
          obs_incr "file_pager.io.transient_retries";
          Unix.sleepf (backoff attempt);
          go off (attempt + 1)
      | exception Unix.Unix_error (e, _, _) ->
          Storage_error.io_error ~path:t.fpath ~op:"write" ~attempts:(attempt + 1) e
      | 0 -> Storage_error.io_error ~path:t.fpath ~op:"write" ~attempts:(attempt + 1) Unix.EIO
      | n -> go (off + n) attempt
  in
  go 0 0

let fsync t =
  check_open t;
  gate t.injector ~tear:(fun _ -> ());
  let rec go attempt =
    match raw_fsync t with
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        obs_incr "file_pager.io.eintr_retries";
        go attempt
    | exception Unix.Unix_error (Unix.EIO, _, _) when attempt + 1 < max_attempts ->
        obs_incr "file_pager.io.transient_retries";
        Unix.sleepf (backoff attempt);
        go (attempt + 1)
    | exception Unix.Unix_error (e, _, _) ->
        Storage_error.io_error ~path:t.fpath ~op:"fsync" ~attempts:(attempt + 1) e
    | () -> ()
  in
  go 0

let unlink injector path =
  check_alive injector;
  gate injector ~tear:(fun _ -> ());
  Unix.unlink path

let rename injector ~src ~dst =
  check_alive injector;
  gate injector ~tear:(fun _ -> ());
  Unix.rename src dst
