(** Syscall shim with deterministic fault injection.

    Every byte the persistent storage layer moves goes through this
    module, so a single {e injector} can perturb the whole I/O surface
    of a store (data file and journal alike) without touching the pager
    logic: short reads and writes, [EINTR], transient [EIO], [ENOSPC],
    bit rot on read, and torn-write-then-crash fail-stop kills.  Plans
    are deterministic — the seeded plan is a pure function of its seed,
    and the crash plan counts {e logical} mutating operations (each
    [write_fully], [fsync], [unlink], [rename] and truncating open is
    one operation
    regardless of how many syscalls the retry loop makes) — so any
    failing schedule can be replayed exactly from the seed or operation
    index printed in the failure message.

    {!read_fully} and {!write_fully} are the recovery side of the
    contract: they loop over partial transfers, retry [EINTR]
    immediately and transient [EIO] with bounded exponential backoff
    (counted in the ambient {!Sqp_obs.Metrics} registry when tracing is
    on), and raise {!Storage_error.Io_error} when retries are exhausted
    or the error is not retryable.

    Honesty note on the crash model: a simulated kill stops the world at
    an operation boundary (optionally tearing the in-flight write), but
    writes completed {e before} the kill are never dropped — the shim
    does not model reordering or loss of unsynced page-cache data.
    [fsync] still matters: it is a counted crash point, so the torture
    test exercises kills on both sides of every barrier. *)

exception Crashed
(** The simulated process kill.  The file is left exactly as written so
    far; the handle behaves as dead (every further operation re-raises). *)

(** {1 Injectors (fault plans)} *)

type injector

val none : injector
(** Plain passthrough to [Unix]. *)

val counting : unit -> injector
(** Passthrough that counts logical mutating operations — run a workload
    under it once to learn the crash points, then enumerate them with
    {!crash_at}. *)

val crash_at : ?torn:int -> int -> injector
(** [crash_at ~torn k]: fail-stop before completing the [k]-th (0-based)
    logical mutating operation.  If the operation is a write and [torn]
    is given, its first [torn] bytes are persisted first — a torn page.
    Operations after the kill raise {!Crashed}. *)

val seeded :
  ?p_eintr:float ->
  ?p_short:float ->
  ?p_eio:float ->
  ?p_flip:float ->
  seed:int ->
  unit ->
  injector
(** A deterministic random plan: each syscall independently suffers
    [EINTR] (probability [p_eintr]), transient [EIO] ([p_eio]) or a
    short transfer ([p_short]); each successful read has one bit flipped
    with probability [p_flip] (bit rot — detected later by checksums,
    not by the shim).  All probabilities default to 0. *)

val enospc_after : int -> injector
(** Writes succeed until [n] bytes have been written, then raise
    [ENOSPC] (which the retry loop treats as fatal). *)

val refill_enospc : injector -> int -> unit
(** Grow an {!enospc_after} plan's remaining byte budget — "space was
    freed" in a degraded-mode drill.  A no-op on every other plan. *)

val op_count : injector -> int
(** Logical mutating operations seen so far (0 for plans that do not
    count). *)

(** {1 File handles} *)

type t

val openfile : injector -> string -> Unix.open_flag list -> int -> t
(** An open with [O_TRUNC] destroys existing contents, so it counts as a
    logical mutating operation (a crash point) like the writes do. *)

val path : t -> string

val injector_of : t -> injector

val file_size : t -> int

val read_fully : t -> offset:int -> len:int -> bytes
(** Read exactly [len] bytes at [offset], retrying as described above.
    @raise Storage_error.Corrupt on end of file before [len] bytes.
    @raise Storage_error.Io_error when retries are exhausted. *)

val write_fully : t -> offset:int -> bytes -> unit
(** Write the whole buffer at [offset], looping on partial writes.
    @raise Storage_error.Io_error when retries are exhausted. *)

val fsync : t -> unit

val close : t -> unit
(** Idempotent. *)

(** {1 Path operations} *)

val unlink : injector -> string -> unit

val rename : injector -> src:string -> dst:string -> unit
