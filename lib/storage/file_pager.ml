(* Format v2 ("SQP2") — checksummed, journaled.

   Layout: slot 0 is the header, data pages are slots 1..slot_count-1 at
   byte offset slot * page_bytes.

   Header page: magic "SQP2" | page_bytes:i64 | slot_count:i64 |
   free_head:i64 (-1 = none) | live_count:i64 | crc32:i32 over the
   preceding 36 bytes.

   Live page: payload_len:i32 (< 0xFFFFFFFF) | crc32:i32 | payload;
   the checksum covers the length field and the payload bytes.

   Free page: 0xFFFFFFFF:i32 | crc32:i32 | next_free_slot:i64 (-1 = end
   of list); the checksum covers the marker and the next pointer.

   All mutations are journaled: a batch (explicit, or implicit around a
   single alloc/write/free) buffers full page images in memory, then
   commit writes header + dirty pages to the side journal (fsync), applies
   them in place (fsync), and unlinks the journal — so a crash at any
   byte boundary leaves either the pre-batch or the post-batch state,
   and [open_existing] replays or discards whatever journal it finds. *)

let magic = "SQP2"

let free_marker = 0xFFFFFFFF

let header_size = 4 + (8 * 4) + 4

let page_header_bytes = 8

let min_page_bytes = 48

let obs_incr name =
  if Sqp_obs.Trace.global_enabled () then
    Sqp_obs.Metrics.incr (Sqp_obs.Metrics.counter (Sqp_obs.Metrics.global ()) name)

type batch = {
  images : (int, bytes) Hashtbl.t; (* slot -> full page image, pending *)
  saved_slot_count : int;
  saved_free_head : int;
  saved_live : int;
  saved_live_set : (int, unit) Hashtbl.t;
}

type t = {
  io : Faulty_io.t;
  injector : Faulty_io.injector;
  path : string;
  page_bytes : int;
  stats : Stats.t;
  mutable slot_count : int; (* including the header slot *)
  mutable free_head : int;  (* -1 = none *)
  mutable live : int;
  live_set : (int, unit) Hashtbl.t;
  mutable closed : bool;
  mutable batch : batch option;
}

let check_open t = if t.closed then invalid_arg "File_pager: store is closed"

let path t = t.path

let injector t = t.injector

let is_closed t = t.closed

let page_bytes t = t.page_bytes

let page_count t = t.live

let stats t = t.stats

let payload_capacity t = t.page_bytes - page_header_bytes

(* {2 Page codecs} *)

let classify_page ~page_bytes img =
  let marker = Int32.to_int (Bytes.get_int32_be img 0) land 0xFFFFFFFF in
  let stored = Int32.to_int (Bytes.get_int32_be img 4) land 0xFFFFFFFF in
  if marker = free_marker then begin
    let computed =
      Crc32.(finish (update (update init img ~pos:0 ~len:4) img ~pos:8 ~len:8))
    in
    if stored <> computed then
      `Bad
        (Printf.sprintf "free-page checksum mismatch (stored %08x, computed %08x)" stored
           computed)
    else `Free (Int64.to_int (Bytes.get_int64_be img 8))
  end
  else if marker > page_bytes - page_header_bytes then
    `Bad
      (Printf.sprintf "implausible payload length %d (capacity %d)" marker
         (page_bytes - page_header_bytes))
  else begin
    let computed =
      Crc32.(finish (update (update init img ~pos:0 ~len:4) img ~pos:8 ~len:marker))
    in
    if stored <> computed then
      `Bad
        (Printf.sprintf "page checksum mismatch (stored %08x, computed %08x)" stored
           computed)
    else `Live marker
  end

let encode_live t payload =
  let len = Bytes.length payload in
  if len > payload_capacity t then
    invalid_arg "File_pager: payload exceeds page capacity";
  let buf = Bytes.make t.page_bytes '\000' in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit payload 0 buf page_header_bytes len;
  let crc = Crc32.(finish (update (update init buf ~pos:0 ~len:4) buf ~pos:8 ~len)) in
  Bytes.set_int32_be buf 4 (Int32.of_int crc);
  buf

let encode_free t next =
  let buf = Bytes.make t.page_bytes '\000' in
  Bytes.set_int32_be buf 0 (Int32.of_int free_marker);
  Bytes.set_int64_be buf 8 (Int64.of_int next);
  let crc = Crc32.(finish (update (update init buf ~pos:0 ~len:4) buf ~pos:8 ~len:8)) in
  Bytes.set_int32_be buf 4 (Int32.of_int crc);
  buf

let header_image t =
  let buf = Bytes.make t.page_bytes '\000' in
  Bytes.blit_string magic 0 buf 0 4;
  Bytes.set_int64_be buf 4 (Int64.of_int t.page_bytes);
  Bytes.set_int64_be buf 12 (Int64.of_int t.slot_count);
  Bytes.set_int64_be buf 20 (Int64.of_int t.free_head);
  Bytes.set_int64_be buf 28 (Int64.of_int t.live);
  Bytes.set_int32_be buf 36 (Int32.of_int (Crc32.bytes_crc buf ~pos:0 ~len:36));
  buf

let decode_header ~path head =
  if Bytes.length head < header_size then
    Storage_error.corrupt ~path "file too short for a store header";
  let m = Bytes.sub_string head 0 4 in
  if m <> magic then
    if m = "SQP1" then
      Storage_error.corrupt ~path
        "format version 1 store (no checksums); re-save it with the current tools"
    else Storage_error.corrupt ~path "bad magic";
  let stored = Int32.to_int (Bytes.get_int32_be head 36) land 0xFFFFFFFF in
  let computed = Crc32.bytes_crc head ~pos:0 ~len:36 in
  if stored <> computed then
    Storage_error.corrupt ~path
      (Printf.sprintf "header checksum mismatch (stored %08x, computed %08x)" stored
         computed);
  let geti off = Int64.to_int (Bytes.get_int64_be head off) in
  let page_bytes = geti 4
  and slot_count = geti 12
  and free_head = geti 20
  and live = geti 28 in
  if page_bytes < min_page_bytes then
    Storage_error.corrupt ~path (Printf.sprintf "implausible page size %d" page_bytes);
  if slot_count < 1 then
    Storage_error.corrupt ~path (Printf.sprintf "implausible slot count %d" slot_count);
  if free_head < -1 || free_head = 0 || free_head >= slot_count then
    Storage_error.corrupt ~path (Printf.sprintf "free head %d out of range" free_head);
  if live < 0 || live > slot_count - 1 then
    Storage_error.corrupt ~path
      (Printf.sprintf "live count %d out of range for %d slots" live slot_count);
  (page_bytes, slot_count, free_head, live)

(* The current image of a slot: pending batch image if dirty, else disk. *)
let page_image t slot =
  match t.batch with
  | Some b when Hashtbl.mem b.images slot -> Hashtbl.find b.images slot
  | _ -> Faulty_io.read_fully t.io ~offset:(slot * t.page_bytes) ~len:t.page_bytes

let decode_live t slot img =
  match classify_page ~page_bytes:t.page_bytes img with
  | `Live len -> Bytes.sub img page_header_bytes len
  | `Free _ ->
      Storage_error.corrupt ~path:t.path ~slot "page is marked free but recorded live"
  | `Bad why ->
      obs_incr "file_pager.read.crc_failures";
      Storage_error.corrupt ~path:t.path ~slot why

let free_next t slot img =
  match classify_page ~page_bytes:t.page_bytes img with
  | `Free next ->
      if next < -1 || next = 0 || next >= t.slot_count then
        Storage_error.corrupt ~path:t.path ~slot
          (Printf.sprintf "free-list next pointer %d out of range" next);
      next
  | `Live _ ->
      Storage_error.corrupt ~path:t.path ~slot "free-list head is a live page"
  | `Bad why ->
      obs_incr "file_pager.read.crc_failures";
      Storage_error.corrupt ~path:t.path ~slot why

(* {2 Batches (atomic commit)} *)

let begin_batch t =
  check_open t;
  if t.batch <> None then invalid_arg "File_pager.begin_batch: batch already open";
  t.batch <-
    Some
      {
        images = Hashtbl.create 16;
        saved_slot_count = t.slot_count;
        saved_free_head = t.free_head;
        saved_live = t.live;
        saved_live_set = Hashtbl.copy t.live_set;
      }

let in_batch t = t.batch <> None

let abort_batch t =
  check_open t;
  match t.batch with
  | None -> invalid_arg "File_pager.abort_batch: no open batch"
  | Some b ->
      t.slot_count <- b.saved_slot_count;
      t.free_head <- b.saved_free_head;
      t.live <- b.saved_live;
      Hashtbl.reset t.live_set;
      Hashtbl.iter (fun k () -> Hashtbl.replace t.live_set k ()) b.saved_live_set;
      t.batch <- None

let commit_batch t =
  check_open t;
  match t.batch with
  | None -> invalid_arg "File_pager.commit_batch: no open batch"
  | Some b ->
      if Hashtbl.length b.images = 0 then t.batch <- None
      else begin
        match
          let records =
            (0, header_image t)
            :: (Hashtbl.fold (fun slot img acc -> (slot, img) :: acc) b.images []
               |> List.sort (fun (a, _) (b, _) -> Int.compare a b))
          in
          Journal.write ~injector:t.injector ~store_path:t.path
            ~page_bytes:t.page_bytes records;
          List.iter
            (fun (slot, img) ->
              Faulty_io.write_fully t.io ~offset:(slot * t.page_bytes) img)
            records;
          Faulty_io.fsync t.io;
          Journal.clear ~injector:t.injector ~store_path:t.path;
          obs_incr "journal.commits"
        with
        | () -> t.batch <- None
        | exception e ->
            (* Mid-commit the on-disk state is ambiguous (the journal
               decides); poison the handle so the caller must reopen —
               which runs recovery — before touching the store again. *)
            t.batch <- None;
            t.closed <- true;
            Faulty_io.close t.io;
            raise e
      end

(* Run [f] inside the caller's batch, or as an implicit batch of one. *)
let autocommit t f =
  match t.batch with
  | Some _ -> f ()
  | None -> (
      begin_batch t;
      match f () with
      | v ->
          commit_batch t;
          v
      | exception e ->
          abort_batch t;
          raise e)

let batch_put t slot img =
  match t.batch with
  | Some b -> Hashtbl.replace b.images slot img
  | None -> assert false (* mutations always run under [autocommit] *)

(* {2 Lifecycle} *)

let create ?(io = Faulty_io.none) ~page_bytes path =
  if page_bytes < min_page_bytes then
    invalid_arg
      (Printf.sprintf "File_pager.create: page_bytes must be at least %d" min_page_bytes);
  let h = Faulty_io.openfile io path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  match
    (* A stale journal from a previous store at this path must not
       outlive the truncation, or the next open would replay it. *)
    Journal.clear ~injector:io ~store_path:path;
    let t =
      {
        io = h;
        injector = io;
        path;
        page_bytes;
        stats = Stats.create ();
        slot_count = 1;
        free_head = -1;
        live = 0;
        live_set = Hashtbl.create 64;
        closed = false;
        batch = None;
      }
    in
    Faulty_io.write_fully h ~offset:0 (header_image t);
    Faulty_io.fsync h;
    t
  with
  | t -> t
  | exception e ->
      Faulty_io.close h;
      raise e

let open_existing ?(io = Faulty_io.none) path =
  (match Journal.recover ~injector:io ~store_path:path with
  | `Absent | `Replayed _ | `Discarded _ -> ());
  let h = Faulty_io.openfile io path [ Unix.O_RDWR ] 0o644 in
  match
    let size = Faulty_io.file_size h in
    if size < header_size then
      Storage_error.corrupt ~path
        (Printf.sprintf "file too short for a store header (%d bytes)" size);
    let page_bytes, slot_count, free_head, live =
      decode_header ~path (Faulty_io.read_fully h ~offset:0 ~len:header_size)
    in
    if size < slot_count * page_bytes then
      Storage_error.corrupt ~path
        (Printf.sprintf "file truncated: %d bytes, but the header describes %d slots of %d bytes"
           size slot_count page_bytes);
    let t =
      {
        io = h;
        injector = io;
        path;
        page_bytes;
        stats = Stats.create ();
        slot_count;
        free_head;
        live;
        live_set = Hashtbl.create 64;
        closed = false;
        batch = None;
      }
    in
    (* Rebuild the live set, verifying every page's checksum. *)
    let free_tbl = Hashtbl.create 16 in
    for slot = 1 to slot_count - 1 do
      let img = Faulty_io.read_fully h ~offset:(slot * page_bytes) ~len:page_bytes in
      match classify_page ~page_bytes img with
      | `Live _ -> Hashtbl.replace t.live_set slot ()
      | `Free next -> Hashtbl.replace free_tbl slot next
      | `Bad why ->
          obs_incr "file_pager.read.crc_failures";
          Storage_error.corrupt ~path ~slot why
    done;
    (* Walk the free list: every marked-free page reachable exactly once. *)
    let visited = Hashtbl.create 16 in
    let rec walk cur n =
      if cur = -1 then n
      else if cur < 1 || cur >= slot_count then
        Storage_error.corrupt ~path ~slot:cur "free-list pointer out of range"
      else if Hashtbl.mem visited cur then
        Storage_error.corrupt ~path ~slot:cur "free-list cycle"
      else
        match Hashtbl.find_opt free_tbl cur with
        | None ->
            Storage_error.corrupt ~path ~slot:cur
              "free list reaches a page not marked free"
        | Some next ->
            Hashtbl.replace visited cur ();
            walk next (n + 1)
    in
    let reachable = walk free_head 0 in
    if reachable <> Hashtbl.length free_tbl then
      Storage_error.corrupt ~path
        (Printf.sprintf "free-list mismatch: %d pages marked free, %d reachable"
           (Hashtbl.length free_tbl) reachable);
    if Hashtbl.length t.live_set <> live then
      Storage_error.corrupt ~path
        (Printf.sprintf "live count mismatch: header says %d, found %d" live
           (Hashtbl.length t.live_set));
    t
  with
  | t -> t
  | exception e ->
      Faulty_io.close h;
      raise e

(* {2 Page operations} *)

let check_live t slot =
  if not (Hashtbl.mem t.live_set slot) then
    invalid_arg (Printf.sprintf "File_pager: page %d is not live" slot)

let alloc t payload =
  check_open t;
  autocommit t (fun () ->
      let img = encode_live t payload in
      let slot =
        if t.free_head >= 0 then begin
          let slot = t.free_head in
          t.free_head <- free_next t slot (page_image t slot);
          slot
        end
        else begin
          let slot = t.slot_count in
          t.slot_count <- slot + 1;
          slot
        end
      in
      batch_put t slot img;
      Hashtbl.replace t.live_set slot ();
      t.live <- t.live + 1;
      t.stats.allocations <- t.stats.allocations + 1;
      t.stats.physical_writes <- t.stats.physical_writes + 1;
      slot)

let read t slot =
  check_open t;
  check_live t slot;
  let payload = decode_live t slot (page_image t slot) in
  t.stats.physical_reads <- t.stats.physical_reads + 1;
  payload

let write t slot payload =
  check_open t;
  check_live t slot;
  autocommit t (fun () ->
      batch_put t slot (encode_live t payload);
      t.stats.physical_writes <- t.stats.physical_writes + 1)

let free t slot =
  check_open t;
  check_live t slot;
  autocommit t (fun () ->
      batch_put t slot (encode_free t t.free_head);
      t.free_head <- slot;
      Hashtbl.remove t.live_set slot;
      t.live <- t.live - 1;
      t.stats.frees <- t.stats.frees + 1)

let iter t f =
  check_open t;
  for slot = 1 to t.slot_count - 1 do
    if Hashtbl.mem t.live_set slot then f slot (decode_live t slot (page_image t slot))
  done

let flush t =
  check_open t;
  Faulty_io.fsync t.io

let close t =
  if not t.closed then begin
    (match t.batch with Some _ -> commit_batch t | None -> ());
    (* commit_batch may have poisoned (and closed) the handle already *)
    if not t.closed then begin
      t.closed <- true;
      Faulty_io.close t.io
    end
  end
