(** File-backed page store: fixed-size pages in a single file —
    checksummed, journaled, crash-safe.

    Section 4's integration claim is that z-order processing needs
    nothing beyond "widely available" file organizations; this module is
    that plain organization — numbered fixed-size pages with a free list
    — {e with} the recovery machinery a conventional DBMS file layer
    actually has.  Every page carries a CRC-32 (the payload header is
    [len:i32 | crc:i32]) verified on every read and on the open-time
    scan, and every mutation is an atomic commit: a batch of dirty pages
    plus the new header is first written to a side journal
    ([store.journal]) and fsynced, then applied in place, then the
    journal is unlinked.  A crash at {e any} byte boundary therefore
    leaves either the pre-batch or the post-batch state; {!open_existing}
    replays a complete journal and discards a torn one.  Damage that the
    journal cannot explain (bit rot, truncation, broken free list)
    raises the typed {!Storage_error.Corrupt} instead of [Failure] —
    see {!Fsck} for diagnosis and best-effort salvage.

    All I/O goes through {!Faulty_io}, so an injector passed at
    {!create}/{!open_existing} can subject the store to short
    reads/writes, [EINTR], transient [EIO] (transparently retried with
    bounded exponential backoff), [ENOSPC], torn-write-then-crash kills
    and bit flips — the crash-torture suite drives exactly this.

    Page contents are raw bytes; callers bring their own encoding. *)

type t

val create : ?io:Faulty_io.injector -> page_bytes:int -> string -> t
(** Create or truncate the file (and clear any stale journal for it).
    Destructive and {e not} crash-atomic with respect to a previous
    store at [path]: to atomically replace a store, create at a
    temporary path and [rename] over, as [Persist.save] does.
    @raise Invalid_argument if [page_bytes < ]{!min_page_bytes}. *)

val open_existing : ?io:Faulty_io.injector -> string -> t
(** Re-open a store written by {!create}.  Runs crash recovery first
    (replay or discard of the side journal), then verifies the header
    checksum, the bounds of every field, every page checksum, the free
    list (cycles, dangling pointers, orphans) and the live count.
    @raise Storage_error.Corrupt if any of that fails.
    @raise Storage_error.Io_error if the file cannot be read. *)

val path : t -> string

val injector : t -> Faulty_io.injector
(** The fault plan this store was opened with (so a caller reopening a
    poisoned handle can keep the same plan). *)

val is_closed : t -> bool
(** [true] after {!close} or after a failed {!commit_batch} poisoned the
    handle — the cue that recovery means {!open_existing} at {!path}. *)

val page_bytes : t -> int

val page_count : t -> int
(** Allocated (live) pages. *)

val payload_capacity : t -> int
(** Usable bytes per page: [page_bytes - 8] (length + checksum header). *)

val stats : t -> Stats.t

(** {1 Atomic batches}

    Mutations between {!begin_batch} and {!commit_batch} are buffered in
    memory (reads see them — read-your-writes) and become durable
    together, or not at all.  An alloc/write/free outside a batch is an
    implicit batch of one.  If {!commit_batch} raises (simulated crash,
    exhausted I/O retries) the handle is poisoned — further operations
    raise — because only reopening (and hence recovery) can tell which
    side of the commit the disk landed on. *)

val begin_batch : t -> unit
(** @raise Invalid_argument if a batch is already open. *)

val commit_batch : t -> unit
(** Journal, apply and fsync the batch.  An empty batch is a no-op.
    @raise Invalid_argument if no batch is open. *)

val abort_batch : t -> unit
(** Drop the buffered batch and roll the in-memory state back; the disk
    was never touched.
    @raise Invalid_argument if no batch is open. *)

val in_batch : t -> bool

(** {1 Page operations} *)

val alloc : t -> bytes -> Pager.page_id
(** Write a new page (reusing a freed slot if any).
    @raise Invalid_argument if the payload exceeds {!payload_capacity}. *)

val read : t -> Pager.page_id -> bytes
(** Checksum-verified read.
    @raise Invalid_argument on a non-live page.
    @raise Storage_error.Corrupt on a checksum or length mismatch. *)

val write : t -> Pager.page_id -> bytes -> unit

val free : t -> Pager.page_id -> unit

val iter : t -> (Pager.page_id -> bytes -> unit) -> unit
(** All live pages, in id order; does not touch the counters. *)

val flush : t -> unit
(** [fsync] the store file.  Unlike format v1 there is no deferred
    header state: every committed batch already persisted the header. *)

val close : t -> unit
(** Commit any open batch and close the descriptor; idempotent. *)

(** {1 Format constants and codecs}

    Exposed for {!Fsck}, which parses stores without opening them. *)

val magic : string
(** ["SQP2"]. *)

val free_marker : int

val header_size : int
(** Bytes of the header page actually used. *)

val page_header_bytes : int

val min_page_bytes : int

val decode_header : path:string -> bytes -> int * int * int * int
(** Validate a header page image; [(page_bytes, slot_count, free_head,
    live)].
    @raise Storage_error.Corrupt on any inconsistency. *)

val classify_page :
  page_bytes:int -> bytes -> [ `Live of int | `Free of int | `Bad of string ]
(** Non-raising page triage: a checksum-valid live page (payload
    length), a checksum-valid free page (next pointer), or a diagnosis
    of the damage. *)
