type page_problem = { slot : int; what : string }

type report = {
  path : string;
  file_size : int;
  journal : Journal.status;
  header_problem : string option;
  page_bytes : int;
  slot_count : int;
  header_live : int;
  live_found : int;
  free_found : int;
  bad_pages : page_problem list;
  free_list_problems : string list;
  trailing_bytes : int;
}

(* Read a page image, tolerating truncation: a slot that extends past end
   of file reports as short rather than raising. *)
let read_page h ~file_size ~page_bytes slot =
  let offset = slot * page_bytes in
  if offset + page_bytes <= file_size then
    Ok (Faulty_io.read_fully h ~offset ~len:page_bytes)
  else Error (Printf.sprintf "page extends past end of file (offset %d)" offset)

let scan ?(io = Faulty_io.none) path =
  let h = Faulty_io.openfile io path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Faulty_io.close h)
    (fun () ->
      let file_size = Faulty_io.file_size h in
      let journal = Journal.inspect ~injector:io ~store_path:path in
      let empty =
        {
          path;
          file_size;
          journal;
          header_problem = None;
          page_bytes = 0;
          slot_count = 0;
          header_live = 0;
          live_found = 0;
          free_found = 0;
          bad_pages = [];
          free_list_problems = [];
          trailing_bytes = 0;
        }
      in
      if file_size < File_pager.header_size then
        { empty with
          header_problem =
            Some (Printf.sprintf "file too short for a store header (%d bytes)" file_size)
        }
      else
        let head = Faulty_io.read_fully h ~offset:0 ~len:File_pager.header_size in
        match File_pager.decode_header ~path head with
        | exception Storage_error.Corrupt { what; _ } ->
            { empty with header_problem = Some what }
        | page_bytes, slot_count, free_head, header_live ->
            let live_found = ref 0 and free_found = ref 0 in
            let bad = ref [] in
            (* slot -> next pointer of every checksum-valid free page *)
            let free_tbl = Hashtbl.create 16 in
            for slot = 1 to slot_count - 1 do
              match read_page h ~file_size ~page_bytes slot with
              | Error what -> bad := { slot; what } :: !bad
              | Ok img -> (
                  match File_pager.classify_page ~page_bytes img with
                  | `Live _ -> incr live_found
                  | `Free next ->
                      incr free_found;
                      Hashtbl.replace free_tbl slot next
                  | `Bad what -> bad := { slot; what } :: !bad)
            done;
            (* Walk the free list without raising, collecting problems. *)
            let fl = ref [] in
            let note p = fl := p :: !fl in
            let visited = Hashtbl.create 16 in
            let rec walk cur =
              if cur <> -1 then
                if cur < 1 || cur >= slot_count then
                  note (Printf.sprintf "free-list pointer %d out of range" cur)
                else if Hashtbl.mem visited cur then
                  note (Printf.sprintf "free-list cycle through slot %d" cur)
                else begin
                  Hashtbl.replace visited cur ();
                  match Hashtbl.find_opt free_tbl cur with
                  | Some next -> walk next
                  | None ->
                      note
                        (Printf.sprintf
                           "free list reaches slot %d, which is not a valid free page" cur)
                end
            in
            walk free_head;
            let reachable = Hashtbl.length visited in
            if !fl = [] && reachable <> !free_found then
              note
                (Printf.sprintf "%d pages marked free but %d reachable from the free list"
                   !free_found reachable);
            (* With bad pages present we cannot know how many were live. *)
            if !bad = [] && !live_found <> header_live then
              note
                (Printf.sprintf "header live count %d, but %d live pages found" header_live
                   !live_found);
            {
              empty with
              page_bytes;
              slot_count;
              header_live;
              live_found = !live_found;
              free_found = !free_found;
              bad_pages = List.rev !bad;
              free_list_problems = List.rev !fl;
              trailing_bytes = max 0 (file_size - (slot_count * page_bytes));
            })

let clean r =
  r.header_problem = None
  && r.bad_pages = []
  && r.free_list_problems = []
  && r.journal = Journal.Absent
  && r.trailing_bytes = 0
  && r.live_found = r.header_live

let to_text r =
  let b = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "fsck %s\n" r.path;
  pf "  file size: %d bytes\n" r.file_size;
  (match r.journal with
  | Journal.Absent -> pf "  journal: absent\n"
  | Journal.Valid n ->
      pf "  journal: VALID with %d record(s) — store is behind a committed batch;\n" n;
      pf "           a normal open will replay it\n"
  | Journal.Invalid why -> pf "  journal: torn (%s) — a normal open will discard it\n" why);
  (match r.header_problem with
  | Some what -> pf "  header: BAD — %s\n" what
  | None ->
      pf "  header: ok (page_bytes=%d, slots=%d, live=%d)\n" r.page_bytes r.slot_count
        r.header_live;
      pf "  pages: %d live, %d free, %d bad\n" r.live_found r.free_found
        (List.length r.bad_pages);
      List.iter (fun { slot; what } -> pf "    slot %d: %s\n" slot what) r.bad_pages;
      List.iter (fun p -> pf "  free list: %s\n" p) r.free_list_problems;
      if r.trailing_bytes > 0 then
        pf "  trailing: %d byte(s) past the last slot\n" r.trailing_bytes);
  if clean r then pf "  clean\n" else pf "  PROBLEMS FOUND\n";
  Buffer.contents b

let salvage ?(io = Faulty_io.none) ~src ~dest () =
  let r = scan ~io src in
  if r.page_bytes < File_pager.min_page_bytes then
    Storage_error.corrupt ~path:src
      (match r.header_problem with
      | Some what -> "cannot salvage: " ^ what
      | None -> "cannot salvage: header unusable");
  let h = Faulty_io.openfile io src [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Faulty_io.close h)
    (fun () ->
      let out = File_pager.create ~io ~page_bytes:r.page_bytes dest in
      Fun.protect
        ~finally:(fun () -> File_pager.close out)
        (fun () ->
          let salvaged = ref 0 and lost = ref 0 in
          File_pager.begin_batch out;
          for slot = 1 to r.slot_count - 1 do
            match read_page h ~file_size:r.file_size ~page_bytes:r.page_bytes slot with
            | Error _ -> incr lost
            | Ok img -> (
                match File_pager.classify_page ~page_bytes:r.page_bytes img with
                | `Live len ->
                    ignore
                      (File_pager.alloc out (Bytes.sub img File_pager.page_header_bytes len));
                    incr salvaged
                | `Free _ -> ()
                | `Bad _ -> incr lost)
          done;
          File_pager.commit_batch out;
          (!salvaged, !lost)))
