(** Offline store checking and best-effort salvage ("sqp fsck").

    {!scan} walks a store file read-only — it never recovers the
    journal, never rewrites a byte — and reports per-page
    checksum/free-list/header diagnostics, so a damaged store can be
    examined before deciding what to do.  {!salvage} then rebuilds a
    fresh store from every page whose checksum still verifies: a
    degraded open instead of a hard failure, for when the journal cannot
    help (bit rot, partial truncation). *)

type page_problem = { slot : int; what : string }

type report = {
  path : string;
  file_size : int;
  journal : Journal.status;  (** side journal found next to the store *)
  header_problem : string option;  (** [None] = header parses and checksums *)
  page_bytes : int;  (** 0 when the header is unusable *)
  slot_count : int;  (** per the header, 0 when unusable *)
  header_live : int;  (** live count the header claims *)
  live_found : int;  (** checksum-valid live pages seen *)
  free_found : int;  (** checksum-valid free pages seen *)
  bad_pages : page_problem list;  (** in slot order *)
  free_list_problems : string list;
  trailing_bytes : int;  (** file bytes beyond the last header slot *)
}

val scan : ?io:Faulty_io.injector -> string -> report
(** Diagnose the store at [path].  Only raises {!Storage_error.Io_error}
    (when the file cannot be read at all) — corruption is reported, not
    raised. *)

val clean : report -> bool
(** No problems of any kind (a valid journal still pending replay counts
    as a problem to surface: the store is behind it). *)

val to_text : report -> string
(** Human-readable multi-line rendering. *)

val salvage : ?io:Faulty_io.injector -> src:string -> dest:string -> unit -> int * int
(** Rebuild a fresh store at [dest] from every checksum-valid live page
    of [src], preserving slot order (so e.g. a [Persist] metadata page
    stays first); [(salvaged, lost)] page counts.  Pending {e valid}
    journals are NOT applied — salvage preserves what is in the store
    file itself; run a normal open first if you want recovery.
    @raise Storage_error.Corrupt if the header is too damaged to
    determine the page size. *)
