type page_id = int

(* Observability hook: mirror the per-pager [Stats] events into the
   ambient metrics registry so cross-pager totals show up in one place.
   One branch when observability is off. *)
let obs_incr name =
  if Sqp_obs.Trace.global_enabled () then
    Sqp_obs.Metrics.incr (Sqp_obs.Metrics.counter (Sqp_obs.Metrics.global ()) name)

type 'a t = {
  pages : (page_id, 'a) Hashtbl.t;
  stats : Stats.t;
  mutable next_id : page_id;
}

let create () = { pages = Hashtbl.create 64; stats = Stats.create (); next_id = 0 }

let stats t = t.stats

let alloc t v =
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.replace t.pages id v;
  t.stats.allocations <- t.stats.allocations + 1;
  t.stats.physical_writes <- t.stats.physical_writes + 1;
  obs_incr "pager.allocations";
  obs_incr "pager.physical_writes";
  id

let read t id =
  match Hashtbl.find_opt t.pages id with
  | None -> invalid_arg (Printf.sprintf "Pager.read: unallocated page %d" id)
  | Some v ->
      t.stats.physical_reads <- t.stats.physical_reads + 1;
      obs_incr "pager.physical_reads";
      v

let write t id v =
  if not (Hashtbl.mem t.pages id) then
    invalid_arg (Printf.sprintf "Pager.write: unallocated page %d" id);
  Hashtbl.replace t.pages id v;
  t.stats.physical_writes <- t.stats.physical_writes + 1;
  obs_incr "pager.physical_writes"

let free t id =
  if not (Hashtbl.mem t.pages id) then
    invalid_arg (Printf.sprintf "Pager.free: unallocated page %d" id);
  Hashtbl.remove t.pages id;
  t.stats.frees <- t.stats.frees + 1;
  obs_incr "pager.frees"

let page_count t = Hashtbl.length t.pages

let mem t id = Hashtbl.mem t.pages id

let iter t f = Hashtbl.iter f t.pages
