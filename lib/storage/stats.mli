(** Access-cost accounting.  The paper's experiments measure page accesses
    rather than wall-clock time; these counters are the repository's unit
    of cost throughout. *)

type t = {
  mutable physical_reads : int;   (** pages fetched from the "disk" *)
  mutable physical_writes : int;  (** pages written back *)
  mutable allocations : int;      (** pages allocated *)
  mutable frees : int;
  mutable pool_hits : int;        (** buffer-pool hits *)
  mutable pool_misses : int;
}

val create : unit -> t
(** All counters zero. *)

val reset : t -> unit
(** Zero every counter in place. *)

val snapshot : t -> t
(** An independent copy. *)

val diff : after:t -> before:t -> t
(** Counter-wise subtraction.  Reads both records at call time, so
    aliased arguments ([diff ~after:t ~before:t]) yield all zeros; to
    measure an interval against a live counter, take a {!snapshot} as
    [before] first. *)

val add : t -> t -> t
(** Counter-wise sum, as a fresh record. *)

val sum : t list -> t
(** Fold of {!add} over fresh zeros.  This is how per-shard counters from
    parallel execution are merged back into one exact total: give each
    shard its own [t], {!snapshot} when it finishes, and [sum] the
    snapshots. *)

val accumulate : into:t -> t -> unit
(** Add [t]'s counters into [into] in place ([t] is unchanged).  Safe
    against aliasing: [accumulate ~into:t t] doubles every counter. *)

val total_accesses : t -> int
(** [physical_reads + physical_writes]. *)

val hit_ratio : t -> float
(** [hits / (hits + misses)]; 0 if no pool traffic. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering of all six counters. *)
