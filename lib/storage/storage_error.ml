exception Corrupt of { path : string; slot : int option; what : string }

exception
  Io_error of { path : string; op : string; error : Unix.error; attempts : int }

let corrupt ~path ?slot what = raise (Corrupt { path; slot; what })

let io_error ~path ~op ~attempts error = raise (Io_error { path; op; error; attempts })

let is_disk_full = function
  | Io_error { error = Unix.ENOSPC; _ } -> true
  | _ -> false

let to_string = function
  | Corrupt { path; slot; what } ->
      let where =
        match slot with
        | Some s -> Printf.sprintf "%s (page %d)" path s
        | None -> path
      in
      Some (Printf.sprintf "corrupt store %s: %s" where what)
  | Io_error { path; op; error; attempts } ->
      Some
        (Printf.sprintf "I/O error on %s: %s failed with %s after %d attempt%s" path op
           (Unix.error_message error) attempts
           (if attempts = 1 then "" else "s"))
  | _ -> None
