(** Typed failures of the persistent storage layer.

    Corruption (checksum mismatches, implausible lengths, broken free
    lists, truncated files) and unrecoverable I/O errors raise these
    exceptions instead of assorted [Failure]/[Invalid_argument], so
    callers can distinguish "the store is damaged — run fsck/salvage"
    from "the program is being misused". *)

exception Corrupt of { path : string; slot : int option; what : string }
(** The on-disk bytes are not a valid store: bad magic, checksum
    mismatch, payload length beyond the page capacity, file shorter
    than the header says, free-list cycle, live-count mismatch, ...
    [slot] names the offending page when the damage is localized. *)

exception
  Io_error of { path : string; op : string; error : Unix.error; attempts : int }
(** A syscall failed and retrying did not help (or the error is not
    retryable, e.g. [ENOSPC]).  [attempts] counts the tries made. *)

val corrupt : path:string -> ?slot:int -> string -> 'a
(** Raise {!Corrupt}. *)

val io_error : path:string -> op:string -> attempts:int -> Unix.error -> 'a
(** Raise {!Io_error}. *)

val is_disk_full : exn -> bool
(** [true] exactly for an {!Io_error} caused by [ENOSPC] — the trigger
    for a server's read-only degraded mode. *)

val to_string : exn -> string option
(** A human-readable rendering of the two exceptions above; [None] for
    anything else. *)
