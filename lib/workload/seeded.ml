module Z = Sqp_zorder

type t = {
  space : Z.Space.t;
  points : int array array;
  query : Sqp_geom.Box.t;
  query_boxes : Sqp_geom.Box.t array;
  left_objects : (int * Sqp_geom.Shape.t) list;
  right_objects : (int * Sqp_geom.Shape.t) list;
  decompose_options : Z.Decompose.options;
}

let standard ?(n_points = 5000) ?(n_objects = 48) ?(n_query_boxes = 400) () =
  let space = Z.Space.make ~dims:2 ~depth:10 in
  let side = Z.Space.side space in
  let points =
    let rng = Rng.create ~seed:77 in
    Datagen.uniform rng ~side ~n:n_points ~dims:2
  in
  let query = Sqp_geom.Box.of_ranges [ (100, 355); (200, 455) ] in
  let query_boxes =
    let rng = Rng.create ~seed:99 in
    Array.init n_query_boxes (fun _ ->
        let w = 1 + Rng.int rng (side / 4) and h = 1 + Rng.int rng (side / 4) in
        let x = Rng.int rng (side - w) and y = Rng.int rng (side - h) in
        Sqp_geom.Box.of_ranges [ (x, x + w - 1); (y, y + h - 1) ])
  in
  (* Both join sides draw from one seed-13 stream, left first — the
     historical bench definition, preserved bit for bit. *)
  let rng = Rng.create ~seed:13 in
  let objs tag =
    List.init n_objects (fun i ->
        let w = 1 + Rng.int rng (side / 8) and h = 1 + Rng.int rng (side / 8) in
        let x = Rng.int rng (side - w) and y = Rng.int rng (side - h) in
        ( tag + i,
          Sqp_geom.Shape.Box
            (Sqp_geom.Box.make ~lo:[| x; y |] ~hi:[| x + w - 1; y + h - 1 |]) ))
  in
  let left_objects = objs 0 in
  let right_objects = objs 1000 in
  {
    space;
    points;
    query;
    query_boxes;
    left_objects;
    right_objects;
    decompose_options = { Z.Decompose.max_level = Some 12; max_elements = None };
  }

let side t = Z.Space.side t.space

let tagged_points t = Array.mapi (fun i p -> (p, i)) t.points

let join_elements t =
  let decomposed objects =
    List.concat_map
      (fun (id, s) ->
        List.map
          (fun e -> (e, id))
          (Sqp_geom.Shape.decompose ~options:t.decompose_options t.space s))
      objects
  in
  (decomposed t.left_objects, decomposed t.right_objects)
