(* Bits are stored MSB-first: bit [i] lives in byte [i / 8] at bit
   position [7 - i mod 8].  Invariant: every bit of [data] at index
   [>= len] is zero, so equality and hashing can be structural. *)

type t = { data : Bytes.t; len : int }

let empty = { data = Bytes.empty; len = 0 }

let bytes_needed len = (len + 7) / 8

let length t = t.len

let is_empty t = t.len = 0

let check_index t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Bitstring: index %d out of bounds (len %d)" i t.len)

let unsafe_get data i =
  Char.code (Bytes.get data (i lsr 3)) land (0x80 lsr (i land 7)) <> 0

let get t i =
  check_index t i;
  unsafe_get t.data i

let unsafe_set_bit data i b =
  let byte = i lsr 3 and mask = 0x80 lsr (i land 7) in
  let old = Char.code (Bytes.get data byte) in
  let v = if b then old lor mask else old land lnot mask in
  Bytes.set data byte (Char.chr v)

let init n f =
  if n < 0 then invalid_arg "Bitstring.init: negative length";
  let data = Bytes.make (bytes_needed n) '\000' in
  for i = 0 to n - 1 do
    if f i then unsafe_set_bit data i true
  done;
  { data; len = n }

let of_bools bits =
  let arr = Array.of_list bits in
  init (Array.length arr) (Array.get arr)

let of_string s =
  init (String.length s) (fun i ->
      match s.[i] with
      | '0' -> false
      | '1' -> true
      | c -> invalid_arg (Printf.sprintf "Bitstring.of_string: bad char %c" c))

let of_int v ~width =
  if v < 0 then invalid_arg "Bitstring.of_int: negative value";
  if width < 0 || width > 62 then invalid_arg "Bitstring.of_int: bad width";
  if width < 62 && v lsr width <> 0 then
    invalid_arg "Bitstring.of_int: value does not fit width";
  init width (fun i -> (v lsr (width - 1 - i)) land 1 = 1)

let to_string t = String.init t.len (fun i -> if get t i then '1' else '0')

let to_bools t = List.init t.len (get t)

let byte t k =
  if k < 0 || k >= bytes_needed t.len then invalid_arg "Bitstring.byte";
  Char.code (Bytes.get t.data k)

let to_int t =
  if t.len > 62 then invalid_arg "Bitstring.to_int: too long";
  let rec go acc i = if i = t.len then acc else go ((acc lsl 1) lor (if unsafe_get t.data i then 1 else 0)) (i + 1) in
  go 0 0

let copy_resized t new_len =
  let data = Bytes.make (bytes_needed new_len) '\000' in
  Bytes.blit t.data 0 data 0 (min (Bytes.length t.data) (Bytes.length data));
  data

let append_bit t b =
  let len = t.len + 1 in
  let data = copy_resized t len in
  if b then unsafe_set_bit data t.len true;
  { data; len }

let concat a b =
  if b.len = 0 then a
  else if a.len = 0 then b
  else begin
    let len = a.len + b.len in
    let data = copy_resized a len in
    for i = 0 to b.len - 1 do
      if unsafe_get b.data i then unsafe_set_bit data (a.len + i) true
    done;
    { data; len }
  end

let take t n =
  if n < 0 || n > t.len then invalid_arg "Bitstring.take";
  if n = t.len then t
  else begin
    let data = Bytes.make (bytes_needed n) '\000' in
    Bytes.blit t.data 0 data 0 (Bytes.length data);
    (* Zero the bits past [n] in the last byte to restore the invariant. *)
    if n land 7 <> 0 then begin
      let last = Bytes.length data - 1 in
      let keep = 0xff lsl (8 - (n land 7)) land 0xff in
      Bytes.set data last (Char.chr (Char.code (Bytes.get data last) land keep))
    end;
    { data; len = n }
  end

let drop t n =
  if n < 0 || n > t.len then invalid_arg "Bitstring.drop";
  init (t.len - n) (fun i -> unsafe_get t.data (n + i))

let pad_to t n b =
  if n < t.len then invalid_arg "Bitstring.pad_to: target shorter than input";
  if n = t.len then t
  else if not b then { data = copy_resized t n; len = n }
  else init n (fun i -> if i < t.len then unsafe_get t.data i else true)

let set t i b =
  check_index t i;
  let data = Bytes.copy t.data in
  unsafe_set_bit data i b;
  { data; len = t.len }

let compare a b =
  let min_len = min a.len b.len in
  (* Compare whole bytes first; the zero-padding invariant makes this safe
     only for bytes fully inside both strings, so stop before the last
     partial byte of the shorter string. *)
  let full = min_len / 8 in
  let rec bytes i =
    if i = full then bits (full * 8)
    else
      let c = Char.compare (Bytes.get a.data i) (Bytes.get b.data i) in
      if c <> 0 then c else bytes (i + 1)
  and bits i =
    if i >= min_len then Stdlib.compare a.len b.len
    else
      let ba = unsafe_get a.data i and bb = unsafe_get b.data i in
      if ba = bb then bits (i + 1) else if ba then 1 else -1
  in
  bytes 0

let equal a b = a.len = b.len && Bytes.equal a.data b.data

let is_prefix p t =
  p.len <= t.len
  &&
  let rec go i = i = p.len || (unsafe_get p.data i = unsafe_get t.data i && go (i + 1)) in
  go 0

let common_prefix_len a b =
  let min_len = min a.len b.len in
  let rec go i =
    if i = min_len || unsafe_get a.data i <> unsafe_get b.data i then i else go (i + 1)
  in
  go 0

let shortest_separator ~lo ~hi =
  if compare lo hi >= 0 then invalid_arg "Bitstring.shortest_separator: lo >= hi";
  (* If lo is a proper prefix of hi, any proper extension of lo that is a
     prefix of hi works; the shortest is lo plus hi's next bit.  Otherwise
     they differ at position c with lo=0, hi=1 there (since lo < hi), and
     hi's prefix of length c+1 separates. *)
  let c = common_prefix_len lo hi in
  take hi (c + 1)

let successor t =
  let rec go i =
    if i < 0 then None
    else if get t i then go (i - 1)
    else
      (* Set bit i, clear everything after. *)
      Some (init t.len (fun j -> if j < i then unsafe_get t.data j else j = i))
  in
  go (t.len - 1)

let hash t = Hashtbl.hash (t.len, Bytes.to_string t.data)

let pp fmt t =
  if t.len = 0 then Format.pp_print_string fmt "<>"
  else Format.pp_print_string fmt (to_string t)
