(** Immutable variable-length bitstrings.

    Z values (Section 3.1 of the paper) are variable-length bitstrings
    ordered lexicographically; containment of elements is prefix testing.
    This module is the concrete representation: bits are stored MSB-first
    in a [Bytes.t]; unused trailing bits of the last byte are kept at zero
    so that structural operations can work bytewise.

    Lexicographic ("dictionary") order: compare bit by bit from the left;
    if one string is a proper prefix of the other, the prefix is smaller.
    Under this order, a parent element always sorts immediately before its
    descendants. *)

type t

(** {1 Construction} *)

val empty : t

val of_bools : bool list -> t

val of_string : string -> t
(** [of_string "0110"] builds the 4-bit string 0110.
    @raise Invalid_argument on characters other than ['0'] and ['1']. *)

val of_int : int -> width:int -> t
(** [of_int v ~width] is the big-endian [width]-bit encoding of [v].
    @raise Invalid_argument if [v < 0], [width < 0], [width > 62] or
    [v >= 2^width]. *)

val init : int -> (int -> bool) -> t
(** [init n f] is the [n]-bit string whose [i]-th bit is [f i]. *)

(** {1 Observation} *)

val length : t -> int

val get : t -> int -> bool
(** @raise Invalid_argument if the index is out of bounds. *)

val is_empty : t -> bool

val to_string : t -> string
(** Inverse of {!of_string}: e.g. ["0110"]. *)

val to_bools : t -> bool list

val to_int : t -> int
(** Interpret the bits as a big-endian integer.
    @raise Invalid_argument if [length t > 62]. *)

val byte : t -> int -> int
(** [byte t k] is the raw [k]-th storage byte (bits [8k .. 8k+7],
    MSB-first); bits at positions [>= length t] read as zero.  Exists so
    {!Zpacked.of_bitstring} can pack bytewise instead of bit by bit.
    @raise Invalid_argument if [k] is outside [\[0, (length t + 7) / 8)]. *)

(** {1 Combination} *)

val append_bit : t -> bool -> t

val concat : t -> t -> t

val take : t -> int -> t
(** [take t n] is the first [n] bits.
    @raise Invalid_argument if [n < 0 || n > length t]. *)

val drop : t -> int -> t
(** [drop t n] is all but the first [n] bits. *)

val pad_to : t -> int -> bool -> t
(** [pad_to t n b] appends copies of [b] until the length is [n].
    @raise Invalid_argument if [n < length t]. *)

val set : t -> int -> bool -> t
(** Functional update of one bit. *)

(** {1 Order and containment} *)

val compare : t -> t -> int
(** Lexicographic order; a proper prefix is smaller than its extensions. *)

val equal : t -> t -> bool

val is_prefix : t -> t -> bool
(** [is_prefix p t] is true iff [p] is a (non-strict) prefix of [t].
    This is exactly element containment: [contains e1 e2 = is_prefix e1 e2]. *)

val common_prefix_len : t -> t -> int

val shortest_separator : lo:t -> hi:t -> t
(** Shortest bitstring [s] with [lo < s <= hi] (lexicographically), given
    [lo < hi].  Used for prefix-B+-tree separator keys.
    @raise Invalid_argument if [compare lo hi >= 0]. *)

val successor : t -> t option
(** Successor at the same length (binary increment); [None] on all-ones. *)

(** {1 Misc} *)

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as ["0110"]; the empty string prints as ["<>"]. *)
