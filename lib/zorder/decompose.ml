type classification = Inside | Outside | Crosses

type classifier = Element.t -> classification

type options = { max_level : int option; max_elements : int option }

let default_options = { max_level = None; max_elements = None }

let effective_max_level space options =
  let pixels = Space.total_bits space in
  match options.max_level with
  | None -> pixels
  | Some l -> min l pixels

let run_impl ~options space classify =
  let max_level = effective_max_level space options in
  let emitted = ref 0 in
  let over_budget () =
    match options.max_elements with
    | None -> false
    | Some b -> !emitted >= b
  in
  (* Accumulate in reverse z order, low child first, then reverse. *)
  let rec go e acc =
    match classify e with
    | Outside -> acc
    | Inside ->
        incr emitted;
        e :: acc
    | Crosses ->
        if Element.level e >= max_level || over_budget () then begin
          incr emitted;
          e :: acc
        end
        else
          let lo, hi = Element.children e in
          go hi (go lo acc)
  in
  List.rev (go Element.root [])

let run ?(options = default_options) space classify =
  if not (Sqp_obs.Trace.global_enabled ()) then run_impl ~options space classify
  else begin
    let tracer = Sqp_obs.Trace.global () in
    Sqp_obs.Trace.span_begin tracer "decompose";
    let elements = run_impl ~options space classify in
    let n = List.length elements in
    Sqp_obs.Trace.span_end
      ~attrs:(fun () -> [ ("elements", Sqp_obs.Trace.Int n) ])
      tracer;
    let m = Sqp_obs.Metrics.global () in
    Sqp_obs.Metrics.incr (Sqp_obs.Metrics.counter m "decompose.objects");
    Sqp_obs.Metrics.add (Sqp_obs.Metrics.counter m "decompose.elements") n;
    Sqp_obs.Metrics.observe
      (Sqp_obs.Metrics.histogram m "decompose.elements_per_object")
      n;
    elements
  end

let count ?(options = default_options) space classify =
  let max_level = effective_max_level space options in
  let n = ref 0 in
  let over_budget () =
    match options.max_elements with None -> false | Some b -> !n >= b
  in
  let rec go e =
    match classify e with
    | Outside -> ()
    | Inside -> incr n
    | Crosses ->
        if Element.level e >= max_level || over_budget () then incr n
        else begin
          let lo, hi = Element.children e in
          go lo;
          go hi
        end
  in
  go Element.root;
  !n

let to_seq ?(options = default_options) space classify =
  let max_level = effective_max_level space options in
  (* Explicit stack of elements still to process, top = next in z order. *)
  let rec step stack () =
    match stack with
    | [] -> Seq.Nil
    | e :: rest -> (
        match classify e with
        | Outside -> step rest ()
        | Inside -> Seq.Cons (e, step rest)
        | Crosses ->
            if Element.level e >= max_level then Seq.Cons (e, step rest)
            else
              let lo, hi = Element.children e in
              step (lo :: hi :: rest) ())
  in
  step [ Element.root ]

let seq_from space classify zmin =
  let total = Space.total_bits space in
  let max_level = total in
  (* Skip elements whose whole z range lies before [zmin]: element e is
     skippable iff zhi e < zmin, i.e. e padded with 1s is < zmin. *)
  let wholly_before e = Bitstring.compare (Bitstring.pad_to e total true) zmin < 0 in
  let rec step stack () =
    match stack with
    | [] -> Seq.Nil
    | e :: rest ->
        if wholly_before e then step rest ()
        else (
          match classify e with
          | Outside -> step rest ()
          | Inside -> Seq.Cons (e, step rest)
          | Crosses ->
              if Element.level e >= max_level then Seq.Cons (e, step rest)
              else
                let lo, hi = Element.children e in
                step (lo :: hi :: rest) ())
  in
  step [ Element.root ]

let box_classifier space ~lo ~hi =
  let k = Space.dims space in
  if Array.length lo <> k || Array.length hi <> k then
    invalid_arg "Decompose.box_classifier: wrong arity";
  for i = 0 to k - 1 do
    if lo.(i) > hi.(i) then invalid_arg "Decompose.box_classifier: lo > hi";
    if not (Space.valid_coord space lo.(i) && Space.valid_coord space hi.(i)) then
      invalid_arg "Decompose.box_classifier: bounds out of grid"
  done;
  fun e ->
    let elo, ehi = Element.box space e in
    let rec check i inside =
      if i = k then if inside then Inside else Crosses
      else if ehi.(i) < lo.(i) || elo.(i) > hi.(i) then Outside
      else
        let contained = lo.(i) <= elo.(i) && ehi.(i) <= hi.(i) in
        check (i + 1) (inside && contained)
    in
    check 0 true

(* Memo cache for box decompositions.  Server sessions and benchmarks
   replay the same query boxes; the decomposition is pure, so a bounded
   LRU keyed on the full input (space, bounds, options) is safe.  A mutex
   serializes access — decompose_box runs concurrently on pool domains —
   and the decomposition itself is computed outside the lock. *)

type cache_stats = { hits : int; misses : int; evictions : int }

let default_cache_capacity = 512

let cache_lock = Mutex.create ()
let cache = ref (Lru.create ~capacity:default_cache_capacity)
let cache_on = Atomic.make true
let cache_hits = ref 0
let cache_misses = ref 0
let cache_evictions = ref 0

let set_cache_enabled on = Atomic.set cache_on on
let cache_enabled () = Atomic.get cache_on

let reset_cache ?(capacity = default_cache_capacity) () =
  Mutex.protect cache_lock (fun () ->
      cache := Lru.create ~capacity;
      cache_hits := 0;
      cache_misses := 0;
      cache_evictions := 0)

let cache_stats () =
  Mutex.protect cache_lock (fun () ->
      { hits = !cache_hits; misses = !cache_misses; evictions = !cache_evictions })

let bump_cache_metric suffix =
  Sqp_obs.Metrics.incr
    (Sqp_obs.Metrics.counter (Sqp_obs.Metrics.global ()) ("decompose.cache." ^ suffix))

let decompose_box ?options space ~lo ~hi =
  (* Validate eagerly (box_classifier raises on bad bounds) so cache hits
     and misses reject exactly the same inputs. *)
  let classify = box_classifier space ~lo ~hi in
  if not (Atomic.get cache_on) then run ?options space classify
  else begin
    let opts = match options with Some o -> o | None -> default_options in
    let key =
      ( Space.dims space,
        Space.depth space,
        Array.copy lo,
        Array.copy hi,
        (match opts.max_level with Some l -> l | None -> -1),
        match opts.max_elements with Some b -> b | None -> -1 )
    in
    let cached =
      Mutex.protect cache_lock (fun () ->
          match Lru.find !cache key with
          | Some els ->
              incr cache_hits;
              Some els
          | None ->
              incr cache_misses;
              None)
    in
    match cached with
    | Some els ->
        bump_cache_metric "hits";
        els
    | None ->
        bump_cache_metric "misses";
        let els = run ?options space classify in
        let evicted =
          Mutex.protect cache_lock (fun () ->
              let evicted = Lru.add !cache key els in
              if evicted then incr cache_evictions;
              evicted)
        in
        if evicted then bump_cache_metric "evictions";
        els
  end

let is_exact_cover space classify elements =
  let total = Space.total_bits space in
  if total > 24 then invalid_arg "Decompose.is_exact_cover: space too large";
  (* z order + disjointness *)
  let rec ordered = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> Element.precedes a b && ordered rest
  in
  ordered elements
  &&
  let n = 1 lsl total in
  let covered r =
    let z = Bitstring.of_int r ~width:total in
    List.exists (fun e -> Bitstring.is_prefix e z) elements
  in
  let rec check r =
    if r = n then true
    else
      let z = Bitstring.of_int r ~width:total in
      let ok =
        match classify z with
        | Inside -> covered r
        | Outside -> not (covered r)
        | Crosses -> true (* boundary pixel: either way is acceptable *)
      in
      ok && check (r + 1)
  in
  check 0
