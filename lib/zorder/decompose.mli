(** Decomposition of spatial objects into elements (Section 3.1; the
    generalized RangeSearch decomposition of [OREN84]).

    The object is described by a {e classifier} telling, for any element,
    whether the element lies entirely inside the object, entirely outside,
    or crosses its boundary.  The decomposition recursively splits crossing
    elements; inside elements are emitted whole, and crossing elements that
    reach pixel resolution (or a recursion/size budget) are emitted as
    over-approximating boundary elements.

    Output is always in z order, with pairwise-disjoint elements. *)

type classification = Inside | Outside | Crosses

type classifier = Element.t -> classification
(** Must be consistent: a child of an [Inside] ([Outside]) element is
    [Inside] ([Outside]). *)

type options = {
  max_level : int option;
      (** Stop splitting below this level; crossing elements at the level
          are emitted (coarser, over-approximating).  [None]: split to
          pixel resolution. *)
  max_elements : int option;
      (** Soft budget: once at least this many elements have been emitted,
          remaining crossing elements are emitted un-split.  [None]:
          unbounded.  The result over-approximates but stays exact on
          [Inside] regions already emitted. *)
}

val default_options : options
(** No limits: exact decomposition to pixel resolution. *)

val run : ?options:options -> Space.t -> classifier -> Element.t list
(** Eager decomposition, elements in z order. *)

val to_seq : ?options:options -> Space.t -> classifier -> Element.t Seq.t
(** Lazy decomposition: elements are produced on demand, in z order —
    Section 3.3's "elements of the box may be generated on demand".
    [max_elements] is ignored in this form (the consumer controls how many
    elements to force). *)

val seq_from : Space.t -> classifier -> Bitstring.t -> Element.t Seq.t
(** [seq_from space classify zmin] lazily produces, in z order, the
    decomposition elements [e] with [Element.zhi e >= zmin] — i.e. it
    skips (without generating) all elements wholly before [zmin].  This is
    the "random access on sequence B" of Section 3.3. *)

val box_classifier : Space.t -> lo:int array -> hi:int array -> classifier
(** Classifier for an axis-aligned box with inclusive integer bounds.
    @raise Invalid_argument if bounds are invalid ([lo > hi] on some axis
    or out of the grid). *)

val decompose_box : ?options:options -> Space.t -> lo:int array -> hi:int array -> Element.t list
(** [run] with {!box_classifier}; the decomposition of Figure 2.

    Results are memoized in a bounded process-wide LRU keyed on the full
    input (space, bounds, options) — server sessions and benchmarks
    replay the same boxes, and the decomposition is pure.  The cache is
    thread-safe and on by default; see {!set_cache_enabled} /
    [--no-decompose-cache] on [sqp serve] and [bench]. *)

(** {1 Decomposition cache} *)

type cache_stats = { hits : int; misses : int; evictions : int }

val set_cache_enabled : bool -> unit
(** Turn the {!decompose_box} memo cache on or off (default: on).  Off
    means every call decomposes from scratch. *)

val cache_enabled : unit -> bool

val reset_cache : ?capacity:int -> unit -> unit
(** Drop all cached decompositions and zero {!cache_stats}; [capacity]
    (default 512) bounds the number of retained boxes. *)

val cache_stats : unit -> cache_stats
(** Hit/miss/eviction totals since the last {!reset_cache}.  The same
    totals are mirrored to the [decompose.cache.*] metrics counters. *)

val count : ?options:options -> Space.t -> classifier -> int
(** Number of elements [run] would produce, without materializing them. *)

val is_exact_cover :
  Space.t -> classifier -> Element.t list -> bool
(** Debug/test helper: are the elements disjoint, in z order, and is every
    [Inside] pixel covered and every [Outside] pixel uncovered?  Only
    feasible for tiny spaces (iterates all pixels). *)
