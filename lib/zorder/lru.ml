(* Hash table over an intrusive doubly-linked recency list: [first] is
   the most recently used entry, [last] the eviction candidate. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  cap : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable first : ('k, 'v) node option;
  mutable last : ('k, 'v) node option;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be positive";
  { cap = capacity; table = Hashtbl.create (min capacity 64); first = None; last = None }

let capacity t = t.cap

let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.first <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.last <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.first;
  node.prev <- None;
  (match t.first with Some f -> f.prev <- Some node | None -> t.last <- Some node);
  t.first <- Some node

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some node ->
      unlink t node;
      push_front t node;
      Some node.value

let add t k v =
  match Hashtbl.find_opt t.table k with
  | Some node ->
      node.value <- v;
      unlink t node;
      push_front t node;
      false
  | None ->
      let evicted =
        if Hashtbl.length t.table >= t.cap then (
          match t.last with
          | Some victim ->
              unlink t victim;
              Hashtbl.remove t.table victim.key;
              true
          | None -> false)
        else false
      in
      let node = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.table k node;
      push_front t node;
      evicted

let clear t =
  Hashtbl.reset t.table;
  t.first <- None;
  t.last <- None
