(** A small bounded LRU map (hash table + recency list).

    Used to memoize query-box decompositions ({!Decompose}); generic so
    tests can exercise it directly.  Not thread-safe — callers serialize
    access (the decompose cache holds a mutex around every operation). *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : ('k, 'v) t -> int

val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit refreshes the entry's recency. *)

val add : ('k, 'v) t -> 'k -> 'v -> bool
(** Insert or overwrite (either way the entry becomes most recent).
    Returns [true] iff a least-recently-used entry was evicted to make
    room. *)

val clear : ('k, 'v) t -> unit
