(* Flat-array kernels mirroring the list-based reference sweeps.  Control
   flow — and therefore counter semantics — is kept in lockstep with the
   bitstring implementations these accelerate; see the .mli notes and the
   differential suite in test/test_zseq.ml.

   Every kernel has two interchangeable loops: a generic one over packed
   records (any length up to Zpacked.max_bits) and a "narrow" one used
   when every value fits a single 63-bit word.  A narrow z value is
   word-encoded as [w0 lxor min_int] — flipping the sign bit turns
   unsigned word order into signed order — so the hot loops run over
   plain [int array]s where a z comparison is one machine comparison and
   a prefix test is one masked xor. *)

module P = Zpacked

(* Signed-order-preserving word key of a narrow value. *)
let key (z : P.t) = z.P.w0 lxor min_int

let narrow (z : P.t) = z.P.len <= P.word_bits

(* Top-[n] bits of a 63-bit word (0 <= n <= 63); [lsl] by 63 is
   unspecified, hence the guard.  Mirrors Zpacked's private helper. *)
let mask_first n = if n = 0 then 0 else -1 lsl (P.word_bits - n)

let word_key = key

let element_keys ~total (z : P.t) =
  if total > P.word_bits || z.P.len > total then
    invalid_arg "Zkernel.element_keys";
  (* Scan range of the element: zero-padding leaves the word unchanged,
     one-padding sets the bits between len and total. *)
  (key z, (z.P.w0 lor (mask_first total lxor mask_first z.P.len)) lxor min_int)

let uniform_word_keys zs =
  let n = Array.length zs in
  if n = 0 then None
  else
    let len0 = zs.(0).P.len in
    if len0 <= P.word_bits && Array.for_all (fun (z : P.t) -> z.P.len = len0) zs
    then Some (Array.map key zs)
    else None

(* {1 Sorting} *)

let bits_for v =
  let b = ref 1 in
  while v lsr !b <> 0 do
    incr b
  done;
  !b

(* In-place quicksort of an int array with inlined comparisons (median-of-
   three pivot, insertion sort below 16).  Used on encoded keys, which are
   pairwise distinct — the index field breaks all ties — so equal-pivot
   pathologies cannot arise. *)
let sort_ints ~comparisons a =
  let insertion lo hi =
    for i = lo + 1 to hi do
      let v = a.(i) in
      let j = ref (i - 1) in
      while
        !j >= lo
        && (incr comparisons;
            a.(!j) > v)
      do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- v
    done
  in
  let swap i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  let rec qsort lo hi =
    if hi - lo < 16 then insertion lo hi
    else begin
      let mid = (lo + hi) / 2 in
      if a.(mid) < a.(lo) then swap mid lo;
      if a.(hi) < a.(mid) then begin
        swap hi mid;
        if a.(mid) < a.(lo) then swap mid lo
      end;
      let pivot = a.(mid) in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while
          (incr comparisons;
           a.(!i) < pivot)
        do
          incr i
        done;
        while
          (incr comparisons;
           a.(!j) > pivot)
        do
          decr j
        done;
        if !i <= !j then begin
          swap !i !j;
          incr i;
          decr j
        end
      done;
      qsort lo !j;
      qsort !i hi
    end
  in
  let n = Array.length a in
  if n > 1 then qsort 0 (n - 1)

(* LSD radix sort (8-bit digits) of non-negative encoded keys: no
   comparisons at all, ~nbits/8 counting passes.  Stable, though the
   encodings are pairwise distinct anyway. *)
let radix_sort a ~nbits =
  let n = Array.length a in
  let tmp = Array.make n 0 in
  let count = Array.make 256 0 in
  let src = ref a and dst = ref tmp in
  let shift = ref 0 in
  while !shift < nbits do
    Array.fill count 0 256 0;
    let s = !src and t = !dst and sh = !shift in
    for i = 0 to n - 1 do
      let d = (s.(i) lsr sh) land 255 in
      count.(d) <- count.(d) + 1
    done;
    let acc = ref 0 in
    for d = 0 to 255 do
      let c = count.(d) in
      count.(d) <- !acc;
      acc := !acc + c
    done;
    for i = 0 to n - 1 do
      let v = s.(i) in
      let d = (v lsr sh) land 255 in
      t.(count.(d)) <- v;
      count.(d) <- count.(d) + 1
    done;
    src := t;
    dst := s;
    shift := sh + 8
  done;
  if !src != a then Array.blit !src 0 a 0 n

(* Single-word encoding of (z value, length, input index): value bits
   zero-padded to the longest length in the batch, then a 6-bit length,
   then the index.  Field-by-field order of the encoding = padded-word
   order, length on ties, input order last — exactly z order made stable
   — so sorting the encoded ints IS the stable z sort.  Large batches go
   through the radix sort and perform {e zero} comparisons (the counter
   stays honest: nothing was compared). *)
let sort_perm_encoded ~comparisons zs ~maxlen ~ib =
  let n = Array.length zs in
  let enc =
    Array.init n (fun i ->
        let z = zs.(i) in
        ((z.P.w0 lsr (P.word_bits - maxlen)) lsl (6 + ib))
        lor (z.P.len lsl ib) lor i)
  in
  if n < 64 then sort_ints ~comparisons enc
  else radix_sort enc ~nbits:(maxlen + 6 + ib);
  let mask = (1 lsl ib) - 1 in
  Array.map (fun e -> e land mask) enc

(* Stable mergesort of the permutation [a] by [(ks, ls)], all comparisons
   inlined int-array reads — no closure per probe, which is most of the
   win over [Array.stable_sort] on boxed values. *)
let sort_perm_narrow ~comparisons ks ls n =
  let a = Array.init n (fun i -> i) in
  let tmp = Array.make n 0 in
  let rec sort lo hi =
    if hi - lo > 1 then begin
      let mid = (lo + hi) / 2 in
      sort lo mid;
      sort mid hi;
      let i = ref lo and j = ref mid and k = ref lo in
      while !i < mid && !j < hi do
        let ai = a.(!i) and aj = a.(!j) in
        incr comparisons;
        let left =
          (* <= : ties take the left run, which keeps the sort stable *)
          let ka = ks.(ai) and kb = ks.(aj) in
          ka < kb || (ka = kb && ls.(ai) <= ls.(aj))
        in
        if left then begin
          tmp.(!k) <- ai;
          incr i
        end
        else begin
          tmp.(!k) <- aj;
          incr j
        end;
        incr k
      done;
      while !i < mid do
        tmp.(!k) <- a.(!i);
        incr i;
        incr k
      done;
      while !j < hi do
        tmp.(!k) <- a.(!j);
        incr j;
        incr k
      done;
      Array.blit tmp lo a lo (hi - lo)
    end
  in
  sort 0 n;
  a

let sort_perm ~comparisons zs =
  let n = Array.length zs in
  if n = 0 then [||]
  else if Array.for_all narrow zs then begin
    let maxlen =
      Array.fold_left (fun m (z : P.t) -> if z.P.len > m then z.P.len else m) 0 zs
    in
    let ib = bits_for (n - 1) in
    if maxlen + 6 + ib <= 62 then
      (* value + length + index fit one non-negative word *)
      sort_perm_encoded ~comparisons zs ~maxlen ~ib
    else
      (* Word keys break all but exact-prefix ties; lengths settle those. *)
      let ks = Array.map key zs
      and ls = Array.map (fun (z : P.t) -> z.P.len) zs in
      sort_perm_narrow ~comparisons ks ls n
  end
  else begin
    let perm = Array.init n (fun i -> i) in
    Array.stable_sort
      (fun i j ->
        incr comparisons;
        P.compare zs.(i) zs.(j))
      perm;
    perm
  end

(* The sweep's working form of an all-narrow batch, already z-sorted:
   word key, length and prefix mask of each value in flat int arrays. *)
type keyed = { kks : int array; kls : int array; kms : int array }

let keyed_of_sorted zs =
  {
    kks = Array.map key zs;
    kls = Array.map (fun (z : P.t) -> z.P.len) zs;
    kms = Array.map (fun (z : P.t) -> mask_first z.P.len) zs;
  }

let sort_keyed ~comparisons zs =
  let n = Array.length zs in
  if n = 0 then ([||], Some { kks = [||]; kls = [||]; kms = [||] })
  else if Array.for_all narrow zs then begin
    let maxlen =
      Array.fold_left (fun m (z : P.t) -> if z.P.len > m then z.P.len else m) 0 zs
    in
    let ib = bits_for (n - 1) in
    if maxlen + 6 + ib <= 62 then begin
      (* Encoded sort, then decode permutation, keys, lengths and masks
         from the sorted encodings in a single pass — the sweep never
         touches the boxed records again. *)
      let enc =
        Array.init n (fun i ->
            let z = zs.(i) in
            ((z.P.w0 lsr (P.word_bits - maxlen)) lsl (6 + ib))
            lor (z.P.len lsl ib) lor i)
      in
      if n < 64 then sort_ints ~comparisons enc
      else radix_sort enc ~nbits:(maxlen + 6 + ib);
      let imask = (1 lsl ib) - 1 in
      let perm = Array.make n 0 in
      let kks = Array.make n 0 and kls = Array.make n 0 and kms = Array.make n 0 in
      let shift = P.word_bits - maxlen in
      for r = 0 to n - 1 do
        let e = enc.(r) in
        perm.(r) <- e land imask;
        let len = (e lsr ib) land 63 in
        kls.(r) <- len;
        kms.(r) <- mask_first len;
        kks.(r) <- ((e lsr (6 + ib)) lsl shift) lxor min_int
      done;
      (perm, Some { kks; kls; kms })
    end
    else begin
      let ks = Array.map key zs
      and ls = Array.map (fun (z : P.t) -> z.P.len) zs in
      let perm = sort_perm_narrow ~comparisons ks ls n in
      ( perm,
        Some
          {
            kks = Array.map (fun i -> ks.(i)) perm;
            kls = Array.map (fun i -> ls.(i)) perm;
            kms = Array.map (fun i -> mask_first ls.(i)) perm;
          } )
    end
  end
  else (sort_perm ~comparisons zs, None)

(* {1 Containment sweep} *)

type sweep_stats = { pairs : int; max_stack : int }

let sweep_pairs_generic ~comparisons zl zr emit =
  let nl = Array.length zl and nr = Array.length zr in
  let stack_l = Array.make (max 1 nl) 0 and stack_r = Array.make (max 1 nr) 0 in
  let dl = ref 0 and dr = ref 0 in
  let pairs = ref 0 and max_stack = ref 0 in
  (* Pop entries that are no longer prefixes of the sweep position; like
     the list version, the surviving top entry also costs one test. *)
  let pop_closed zs stack depth z =
    while
      !depth > 0
      && (incr comparisons;
          not (P.is_prefix zs.(stack.(!depth - 1)) z))
    do
      decr depth
    done
  in
  let note_depth () =
    let d = !dl + !dr in
    if d > !max_stack then max_stack := d
  in
  let arrive_left li =
    let z = zl.(li) in
    pop_closed zl stack_l dl z;
    pop_closed zr stack_r dr z;
    for s = !dr - 1 downto 0 do
      incr pairs;
      emit li stack_r.(s)
    done;
    stack_l.(!dl) <- li;
    incr dl;
    note_depth ()
  in
  let arrive_right ri =
    let z = zr.(ri) in
    pop_closed zl stack_l dl z;
    pop_closed zr stack_r dr z;
    for s = !dl - 1 downto 0 do
      incr pairs;
      emit stack_l.(s) ri
    done;
    stack_r.(!dr) <- ri;
    incr dr;
    note_depth ()
  in
  let i = ref 0 and j = ref 0 in
  while !i < nl && !j < nr do
    incr comparisons;
    (* <= : on ties the left side arrives first, as in a stable sort of
       left-then-right. *)
    if P.compare zl.(!i) zr.(!j) <= 0 then begin
      arrive_left !i;
      incr i
    end
    else begin
      arrive_right !j;
      incr j
    end
  done;
  while !i < nl do
    arrive_left !i;
    incr i
  done;
  while !j < nr do
    arrive_right !j;
    incr j
  done;
  { pairs = !pairs; max_stack = !max_stack }

(* Same sweep, same counters, but every z is (key, len, prefix mask) in
   three flat int arrays: the merge head is one word comparison (plus a
   length comparison on exact-word ties) and a stack pop test is one
   masked xor. *)
let sweep_pairs_keyed ~comparisons l r emit =
  let kl = l.kks and ll = l.kls and ml = l.kms in
  let kr = r.kks and lr = r.kls and mr = r.kms in
  let nl = Array.length kl and nr = Array.length kr in
  let stack_l = Array.make (max 1 nl) 0 and stack_r = Array.make (max 1 nr) 0 in
  let dl = ref 0 and dr = ref 0 in
  let pairs = ref 0 and max_stack = ref 0 in
  let pop_closed ks ls ms stack depth kz lz =
    while
      !depth > 0
      && (incr comparisons;
          let s = stack.(!depth - 1) in
          not (ls.(s) <= lz && (ks.(s) lxor kz) land ms.(s) = 0))
    do
      decr depth
    done
  in
  let note_depth () =
    let d = !dl + !dr in
    if d > !max_stack then max_stack := d
  in
  let arrive_left li =
    let kz = kl.(li) and lz = ll.(li) in
    pop_closed kl ll ml stack_l dl kz lz;
    pop_closed kr lr mr stack_r dr kz lz;
    for s = !dr - 1 downto 0 do
      incr pairs;
      emit li stack_r.(s)
    done;
    stack_l.(!dl) <- li;
    incr dl;
    note_depth ()
  in
  let arrive_right ri =
    let kz = kr.(ri) and lz = lr.(ri) in
    pop_closed kl ll ml stack_l dl kz lz;
    pop_closed kr lr mr stack_r dr kz lz;
    for s = !dl - 1 downto 0 do
      incr pairs;
      emit stack_l.(s) ri
    done;
    stack_r.(!dr) <- ri;
    incr dr;
    note_depth ()
  in
  let i = ref 0 and j = ref 0 in
  while !i < nl && !j < nr do
    incr comparisons;
    if
      (* compare <= 0, decomposed: key order first, length on key ties *)
      kl.(!i) < kr.(!j) || (kl.(!i) = kr.(!j) && ll.(!i) <= lr.(!j))
    then begin
      arrive_left !i;
      incr i
    end
    else begin
      arrive_right !j;
      incr j
    end
  done;
  while !i < nl do
    arrive_left !i;
    incr i
  done;
  while !j < nr do
    arrive_right !j;
    incr j
  done;
  { pairs = !pairs; max_stack = !max_stack }

let sweep_pairs ~comparisons zl zr emit =
  if Array.for_all narrow zl && Array.for_all narrow zr then
    sweep_pairs_keyed ~comparisons (keyed_of_sorted zl) (keyed_of_sorted zr) emit
  else sweep_pairs_generic ~comparisons zl zr emit

(* The same sweep over pull-based sources (e.g. [Zrun] cursors): the
   arrays are gone, so the open-element stacks hold the z values
   themselves (plus arrival ordinals) and grow by doubling. *)
let sweep_pairs_stream ~comparisons next_l next_r emit =
  let zs_l = ref (Array.make 16 P.empty) and ix_l = ref (Array.make 16 0) in
  let zs_r = ref (Array.make 16 P.empty) and ix_r = ref (Array.make 16 0) in
  let dl = ref 0 and dr = ref 0 in
  let pairs = ref 0 and max_stack = ref 0 in
  let push zs ix depth i z =
    let cap = Array.length !zs in
    if !depth = cap then begin
      let zs' = Array.make (2 * cap) P.empty and ix' = Array.make (2 * cap) 0 in
      Array.blit !zs 0 zs' 0 cap;
      Array.blit !ix 0 ix' 0 cap;
      zs := zs';
      ix := ix'
    end;
    !zs.(!depth) <- z;
    !ix.(!depth) <- i;
    incr depth
  in
  let pop_closed zs depth z =
    while
      !depth > 0
      && (incr comparisons;
          not (P.is_prefix !zs.(!depth - 1) z))
    do
      decr depth
    done
  in
  let note_depth () =
    let d = !dl + !dr in
    if d > !max_stack then max_stack := d
  in
  let arrive_left li z =
    pop_closed zs_l dl z;
    pop_closed zs_r dr z;
    for s = !dr - 1 downto 0 do
      incr pairs;
      emit li !ix_r.(s)
    done;
    push zs_l ix_l dl li z;
    note_depth ()
  in
  let arrive_right ri z =
    pop_closed zs_l dl z;
    pop_closed zs_r dr z;
    for s = !dl - 1 downto 0 do
      incr pairs;
      emit !ix_l.(s) ri
    done;
    push zs_r ix_r dr ri z;
    note_depth ()
  in
  let li = ref 0 and ri = ref 0 in
  let hl = ref (next_l ()) and hr = ref (next_r ()) in
  let take_left z =
    arrive_left !li z;
    incr li;
    hl := next_l ()
  in
  let take_right z =
    arrive_right !ri z;
    incr ri;
    hr := next_r ()
  in
  let continue = ref true in
  while !continue do
    match (!hl, !hr) with
    | Some a, Some b ->
        incr comparisons;
        (* <= : on ties the left side arrives first, as in the array sweep. *)
        if P.compare a b <= 0 then take_left a else take_right b
    | Some a, None -> take_left a
    | None, Some b -> take_right b
    | None, None -> continue := false
  done;
  { pairs = !pairs; max_stack = !max_stack }

(* {1 Range merges} *)

let lower_bound ~comparisons zs ~lo ~hi z =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    incr comparisons;
    if P.compare zs.(mid) z < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

type range = { rlo : P.t; rhi : P.t }

type range_counters = {
  point_steps : int;
  element_steps : int;
  point_jumps : int;
  element_jumps : int;
  comparisons : int;
}

let range_plain_generic zs ranges emit =
  let np = Array.length zs and nb = Array.length ranges in
  let point_steps = ref 0 and element_steps = ref 0 and comparisons = ref 0 in
  let i = ref 0 and j = ref 0 in
  while !i < np && !j < nb do
    let z = zs.(!i) and r = ranges.(!j) in
    incr comparisons;
    if P.compare z r.rlo < 0 then begin
      incr i;
      incr point_steps
    end
    else begin
      incr comparisons;
      if P.compare z r.rhi > 0 then begin
        incr j;
        incr element_steps
      end
      else begin
        emit !i;
        incr i;
        incr point_steps
      end
    end
  done;
  {
    point_steps = !point_steps;
    element_steps = !element_steps;
    point_jumps = 0;
    element_jumps = 0;
    comparisons = !comparisons;
  }

(* Point z values all share one narrow length and range bounds are padded
   to that same length, so every comparison in the merge is between
   equal-length narrow values: word order alone decides. *)
type key_ranges = { klo : int array; khi : int array }

let range_plain_keys ks { klo; khi } emit =
  let np = Array.length ks and nb = Array.length klo in
  let point_steps = ref 0 and element_steps = ref 0 and comparisons = ref 0 in
  let i = ref 0 and j = ref 0 in
  while !i < np && !j < nb do
    let k = ks.(!i) in
    incr comparisons;
    if k < klo.(!j) then begin
      incr i;
      incr point_steps
    end
    else begin
      incr comparisons;
      if k > khi.(!j) then begin
        incr j;
        incr element_steps
      end
      else begin
        emit !i;
        incr i;
        incr point_steps
      end
    end
  done;
  {
    point_steps = !point_steps;
    element_steps = !element_steps;
    point_jumps = 0;
    element_jumps = 0;
    comparisons = !comparisons;
  }

let range_plain zs ranges emit = range_plain_generic zs ranges emit

(* First index in [ranges] with rhi >= z. *)
let first_live_range ~comparisons ranges z =
  let lo = ref 0 and hi = ref (Array.length ranges) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    incr comparisons;
    if P.compare ranges.(mid).rhi z < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let range_skip_generic ~i0 ~i1 zs ranges emit =
  let nb = Array.length ranges in
  let point_steps = ref 0 and element_steps = ref 0 in
  let point_jumps = ref 0 and element_jumps = ref 0 in
  let comparisons = ref 0 in
  let i = ref i0 and j = ref 0 in
  if i1 > i0 && nb > 0 then begin
    (* Initial random access: position P at the box's first z value. *)
    i := lower_bound ~comparisons zs ~lo:i0 ~hi:i1 ranges.(0).rlo;
    incr point_jumps
  end;
  while !i < i1 && !j < nb do
    let z = zs.(!i) and r = ranges.(!j) in
    incr comparisons;
    if P.compare z r.rlo < 0 then begin
      (* Point is before the current element: jump P forward. *)
      i := lower_bound ~comparisons zs ~lo:!i ~hi:i1 r.rlo;
      incr point_jumps
    end
    else begin
      incr comparisons;
      if P.compare z r.rhi > 0 then begin
        (* Point is past the current element: jump B forward. *)
        j := first_live_range ~comparisons ranges z;
        incr element_jumps
      end
      else begin
        emit !i;
        incr i;
        incr point_steps
      end
    end
  done;
  {
    point_steps = !point_steps;
    element_steps = !element_steps;
    point_jumps = !point_jumps;
    element_jumps = !element_jumps;
    comparisons = !comparisons;
  }

let lower_bound_key ~comparisons ks ~lo ~hi k =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    incr comparisons;
    if ks.(mid) < k then lo := mid + 1 else hi := mid
  done;
  !lo

let first_live_key ~comparisons khi k =
  let lo = ref 0 and hi = ref (Array.length khi) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    incr comparisons;
    if khi.(mid) < k then lo := mid + 1 else hi := mid
  done;
  !lo

let range_skip_keys_loop ~i0 ~i1 ks { klo; khi } emit =
  let nb = Array.length klo in
  let point_steps = ref 0 and element_steps = ref 0 in
  let point_jumps = ref 0 and element_jumps = ref 0 in
  let comparisons = ref 0 in
  let i = ref i0 and j = ref 0 in
  if i1 > i0 && nb > 0 then begin
    i := lower_bound_key ~comparisons ks ~lo:i0 ~hi:i1 klo.(0);
    incr point_jumps
  end;
  while !i < i1 && !j < nb do
    let k = ks.(!i) in
    incr comparisons;
    if k < klo.(!j) then begin
      i := lower_bound_key ~comparisons ks ~lo:!i ~hi:i1 klo.(!j);
      incr point_jumps
    end
    else begin
      incr comparisons;
      if k > khi.(!j) then begin
        j := first_live_key ~comparisons khi k;
        incr element_jumps
      end
      else begin
        emit !i;
        incr i;
        incr point_steps
      end
    end
  done;
  {
    point_steps = !point_steps;
    element_steps = !element_steps;
    point_jumps = !point_jumps;
    element_jumps = !element_jumps;
    comparisons = !comparisons;
  }

let range_skip ?(i0 = 0) ?i1 zs ranges emit =
  let i1 = match i1 with Some i1 -> i1 | None -> Array.length zs in
  range_skip_generic ~i0 ~i1 zs ranges emit

let range_skip_keys ?(i0 = 0) ?i1 ks ranges emit =
  let i1 = match i1 with Some i1 -> i1 | None -> Array.length ks in
  range_skip_keys_loop ~i0 ~i1 ks ranges emit
