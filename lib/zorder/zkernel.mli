(** Index-based merge kernels over packed z values.

    The inner loops shared by [Zmerge], [Range_search] and
    [Spatial_join]'s packed fast paths: flat-array, allocation-free per
    step, with the same control flow (and hence the same exact work
    counters, where the reference documents them) as the list-based
    bitstring implementations they mirror.  All functions take a
    [comparisons] accumulator that is incremented once per z comparison
    or prefix test actually performed.

    Each kernel switches transparently between a generic loop over packed
    records and a {e narrow} loop used when every value fits one 63-bit
    word (spaces up to [total_bits <= Zpacked.word_bits], e.g. any 2-D
    space of depth 31 or less).  Narrow values are word-encoded as
    sign-flipped integers whose native order is z order, so the hot loops
    run over flat [int array]s: one machine comparison per z comparison,
    one masked xor per prefix test.  Both loops execute the same control
    flow, so counters do not depend on which one ran. *)

val sort_perm : comparisons:int ref -> Zpacked.t array -> int array
(** Stable sorting permutation: [perm] such that
    [zs.(perm.(0)) <= zs.(perm.(1)) <= ...], equal z values keeping their
    input order (same tie rule as [List.sort] on a tagged list). *)

type keyed
(** An all-narrow batch in z-sorted order, pre-decoded to the flat
    word-key / length / prefix-mask arrays the containment sweep reads —
    built once by {!sort_keyed} so {!sweep_pairs_keyed} never touches the
    boxed records. *)

val sort_keyed :
  comparisons:int ref -> Zpacked.t array -> int array * keyed option
(** {!sort_perm} fused with sweep preparation: the same stable
    permutation plus, when every value is narrow, its {!keyed} form
    (decoded straight from the sort's single-word encodings in one extra
    pass).  [None] means some value was wider than one word; callers then
    permute the packed array and use {!sweep_pairs}. *)

val uniform_word_keys : Zpacked.t array -> int array option
(** Word-encode a non-empty array of narrow z values of {e equal
    lengths}: [Some keys] with [keys] in the same order as the input and
    native [int] order equal to z order, or [None] if the array is empty,
    any value is longer than [Zpacked.word_bits], or lengths differ
    (equal-length is what lets the length tiebreak be dropped).  Computed
    once at prepare time by [Range_search] / [Par_range_search] and fed
    to {!range_plain_keys} / {!range_skip_keys}. *)

val word_key : Zpacked.t -> int
(** The word encoding of one narrow value (the scalar behind
    {!uniform_word_keys}); only meaningful for comparing values of equal
    length. *)

val element_keys : total:int -> Zpacked.t -> int * int
(** [(klo, khi)] word keys of a decomposed element's inclusive scan range
    in a space of [total] bits — [pad_to total false] / [pad_to total
    true] without building the padded values.
    @raise Invalid_argument if [total > Zpacked.word_bits] or the element
    is longer than [total]. *)

type sweep_stats = { pairs : int; max_stack : int }
(** [pairs]: emissions; [max_stack]: deepest combined open-element stack
    (measured after each arrival, as [Spatial_join.merge] does). *)

val sweep_pairs :
  comparisons:int ref ->
  Zpacked.t array ->
  Zpacked.t array ->
  (int -> int -> unit) ->
  sweep_stats
(** [sweep_pairs ~comparisons zl zr emit] merges the two {e sorted}
    arrays (ties take the left side, matching a stable sort of
    left-then-right) and sweeps with one open-element stack per side,
    calling [emit li ri] for every containment pair — newest open element
    first, exactly the emission order of the list sweeps. *)

val sweep_pairs_keyed :
  comparisons:int ref -> keyed -> keyed -> (int -> int -> unit) -> sweep_stats
(** {!sweep_pairs} over pre-keyed sides (from {!sort_keyed}): same sweep,
    same counters, no per-call array extraction. *)

val sweep_pairs_stream :
  comparisons:int ref ->
  (unit -> Zpacked.t option) ->
  (unit -> Zpacked.t option) ->
  (int -> int -> unit) ->
  sweep_stats
(** {!sweep_pairs} over pull-based sorted sources — each call to a
    source yields the next z value or [None] at the end, so compressed
    representations (e.g. {!Zrun} cursors via [Zseq.pairs_runs]) join
    without materializing flat arrays first.  [emit] receives 0-based
    arrival ordinals per side, which coincide with array indices when
    the source reads an array.  Same emission order and counters as
    {!sweep_pairs}. *)

val lower_bound :
  comparisons:int ref -> Zpacked.t array -> lo:int -> hi:int -> Zpacked.t -> int
(** First index in [\[lo, hi)] with [zs.(i) >= z] (binary search; one
    counted comparison per probe). *)

type range = { rlo : Zpacked.t; rhi : Zpacked.t }
(** One decomposed query element as its inclusive z scan range
    ([pad_to total false] / [pad_to total true]). *)

type range_counters = {
  point_steps : int;
  element_steps : int;
  point_jumps : int;
  element_jumps : int;
  comparisons : int;
}

val range_plain : Zpacked.t array -> range array -> (int -> unit) -> range_counters
(** Figure 5's plain two-sequence merge over the sorted point z array and
    the ascending range array; [emit i] is called for each reported point
    index, in ascending order.  Counter-for-counter identical to
    [Range_search.search_plain_reference]. *)

val range_skip :
  ?i0:int -> ?i1:int -> Zpacked.t array -> range array -> (int -> unit) -> range_counters
(** The skip variant: binary-search jumps over the point slice
    [\[i0, i1)] (default: the whole array) instead of stepping, exactly
    mirroring [Range_search.search_skip_reference] /
    [Par_range_search.merge_slice]. *)

type key_ranges = { klo : int array; khi : int array }
(** The ascending scan ranges of a query, as word keys (built per query
    with {!element_keys} / {!word_key} — two flat int arrays instead of
    an array of packed pairs).  Point z values all share one narrow
    length and range bounds are padded to that same length, so in the
    merges below word order alone decides every comparison. *)

val range_plain_keys : int array -> key_ranges -> (int -> unit) -> range_counters
(** {!range_plain} in the narrow encoding: same control flow, same
    counters, every comparison one machine-word comparison.  The first
    argument is {!uniform_word_keys} of the sorted point array. *)

val range_skip_keys :
  ?i0:int -> ?i1:int -> int array -> key_ranges -> (int -> unit) -> range_counters
(** {!range_skip} in the narrow encoding; arguments as in
    {!range_plain_keys}. *)
