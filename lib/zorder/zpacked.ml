(* Packed z values: [len] bits, bit i stored MSB-first at bit (62 - i) of
   [w0] for i < 63 and at bit (125 - i) of [w1] for 63 <= i < 126.
   Invariant: every bit at position >= len is zero, so whole-word
   arithmetic never sees garbage. *)

type t = { len : int; w0 : int; w1 : int }

let word_bits = 63
let max_bits = 2 * word_bits

let empty = { len = 0; w0 = 0; w1 = 0 }

let length t = t.len

(* Top-[n] bits of a 63-bit word, 0 <= n <= 63.  [lsl] by 63 is
   unspecified in OCaml, hence the guard. *)
let mask_first n = if n = 0 then 0 else -1 lsl (word_bits - n)

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Zpacked.get";
  if i < word_bits then (t.w0 lsr (62 - i)) land 1 = 1
  else (t.w1 lsr (125 - i)) land 1 = 1

(* The sign bit of a word is a data bit (z bit 0 / 63), so order compares
   must be unsigned. *)
let ucmp (a : int) (b : int) =
  (* Flipping the sign bit turns unsigned order into signed order. *)
  let a = a lxor min_int and b = b lxor min_int in
  if a < b then -1 else if a > b then 1 else 0

(* Zero-padding both values to 126 bits preserves their relative
   lexicographic order except for exact-prefix pairs, where the padded
   words tie and the shorter (the prefix, which sorts first) wins on
   [len].  The invariant gives us the padded words for free. *)
let compare a b =
  let c = ucmp a.w0 b.w0 in
  if c <> 0 then c
  else
    let c = ucmp a.w1 b.w1 in
    if c <> 0 then c else Stdlib.compare a.len b.len

let equal a b = a.len = b.len && a.w0 = b.w0 && a.w1 = b.w1

let is_prefix p t =
  p.len <= t.len
  &&
  if p.len <= word_bits then (p.w0 lxor t.w0) land mask_first p.len = 0
  else
    p.w0 = t.w0 && (p.w1 lxor t.w1) land mask_first (p.len - word_bits) = 0

let contains = is_prefix

(* Index of the highest set bit (0-based from the LSB); [x <> 0].  Works
   on words with the sign bit set because [lsr] is a logical shift. *)
let floor_log2 x =
  let n = ref 0 and x = ref x in
  if !x lsr 32 <> 0 then begin n := !n + 32; x := !x lsr 32 end;
  if !x lsr 16 <> 0 then begin n := !n + 16; x := !x lsr 16 end;
  if !x lsr 8 <> 0 then begin n := !n + 8; x := !x lsr 8 end;
  if !x lsr 4 <> 0 then begin n := !n + 4; x := !x lsr 4 end;
  if !x lsr 2 <> 0 then begin n := !n + 2; x := !x lsr 2 end;
  if !x lsr 1 <> 0 then incr n;
  !n

let common_prefix_len a b =
  let m = if a.len <= b.len then a.len else b.len in
  let d0 = a.w0 lxor b.w0 in
  if d0 <> 0 then min m (62 - floor_log2 d0)
  else
    let d1 = a.w1 lxor b.w1 in
    if d1 <> 0 then min m (word_bits + 62 - floor_log2 d1) else m

let pad_to t n b =
  if n < t.len then invalid_arg "Zpacked.pad_to: shorter than the value";
  if n > max_bits then invalid_arg "Zpacked.pad_to: beyond max_bits";
  if not b then { t with len = n }
  else
    (* Set bits [len, n): per word, top-n-bits minus top-len-bits. *)
    let w0 =
      t.w0 lor (mask_first (min n word_bits) lxor mask_first (min t.len word_bits))
    in
    let w1 =
      t.w1
      lor (mask_first (max 0 (n - word_bits))
          lxor mask_first (max 0 (t.len - word_bits)))
    in
    { len = n; w0; w1 }

(* Bytewise packing: storage byte k holds string bits [8k .. 8k+7]
   MSB-first, so each byte lands with one shift.  Byte 7 straddles the
   w0/w1 boundary (bits 56..62 end w0, bit 63 starts w1); byte 15's two
   low bits would be string bits 126/127, which cannot exist (len <= 126)
   and read as zero by the Bitstring invariant. *)
let of_bitstring b =
  let len = Bitstring.length b in
  if len > max_bits then None
  else begin
    let w0 = ref 0 and w1 = ref 0 in
    for k = 0 to ((len + 7) / 8) - 1 do
      let v = Bitstring.byte b k in
      if k < 7 then w0 := !w0 lor (v lsl (55 - (8 * k)))
      else if k = 7 then begin
        w0 := !w0 lor (v lsr 1);
        w1 := !w1 lor ((v land 1) lsl 62)
      end
      else if k < 15 then w1 := !w1 lor (v lsl (118 - (8 * k)))
      else w1 := !w1 lor (v lsr 2)
    done;
    Some { len; w0 = !w0; w1 = !w1 }
  end

exception Too_long

let pack_array bs =
  match
    Array.map
      (fun b -> match of_bitstring b with Some p -> p | None -> raise Too_long)
      bs
  with
  | packed -> Some packed
  | exception Too_long -> None

let to_bitstring t = Bitstring.init t.len (fun i -> get t i)

let fits_space space = Space.total_bits space <= max_bits

let check_coords space coords =
  let k = Space.dims space in
  if Array.length coords <> k then
    invalid_arg "Zpacked.shuffle: wrong number of coordinates";
  Array.iter
    (fun c ->
      if not (Space.valid_coord space c) then
        invalid_arg "Zpacked.shuffle: coordinate out of range")
    coords

let shuffle space coords =
  check_coords space coords;
  if not (fits_space space) then invalid_arg "Zpacked.shuffle: space too deep";
  let k = Space.dims space and d = Space.depth space in
  let total = k * d in
  let w0 = ref 0 and w1 = ref 0 in
  for j = 0 to total - 1 do
    let axis = j mod k and bit = j / k in
    (* bit 0 is the most significant of the d coordinate bits *)
    let b = (coords.(axis) lsr (d - 1 - bit)) land 1 in
    if j < word_bits then w0 := !w0 lor (b lsl (62 - j))
    else w1 := !w1 lor (b lsl (125 - j))
  done;
  { len = total; w0 = !w0; w1 = !w1 }

let unshuffle space t =
  let k = Space.dims space in
  if t.len > Space.total_bits space then
    invalid_arg "Zpacked.unshuffle: z value too long for space";
  let prefixes = Array.make k (0, 0) in
  for j = 0 to t.len - 1 do
    let axis = j mod k in
    let v, len = prefixes.(axis) in
    let b =
      if j < word_bits then (t.w0 lsr (62 - j)) land 1
      else (t.w1 lsr (125 - j)) land 1
    in
    prefixes.(axis) <- ((v lsl 1) lor b, len + 1)
  done;
  prefixes

let take t n =
  if n < 0 || n > t.len then invalid_arg "Zpacked.take";
  {
    len = n;
    w0 = t.w0 land mask_first (min n word_bits);
    w1 = t.w1 land mask_first (max 0 (n - word_bits));
  }

(* Bit [i] of the value, as 0/1, without the bounds check of [get]. *)
let bit t i =
  if i < word_bits then (t.w0 lsr (62 - i)) land 1 else (t.w1 lsr (125 - i)) land 1

let suffix_bytes t ~pos =
  if pos < 0 || pos > t.len then invalid_arg "Zpacked.suffix_bytes";
  let nbits = t.len - pos in
  let out = Bytes.make ((nbits + 7) / 8) '\000' in
  for i = 0 to nbits - 1 do
    if bit t (pos + i) = 1 then
      Bytes.set_uint8 out (i / 8)
        (Bytes.get_uint8 out (i / 8) lor (0x80 lsr (i mod 8)))
  done;
  Bytes.unsafe_to_string out

let append_bytes t ~bytes ~pos ~nbits =
  if nbits < 0 || t.len + nbits > max_bits then invalid_arg "Zpacked.append_bytes";
  if pos < 0 || pos + ((nbits + 7) / 8) > String.length bytes then
    invalid_arg "Zpacked.append_bytes: bytes too short";
  let w0 = ref t.w0 and w1 = ref t.w1 in
  for i = 0 to nbits - 1 do
    let b = (Char.code bytes.[pos + (i / 8)] lsr (7 - (i mod 8))) land 1 in
    if b = 1 then begin
      let j = t.len + i in
      if j < word_bits then w0 := !w0 lor (1 lsl (62 - j))
      else w1 := !w1 lor (1 lsl (125 - j))
    end
  done;
  { len = t.len + nbits; w0 = !w0; w1 = !w1 }

let hash t = Hashtbl.hash (t.len, t.w0, t.w1)

let pp ppf t =
  if t.len = 0 then Format.pp_print_string ppf "<>"
  else
    for i = 0 to t.len - 1 do
      Format.pp_print_char ppf (if get t i then '1' else '0')
    done
