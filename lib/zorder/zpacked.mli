(** Fixed-width packed z values.

    A z value (Section 3.1 of the paper) is a variable-length bitstring;
    {!Bitstring} stores one byte-at-a-time in a [Bytes.t].  This module is
    the hot-path representation: the same bitstring packed into an
    unboxed-friendly record of a length plus {e two 63-bit words}, covering
    z values up to {!max_bits} = 126 bits — more than any 2-D,
    31-bits-per-axis space ever produces.  Bit [i] of the bitstring
    (MSB-first, [0 <= i < len]) lives at bit [62 - i] of [w0] for [i < 63]
    and at bit [125 - i] of [w1] otherwise; bits at positions [>= len] are
    kept zero, which makes order and prefix tests pure word arithmetic:

    {v
      z value   b0 b1 ... b62 | b63 ... b125
                ^ MSB of w0     ^ MSB of w1
      compare   unsigned w0, then unsigned w1, then length
      prefix    (w lxor w') masked to the prefix length = 0
    v}

    [compare], [is_prefix], [common_prefix_len] and friends are
    allocation-free.  Callers whose space exceeds 126 bits keep using the
    [Bitstring] path — {!of_bitstring} and {!pack_array} return [None] so
    the fallback is explicit and total; the two representations agree
    bit-for-bit wherever both apply (property-tested in
    [test/test_zpacked.ml]). *)

type t = private { len : int; w0 : int; w1 : int }
(** Exposed (read-only) so the flat kernels in {!Zkernel} can inline word
    access; construct only through the functions below, which maintain the
    bits-beyond-[len]-are-zero invariant. *)

val word_bits : int
(** 63: bits per word.  Values no longer than this live entirely in [w0]
    — the {!Zkernel} loops specialise on it ("narrow" values compare with
    a single machine-word comparison). *)

val max_bits : int
(** 126: the longest representable z value. *)

(** {1 Construction} *)

val empty : t

val of_bitstring : Bitstring.t -> t option
(** Lossless packing; [None] iff [Bitstring.length b > max_bits]. *)

val pack_array : Bitstring.t array -> t array option
(** Pack every element or — if any is longer than {!max_bits} — none
    ([None] tells the caller to stay on the reference path). *)

val to_bitstring : t -> Bitstring.t
(** Inverse of {!of_bitstring}: [to_bitstring (of_bitstring b) = b]. *)

(** {1 Observation} *)

val length : t -> int

val get : t -> int -> bool
(** @raise Invalid_argument if the index is out of bounds. *)

(** {1 Order and containment} *)

val compare : t -> t -> int
(** Lexicographic order, proper prefixes first — identical to
    {!Bitstring.compare} on the unpacked values.  Three word compares, no
    allocation, no loop. *)

val equal : t -> t -> bool

val is_prefix : t -> t -> bool
(** [is_prefix p t] iff [p] is a (non-strict) prefix of [t]; one masked
    xor per word. *)

val contains : t -> t -> bool
(** Element containment = prefix testing (Proposition 1): alias of
    {!is_prefix}. *)

val common_prefix_len : t -> t -> int
(** Length of the longest common prefix, via count-leading-zeros on the
    xor of the words. *)

val pad_to : t -> int -> bool -> t
(** [pad_to t n b] appends copies of [b] until the length is [n] — the
    packed analogue of {!Bitstring.pad_to}, used to turn a decomposed
    element into its \[zlo, zhi\] scan range in O(1).
    @raise Invalid_argument if [n < length t] or [n > max_bits]. *)

(** {1 Bit surgery}

    The primitives behind {!Zrun}'s front coding: split a value into a
    shared prefix and a byte-packed suffix, and rebuild it from its
    predecessor's prefix plus the stored suffix bytes. *)

val take : t -> int -> t
(** [take t n] is the first [n] bits of [t].
    @raise Invalid_argument unless [0 <= n <= length t]. *)

val suffix_bytes : t -> pos:int -> string
(** Bits [\[pos, length t)] packed MSB-first into bytes (trailing bits of
    the last byte zero) — the stored form of a front-coded suffix.
    @raise Invalid_argument unless [0 <= pos <= length t]. *)

val append_bytes : t -> bytes:string -> pos:int -> nbits:int -> t
(** [append_bytes t ~bytes ~pos ~nbits] appends [nbits] bits read
    MSB-first from [bytes] starting at byte [pos] — the inverse of
    pairing {!take} with {!suffix_bytes}.
    @raise Invalid_argument if the result would exceed {!max_bits} or
    [bytes] is too short. *)

(** {1 Interleaving} *)

val fits_space : Space.t -> bool
(** Whether every z value of the space (up to [total_bits]) packs, i.e.
    [Space.total_bits space <= max_bits].  The fallback rule: operators
    test this once per query/prepare and stay on [Bitstring] when false. *)

val shuffle : Space.t -> int array -> t
(** Bit interleaving straight into the packed words; agrees with
    {!Interleave.shuffle}.
    @raise Invalid_argument on bad coordinates or if the space does not
    satisfy {!fits_space}. *)

val unshuffle : Space.t -> t -> (int * int) array
(** Per-axis [(value, bits)] prefixes; agrees with
    {!Interleave.unshuffle}.
    @raise Invalid_argument if [length t > Space.total_bits space]. *)

(** {1 Misc} *)

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as ["0110"]; the empty string prints as ["<>"] (same
    convention as {!Bitstring.pp}). *)
