let usable space = Space.total_bits space <= 61

let check space =
  if not (usable space) then invalid_arg "Zrange: space deeper than 61 total bits"

let of_element space e =
  check space;
  let total = Space.total_bits space in
  let level = Element.level e in
  let base = Bitstring.to_int (Element.z e) lsl (total - level) in
  (base, base lor ((1 lsl (total - level)) - 1))

let to_element space ~lo ~hi =
  check space;
  let total = Space.total_bits space in
  let extent = hi - lo + 1 in
  if lo < 0 || hi >= 1 lsl total || extent <= 0 then None
  else if extent land (extent - 1) <> 0 then None
  else if lo land (extent - 1) <> 0 then None
  else
    let rec log2 acc n = if n = 1 then acc else log2 (acc + 1) (n lsr 1) in
    let s = log2 0 extent in
    Some (Bitstring.of_int (lo lsr s) ~width:(total - s))

let check_interval space ~lo ~hi =
  check space;
  let total = Space.total_bits space in
  if lo < 0 || lo > hi then invalid_arg "Zrange: bad interval";
  if total < 62 && hi lsr total <> 0 then invalid_arg "Zrange: interval out of space"

(* Greedy buddy decomposition: at position [pos], emit the largest aligned
   block starting at [pos] that does not overshoot [hi]. *)
let fold_cover space ~lo ~hi f init =
  check_interval space ~lo ~hi;
  let total = Space.total_bits space in
  let rec go pos acc =
    if pos > hi then acc
    else begin
      (* Largest s with pos aligned to 2^s and pos + 2^s - 1 <= hi. *)
      let max_align = if pos = 0 then total else
        let rec tz acc n = if n land 1 = 1 then acc else tz (acc + 1) (n lsr 1) in
        tz 0 pos
      in
      let rec fit s = if s > 0 && (s > max_align || pos + (1 lsl s) - 1 > hi) then fit (s - 1) else s in
      let s = fit (min max_align total) in
      let e = Bitstring.of_int (pos lsr s) ~width:(total - s) in
      go (pos + (1 lsl s)) (f acc e)
    end
  in
  go lo init

let cover space ~lo ~hi = List.rev (fold_cover space ~lo ~hi (fun acc e -> e :: acc) [])

let cover_count space ~lo ~hi = fold_cover space ~lo ~hi (fun n _ -> n + 1) 0

let elements_to_intervals space elements =
  let ranges = List.map (of_element space) elements in
  let rec merge = function
    | [] -> []
    | [ r ] -> [ r ]
    | (lo1, hi1) :: ((lo2, hi2) :: rest as tl) ->
        if hi1 + 1 = lo2 then merge ((lo1, hi2) :: rest)
        else if hi1 >= lo2 then invalid_arg "Zrange.elements_to_intervals: overlapping elements"
        else (lo1, hi1) :: merge tl
  in
  merge ranges

let intervals_to_elements space intervals =
  List.concat_map (fun (lo, hi) -> cover space ~lo ~hi) intervals

let total_cells intervals =
  List.fold_left (fun acc (lo, hi) -> acc + (hi - lo + 1)) 0 intervals

(* [intervals] ascending and disjoint; one interval vs the list.  Early
   exit both ways: stop as soon as an interval starts past [hi]. *)
let overlaps_interval intervals ~lo ~hi =
  if lo > hi then invalid_arg "Zrange.overlaps_interval: bad interval";
  let rec go = function
    | [] -> false
    | (l, h) :: rest -> if l > hi then false else h >= lo || go rest
  in
  go intervals

let cover_overlaps space elements ~lo ~hi =
  overlaps_interval (elements_to_intervals space elements) ~lo ~hi
