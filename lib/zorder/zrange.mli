(** Z intervals and canonical element covers.

    For spaces with [total_bits <= 61], full-resolution z values fit in an
    OCaml [int]; a set of pixels whose z values form the interval
    [lo, hi] can be represented canonically as the unique minimal list of
    {e aligned} elements (each element's z range is an aligned power-of-two
    block of z values).  This is the bridge between element sequences and
    ordinary interval arithmetic; it underlies the overlay and CCL
    algorithms of Section 6. *)

val usable : Space.t -> bool
(** Whether [Space.total_bits space <= 61]. *)

val of_element : Space.t -> Element.t -> int * int
(** [(zlo, zhi)] of an element, as integers.
    @raise Invalid_argument if the space is not {!usable}. *)

val to_element : Space.t -> lo:int -> hi:int -> Element.t option
(** [Some e] iff [lo, hi] is exactly the z range of an element: i.e.
    [hi - lo + 1] is a power of two and [lo] is aligned to it. *)

val cover : Space.t -> lo:int -> hi:int -> Element.t list
(** The canonical minimal aligned-element cover of the z interval
    [lo, hi], in z order.  [cover (of_element e) = [e]].
    @raise Invalid_argument if [lo > hi] or out of range. *)

val cover_count : Space.t -> lo:int -> hi:int -> int
(** [List.length (cover ...)] without materializing. *)

val elements_to_intervals : Space.t -> Element.t list -> (int * int) list
(** Map a z-ordered disjoint element list to its (merged, maximal)
    disjoint z intervals: adjacent element ranges are coalesced. *)

val intervals_to_elements : Space.t -> (int * int) list -> Element.t list
(** Inverse direction: canonical element cover of each interval,
    concatenated.  Intervals must be disjoint, sorted, non-adjacent. *)

val total_cells : (int * int) list -> int
(** Total number of pixels in a disjoint interval list. *)

val overlaps_interval : (int * int) list -> lo:int -> hi:int -> bool
(** Does the z interval [lo, hi] intersect any interval of the
    (ascending, disjoint) list?  Early-exits once an interval starts
    past [hi] — the shard-routing pruning test.
    @raise Invalid_argument if [lo > hi]. *)

val cover_overlaps : Space.t -> Element.t list -> lo:int -> hi:int -> bool
(** [overlaps_interval] over a z-ordered disjoint element list (e.g. a
    decompose cover): does any element's z range intersect [lo, hi]?
    This is the router's fan-out test — a query box is sent to a shard
    iff its cover overlaps the shard's owned z interval. *)
