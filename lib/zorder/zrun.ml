(* Delta-encoded runs of packed z values: LevelDB-style front coding
   adapted to bit-granular z values.  See zrun.mli for the format. *)

module P = Zpacked

type t = {
  data : string;
  off : int;            (* absolute offset of the header in [data] *)
  body : int;           (* absolute offset of the first entry *)
  stop : int;           (* absolute offset one past the last entry *)
  count : int;
  interval : int;
  fixed : int option;   (* all values share this length; lengths elided *)
  n_restarts : int;
}

let flag_fixed = 0x01

let header_bytes n_restarts = 7 + (2 * n_restarts)

let count t = t.count

let byte_length t = t.stop - t.off

let restart_interval t = t.interval

let to_string t = String.sub t.data t.off (t.stop - t.off)

let fixed_len t = t.fixed

let err fmt = Printf.ksprintf (fun s -> invalid_arg ("Zrun: " ^ s)) fmt

let key_bytes len = (len + 7) / 8

(* {1 Encoding} *)

let encode ?(restart_interval = 16) ?fixed_len zs =
  let n = Array.length zs in
  if n > 0xFFFF then err "run of %d values (max 65535)" n;
  if restart_interval < 1 || restart_interval > 0xFF then
    err "restart interval %d out of [1, 255]" restart_interval;
  (match fixed_len with
  | None -> ()
  | Some l ->
      if l < 0 || l > P.max_bits then err "fixed length %d out of range" l;
      Array.iter
        (fun z ->
          if P.length z <> l then
            err "fixed-length run: value of length %d, expected %d" (P.length z) l)
        zs);
  let n_restarts = if n = 0 then 0 else ((n - 1) / restart_interval) + 1 in
  let body = Buffer.create 256 in
  let restarts = Array.make n_restarts 0 in
  let variable = fixed_len = None in
  for i = 0 to n - 1 do
    let z = zs.(i) in
    let len = P.length z in
    if i mod restart_interval = 0 then begin
      restarts.(i / restart_interval) <- Buffer.length body;
      if variable then Buffer.add_uint8 body len;
      Buffer.add_string body (P.suffix_bytes z ~pos:0)
    end
    else begin
      let shared = P.common_prefix_len zs.(i - 1) z in
      Buffer.add_uint8 body shared;
      if variable then Buffer.add_uint8 body len;
      Buffer.add_string body (P.suffix_bytes z ~pos:shared)
    end
  done;
  let out = Buffer.create (header_bytes n_restarts + Buffer.length body) in
  Buffer.add_uint8 out (if variable then 0 else flag_fixed);
  Buffer.add_uint8 out (match fixed_len with Some l -> l | None -> 0);
  Buffer.add_uint8 out restart_interval;
  Buffer.add_uint16_be out n;
  Buffer.add_uint16_be out n_restarts;
  Array.iter
    (fun r ->
      if r > 0xFFFF then err "run body too large for 16-bit restart offsets";
      Buffer.add_uint16_be out r)
    restarts;
  Buffer.add_buffer out body;
  let data = Buffer.contents out in
  {
    data;
    off = 0;
    body = header_bytes n_restarts;
    stop = String.length data;
    count = n;
    interval = restart_interval;
    fixed = fixed_len;
    n_restarts;
  }

(* {1 Parsing} *)

let u8 s i = Char.code s.[i]

let u16 s i = (u8 s i lsl 8) lor u8 s (i + 1)

let of_string ?(pos = 0) ?len data =
  let stop =
    match len with Some l -> pos + l | None -> String.length data
  in
  if pos < 0 || stop > String.length data || stop - pos < 7 then
    err "truncated run header";
  let flags = u8 data pos in
  let fixed = if flags land flag_fixed <> 0 then Some (u8 data (pos + 1)) else None in
  let interval = u8 data (pos + 2) in
  let count = u16 data (pos + 3) in
  let n_restarts = u16 data (pos + 5) in
  if flags land lnot flag_fixed <> 0 then err "unknown run flags 0x%02x" flags;
  if interval < 1 then err "zero restart interval";
  let expected_restarts = if count = 0 then 0 else ((count - 1) / interval) + 1 in
  if n_restarts <> expected_restarts then
    err "restart count %d inconsistent with %d values at interval %d" n_restarts
      count interval;
  let body = pos + header_bytes n_restarts in
  if body > stop then err "truncated restart table";
  { data; off = pos; body; stop; count; interval; fixed; n_restarts }

let restart_offset t r =
  if r < 0 || r >= t.n_restarts then err "restart index %d out of range" r;
  u16 t.data (t.off + 7 + (2 * r))

(* {1 Decoding} *)

type cursor = {
  run : t;
  mutable idx : int;     (* index of the next value *)
  mutable pos : int;     (* absolute offset of the next entry *)
  mutable prev : P.t;    (* last value materialized *)
}

let cursor ?(from = 0) t =
  if from < 0 || from > t.count then err "cursor start %d out of range" from;
  if from <> t.count && from mod t.interval <> 0 then
    err "cursor start %d is not a restart point" from;
  let pos =
    if from = t.count then t.stop else t.body + restart_offset t (from / t.interval)
  in
  { run = t; idx = from; pos; prev = P.empty }

let cursor_index c = c.idx

let next c =
  let t = c.run in
  if c.idx >= t.count then None
  else begin
    let need n =
      if c.pos + n > t.stop then err "entry %d runs past the end of the run" c.idx
    in
    let at_restart = c.idx mod t.interval = 0 in
    let shared =
      if at_restart then 0
      else begin
        need 1;
        let s = u8 t.data c.pos in
        c.pos <- c.pos + 1;
        s
      end
    in
    let len =
      match t.fixed with
      | Some l -> l
      | None ->
          need 1;
          let l = u8 t.data c.pos in
          c.pos <- c.pos + 1;
          l
    in
    if len > P.max_bits then err "entry %d: length %d beyond max_bits" c.idx len;
    if shared > len then err "entry %d: shared prefix %d > length %d" c.idx shared len;
    if (not at_restart) && shared > P.length c.prev then
      err "entry %d: shared prefix %d longer than predecessor" c.idx shared;
    let nbytes = key_bytes (len - shared) in
    need nbytes;
    let z =
      P.append_bytes (P.take c.prev shared) ~bytes:t.data ~pos:c.pos
        ~nbits:(len - shared)
    in
    c.pos <- c.pos + nbytes;
    c.prev <- z;
    c.idx <- c.idx + 1;
    Some z
  end

let decode t =
  let c = cursor t in
  Array.init t.count (fun _ ->
      match next c with Some z -> z | None -> assert false)

let get t i =
  if i < 0 || i >= t.count then err "index %d out of range" i;
  let c = cursor ~from:(i / t.interval * t.interval) t in
  let z = ref P.empty in
  for _ = i / t.interval * t.interval to i do
    match next c with Some v -> z := v | None -> assert false
  done;
  !z

(* Decode just the full key stored at restart [r] (no predecessor needed). *)
let restart_key t r =
  let pos = t.body + restart_offset t r in
  let len, pos =
    match t.fixed with
    | Some l -> (l, pos)
    | None ->
        if pos >= t.stop then err "restart %d past the end of the run" r;
        (u8 t.data pos, pos + 1)
  in
  if pos + key_bytes len > t.stop then err "restart %d runs past the end" r;
  P.append_bytes P.empty ~bytes:t.data ~pos ~nbits:len

let lower_bound t z =
  if t.count = 0 then 0
  else begin
    (* First restart whose key is >= z. *)
    let lo = ref 0 and hi = ref t.n_restarts in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if P.compare (restart_key t mid) z < 0 then lo := mid + 1 else hi := mid
    done;
    (* The answer lies in the restart block before [!lo] (a value >= z can
       only appear from that block's restart on). *)
    let start = if !lo = 0 then 0 else (!lo - 1) * t.interval in
    let c = cursor ~from:start t in
    let rec scan () =
      match next c with
      | None -> t.count
      | Some v -> if P.compare v z >= 0 then c.idx - 1 else scan ()
    in
    scan ()
  end

let raw_bytes t =
  let variable = t.fixed = None in
  let c = cursor t in
  let total = ref 0 in
  let rec go () =
    match next c with
    | None -> !total
    | Some z ->
        total := !total + (if variable then 1 else 0) + key_bytes (P.length z);
        go ()
  in
  go ()

let validate t =
  (* Walk every entry; on top of the per-entry checks [next] performs,
     confirm each restart offset lands exactly where the walk does and
     that the body is consumed exactly. *)
  match
    let c = cursor t in
    let rec go () =
      if c.idx < t.count then begin
        if c.idx mod t.interval = 0 then begin
          let expect = t.body + restart_offset t (c.idx / t.interval) in
          if c.pos <> expect then
            err "restart %d points at %d, entries end at %d" (c.idx / t.interval)
              (expect - t.body) (c.pos - t.body)
        end;
        ignore (next c);
        go ()
      end
    in
    go ();
    if c.pos <> t.stop then
      err "%d trailing byte(s) after the last entry" (t.stop - c.pos)
  with
  | () -> Ok ()
  | exception Invalid_argument msg -> Error msg
