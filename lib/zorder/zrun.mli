(** Delta-encoded (front-coded) runs of packed z values.

    Z-order clusters nearby points onto nearby keys, so consecutive
    sorted z values share long common prefixes — on the standard seeded
    workload the average shared prefix between neighbors is ~12 of 20
    bits.  A run stores the values in sorted (or any caller-chosen)
    order, the first of each {e restart block} whole and every other as
    [(shared-prefix-length, suffix-bytes)] against its predecessor.
    Restart points every [restart_interval] entries bound the decode
    chain, so point lookups and {!lower_bound} stay logarithmic over
    restarts plus a short linear tail — the classic LevelDB block
    layout, adapted to bit-granular keys via {!Zpacked.take} /
    {!Zpacked.suffix_bytes} / {!Zpacked.append_bytes}.

    Serialized layout (all integers big-endian):
    {v
      u8  flags              bit 0: fixed-length mode
      u8  fixed_len          value length in bits (0 unless fixed)
      u8  restart_interval
      u16 count
      u16 n_restarts         = ceil(count / interval)
      u16 x n_restarts       body offset of each restart entry
      body:
        restart entry        [len:u8 if variable] key bytes (MSB-first)
        delta entry          shared:u8 [len:u8 if variable] suffix bytes
    v}

    In {e fixed-length mode} every value has the same bit length
    (the common case: full-resolution keys are always
    [Space.total_bits] long), so per-entry length bytes are elided —
    this is what pushes the compression ratio past the 1.5x bar.

    Consumers: v3 {!Sqp_btree.Persist} data pages, [Live] checkpoint
    base chunks, and the [Zseq] run representation feeding the
    {!Zkernel} streaming sweeps. *)

type t
(** An immutable parsed run; a view into its backing string. *)

(** {1 Encoding} *)

val encode : ?restart_interval:int -> ?fixed_len:int -> Zpacked.t array -> t
(** Front-code the values in the order given.  [restart_interval]
    defaults to 16 and must be in [\[1, 255\]]; pass [fixed_len] when
    every value has exactly that bit length to elide per-entry lengths.
    @raise Invalid_argument on more than 65535 values, a length
    mismatch in fixed mode, or a body too large for 16-bit restart
    offsets. *)

val to_string : t -> string
(** The serialized bytes, self-contained (header included). *)

val of_string : ?pos:int -> ?len:int -> string -> t
(** Parse a run serialized at [pos] (default 0) spanning [len] bytes
    (default: to the end of the string).  Validates the header and
    restart-table shape only — use {!validate} for a full structural
    walk (fsck does).
    @raise Invalid_argument on a malformed header. *)

(** {1 Observation} *)

val count : t -> int

val byte_length : t -> int
(** Total serialized size, header included. *)

val restart_interval : t -> int

val fixed_len : t -> int option

val raw_bytes : t -> int
(** Bytes the same values would occupy without front coding
    ([ceil(len/8)] per value, plus a length byte each in variable
    mode) — the numerator of the compression ratio. *)

(** {1 Decoding} *)

val decode : t -> Zpacked.t array
(** Materialize every value. *)

val get : t -> int -> Zpacked.t
(** Decode the value at an index, walking from the nearest restart.
    @raise Invalid_argument if out of range. *)

val lower_bound : t -> Zpacked.t -> int
(** Index of the first value [>= z] in {!Zpacked.compare} order
    ([count] if none) — meaningful only on sorted runs.  Binary search
    over restart keys, then a linear walk within one block. *)

type cursor
(** A forward iterator that materializes one value at a time — the
    kernels' lazy read path; O(1) state, no array allocation. *)

val cursor : ?from:int -> t -> cursor
(** Start at value [from] (default 0), which must be a restart point
    (a multiple of the interval) or [count]. *)

val cursor_index : cursor -> int
(** Index of the next value {!next} will return. *)

val next : cursor -> Zpacked.t option
(** The next value, or [None] past the end.
    @raise Invalid_argument on a corrupt entry (truncated suffix,
    shared prefix longer than the predecessor, ...). *)

(** {1 Integrity} *)

val validate : t -> (unit, string) result
(** Decode every entry, checking each restart offset lands exactly on
    an entry boundary and the body is consumed exactly — the fsck-side
    deep check for v3 pages. *)
