(* Admission-control unit tests: shedding at queue overflow, deadline
   expiry freeing the queue slot, queued callers admitted on release,
   drain semantics, and the metrics the layer records. *)

module A = Sqp_server.Admission
module M = Sqp_obs.Metrics

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let outcome_name = function
  | A.Admitted -> "admitted"
  | A.Shed -> "shed"
  | A.Timed_out -> "timed_out"
  | A.Draining -> "draining"

let check_outcome what expected got =
  Alcotest.(check string) what (outcome_name expected) (outcome_name got)

(* Spin until [cond] holds (bounded; these tests use real threads). *)
let eventually ?(timeout = 5.0) cond =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if cond () then true
    else if Unix.gettimeofday () -. t0 > timeout then false
    else (
      Thread.delay 0.002;
      go ())
  in
  go ()

let counter_of m name = M.counter_value (M.counter m name)

let test_basic_slot_cycle () =
  let m = M.create () in
  let t = A.create ~metrics:m ~max_in_flight:2 ~max_queue:4 () in
  check_outcome "first" A.Admitted (A.acquire t);
  check_outcome "second" A.Admitted (A.acquire t);
  checki "in flight" 2 (A.in_flight t);
  A.release t;
  A.release t;
  checki "released" 0 (A.in_flight t);
  checki "gauge tracks" 0 (M.gauge_value (M.gauge m "server.in_flight"))

let test_shed_when_queue_full () =
  let m = M.create () in
  let t = A.create ~metrics:m ~max_in_flight:1 ~max_queue:0 () in
  check_outcome "holder" A.Admitted (A.acquire t);
  (* queue capacity 0: a busy slot means immediate shedding *)
  check_outcome "shed" A.Shed (A.acquire t);
  check_outcome "shed again" A.Shed (A.acquire t);
  checki "shed counter" 2 (counter_of m "server.shed");
  A.release t;
  check_outcome "after release" A.Admitted (A.acquire t);
  A.release t

let test_queued_caller_admitted_on_release () =
  let t = A.create ~max_in_flight:1 ~max_queue:2 () in
  check_outcome "holder" A.Admitted (A.acquire t);
  let outcome = ref None in
  let th = Thread.create (fun () -> outcome := Some (A.acquire t)) () in
  checkb "waiter queued" true (eventually (fun () -> A.queued t = 1));
  (* a third caller overflows the queue only at capacity; here it queues *)
  A.release t;
  Thread.join th;
  (match !outcome with
  | Some o -> check_outcome "waiter" A.Admitted o
  | None -> Alcotest.fail "waiter never returned");
  checki "slot transferred" 1 (A.in_flight t);
  checki "queue empty" 0 (A.queued t);
  A.release t

let test_deadline_expiry_frees_queue_slot () =
  let m = M.create () in
  let t = A.create ~metrics:m ~max_in_flight:1 ~max_queue:3 () in
  check_outcome "holder" A.Admitted (A.acquire t);
  let deadline = Unix.gettimeofday () +. 0.05 in
  let outcome = A.acquire ~deadline t in
  check_outcome "expired in queue" A.Timed_out outcome;
  checki "queue slot freed" 0 (A.queued t);
  checki "timeout counter" 1 (counter_of m "server.timeouts");
  (* queue-wait histogram saw the wait *)
  (match List.assoc_opt "server.queue_wait_us" (M.snapshot m) with
  | Some (M.Histogram_v { count; _ }) -> checki "queue wait observed" 1 count
  | _ -> Alcotest.fail "queue wait histogram missing");
  A.release t;
  check_outcome "slot still usable" A.Admitted (A.acquire t);
  A.release t

let test_drain () =
  let t = A.create ~max_in_flight:2 ~max_queue:2 () in
  check_outcome "holder" A.Admitted (A.acquire t);
  checkb "not draining yet" false (A.draining t);
  A.begin_drain t;
  A.begin_drain t (* idempotent *);
  checkb "draining" true (A.draining t);
  check_outcome "rejected during drain" A.Draining (A.acquire t);
  let drained = ref false in
  let th =
    Thread.create
      (fun () ->
        A.await_drain t;
        drained := true)
      ()
  in
  Thread.delay 0.03;
  checkb "await blocks while in flight" false !drained;
  A.release t;
  Thread.join th;
  checkb "await returns after last release" true !drained;
  checki "empty" 0 (A.in_flight t)

let test_queued_caller_sees_drain () =
  let t = A.create ~max_in_flight:1 ~max_queue:2 () in
  check_outcome "holder" A.Admitted (A.acquire t);
  let outcome = ref None in
  let th = Thread.create (fun () -> outcome := Some (A.acquire t)) () in
  Alcotest.(check bool) "queued" true (eventually (fun () -> A.queued t = 1));
  A.begin_drain t;
  Thread.join th;
  (match !outcome with
  | Some o -> check_outcome "queued caller" A.Draining o
  | None -> Alcotest.fail "queued caller never returned");
  A.release t;
  A.await_drain t

let test_with_slot () =
  let t = A.create ~max_in_flight:1 ~max_queue:0 () in
  (match A.with_slot t (fun () -> 41 + 1) with
  | Ok n -> checki "ran" 42 n
  | Error o -> Alcotest.failf "unexpected %s" (outcome_name o));
  checki "released after run" 0 (A.in_flight t);
  (* exceptions still release the slot *)
  (try ignore (A.with_slot t (fun () -> failwith "boom")) with Failure _ -> ());
  checki "released after raise" 0 (A.in_flight t);
  check_outcome "holder" A.Admitted (A.acquire t);
  (match A.with_slot t (fun () -> ()) with
  | Error A.Shed -> ()
  | _ -> Alcotest.fail "expected Shed");
  A.release t

let test_create_validation () =
  (try
     ignore (A.create ~max_in_flight:0 ~max_queue:1 ());
     Alcotest.fail "max_in_flight 0 accepted"
   with Invalid_argument _ -> ());
  try
    ignore (A.create ~max_in_flight:1 ~max_queue:(-1) ());
    Alcotest.fail "negative queue accepted"
  with Invalid_argument _ -> ()

let test_release_without_acquire () =
  let t = A.create ~max_in_flight:1 ~max_queue:0 () in
  try
    A.release t;
    Alcotest.fail "release without acquire accepted"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "admission"
    [
      ( "admission",
        [
          Alcotest.test_case "slot cycle" `Quick test_basic_slot_cycle;
          Alcotest.test_case "shed on overflow" `Quick test_shed_when_queue_full;
          Alcotest.test_case "queued then admitted" `Quick
            test_queued_caller_admitted_on_release;
          Alcotest.test_case "deadline expiry" `Quick
            test_deadline_expiry_frees_queue_slot;
          Alcotest.test_case "drain" `Quick test_drain;
          Alcotest.test_case "drain rejects queued" `Quick
            test_queued_caller_sees_drain;
          Alcotest.test_case "with_slot" `Quick test_with_slot;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "release guard" `Quick test_release_without_acquire;
        ] );
    ]
