module B = Sqp_zorder.Bitstring
module Ints = Sqp_btree.Bptree.Make (Sqp_btree.Bptree.Int_key)
module Bits = Sqp_btree.Bptree.Make (Sqp_btree.Bptree.Bitstring_key)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let expect_ok t =
  match Ints.check_invariants t with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariant violation: %s" m

let small () = Ints.create ~leaf_capacity:4 ~internal_capacity:4 ()

let test_empty () =
  let t = small () in
  check_int "length" 0 (Ints.length t);
  check "find" true (Ints.find t 5 = None);
  check_int "height" 1 (Ints.height t);
  check_int "leaves" 1 (Ints.leaf_count t);
  check "delete missing" false (Ints.delete t 5);
  expect_ok t

let test_insert_find () =
  let t = small () in
  List.iter (fun k -> Ints.insert t k (k * 10)) [ 5; 3; 8; 1; 9; 2; 7; 4; 6; 0 ];
  expect_ok t;
  check_int "length" 10 (Ints.length t);
  for k = 0 to 9 do
    check "find" true (Ints.find t k = Some (k * 10))
  done;
  check "missing" true (Ints.find t 10 = None);
  check "mem" true (Ints.mem t 5)

let test_sorted_iteration () =
  let t = small () in
  List.iter (fun k -> Ints.insert t k k) [ 50; 30; 80; 10; 90; 20; 70; 40; 60; 0 ];
  Alcotest.(check (list int)) "sorted"
    [ 0; 10; 20; 30; 40; 50; 60; 70; 80; 90 ]
    (List.map fst (Ints.to_list t))

let test_split_growth () =
  let t = small () in
  for k = 0 to 99 do
    Ints.insert t k k
  done;
  expect_ok t;
  check "taller than a leaf" true (Ints.height t > 1);
  check "many leaves" true (Ints.leaf_count t >= 25);
  check_int "length" 100 (Ints.length t)

let test_random_insert_delete () =
  let rng = Sqp_workload.Rng.create ~seed:123 in
  let t = small () in
  let present = Hashtbl.create 64 in
  for _ = 1 to 500 do
    let k = Sqp_workload.Rng.int rng 200 in
    if Sqp_workload.Rng.bool rng then begin
      if not (Hashtbl.mem present k) then begin
        Ints.insert t k k;
        Hashtbl.replace present k ()
      end
    end
    else begin
      let deleted = Ints.delete t k in
      check "delete reflects membership" (Hashtbl.mem present k) deleted;
      Hashtbl.remove present k
    end;
    expect_ok t
  done;
  check_int "final size" (Hashtbl.length present) (Ints.length t);
  (* With distinct keys, rebalancing keeps every leaf at least half full
     (unless the tree is a single leaf). *)
  let pages = Ints.leaf_pages t in
  if List.length pages > 1 then
    List.iter
      (fun (_, keys) -> check "leaf occupancy" true (List.length keys >= 2))
      pages

let test_delete_to_empty () =
  let t = small () in
  for k = 0 to 63 do
    Ints.insert t k k
  done;
  for k = 0 to 63 do
    check "deleted" true (Ints.delete t k);
    expect_ok t
  done;
  check_int "empty" 0 (Ints.length t);
  check_int "height collapsed" 1 (Ints.height t)

let test_duplicates () =
  let t = small () in
  List.iter (fun v -> Ints.insert t 7 v) [ 1; 2; 3 ];
  Ints.insert t 5 0;
  Ints.insert t 9 0;
  expect_ok t;
  check_int "find_all" 3 (List.length (Ints.find_all t 7));
  Alcotest.(check (list int)) "duplicates in insertion order" [ 1; 2; 3 ]
    (Ints.find_all t 7);
  (* More duplicates than a leaf holds: oversized leaf is tolerated. *)
  for v = 4 to 12 do
    Ints.insert t 7 v
  done;
  check_int "all dups" 12 (List.length (Ints.find_all t 7));
  check "delete one" true (Ints.delete t 7);
  check_int "one fewer" 11 (List.length (Ints.find_all t 7))

let test_bulk_load () =
  let t = small () in
  let entries = Array.init 100 (fun i -> (i * 2, i)) in
  Ints.bulk_load t entries;
  expect_ok t;
  check_int "length" 100 (Ints.length t);
  check "even key present" true (Ints.find t 84 = Some 42);
  check "odd key absent" true (Ints.find t 101 = None)

let test_bulk_load_validation () =
  let t = small () in
  Ints.insert t 1 1;
  (match Ints.bulk_load t [| (1, 1) |] with
  | _ -> Alcotest.fail "expected failure on non-empty tree"
  | exception Invalid_argument _ -> ());
  let t2 = small () in
  match Ints.bulk_load t2 [| (2, 0); (1, 0) |] with
  | _ -> Alcotest.fail "expected failure on unsorted input"
  | exception Invalid_argument _ -> ()

let test_bulk_load_fill () =
  let t = Ints.create ~leaf_capacity:10 ~internal_capacity:8 () in
  Ints.bulk_load ~fill:0.5 t (Array.init 100 (fun i -> (i, i)));
  expect_ok t;
  (* fill 0.5 of 10 = 5 per leaf -> 20 leaves. *)
  check_int "leaves" 20 (Ints.leaf_count t)

let test_cursor_seek () =
  let t = small () in
  List.iter (fun k -> Ints.insert t k k) [ 10; 20; 30; 40; 50 ];
  let c = Ints.seek t 25 in
  (match Ints.cursor_peek c with
  | Some (30, _) -> ()
  | _ -> Alcotest.fail "expected 30");
  Ints.cursor_next c;
  (match Ints.cursor_peek c with
  | Some (40, _) -> ()
  | _ -> Alcotest.fail "expected 40");
  (* Seek exact. *)
  let c2 = Ints.seek t 30 in
  (match Ints.cursor_peek c2 with
  | Some (30, _) -> ()
  | _ -> Alcotest.fail "expected exact 30");
  (* Seek past the end. *)
  let c3 = Ints.seek t 99 in
  check "end" true (Ints.cursor_peek c3 = None);
  Ints.cursor_next c3 (* must not raise *)

let test_cursor_full_scan () =
  let t = small () in
  for k = 0 to 63 do
    Ints.insert t (63 - k) k
  done;
  let c = Ints.seek_first t in
  let rec collect acc =
    match Ints.cursor_peek c with
    | None -> List.rev acc
    | Some (k, _) ->
        Ints.cursor_next c;
        collect (k :: acc)
  in
  Alcotest.(check (list int)) "full scan in order" (List.init 64 Fun.id) (collect [])

let test_counters () =
  let t = Ints.create ~leaf_capacity:4 ~internal_capacity:4 () in
  for k = 0 to 63 do
    Ints.insert t k k
  done;
  Ints.reset_counters t;
  ignore (Ints.find t 13);
  let c = Ints.counters t in
  check_int "one leaf read per lookup" 1 c.Ints.leaf_reads;
  check "some internal reads" true (c.Ints.internal_reads >= 1)

let test_leaf_pages_preserve_counters () =
  let t = small () in
  for k = 0 to 63 do
    Ints.insert t k k
  done;
  Ints.reset_counters t;
  let before = (Ints.io_stats t).Sqp_storage.Stats.physical_reads in
  let pages = Ints.leaf_pages t in
  check "pages nonempty" true (List.length pages > 1);
  check_int "no counted reads" 0 (Ints.counters t).Ints.leaf_reads;
  check_int "physical restored" before (Ints.io_stats t).Sqp_storage.Stats.physical_reads;
  (* Keys across pages are sorted and complete. *)
  let all = List.concat_map snd pages in
  Alcotest.(check (list int)) "all keys in order" (List.init 64 Fun.id) all

let test_bitstring_prefix_separators () =
  (* The defining prefix-B+-tree property: separators are as short as the
     shortest distinguishing prefix, never longer than the keys. *)
  let t = Bits.create ~leaf_capacity:4 ~internal_capacity:4 () in
  let keys =
    List.init 64 (fun i -> B.of_int i ~width:12)
  in
  List.iter (fun k -> Bits.insert t k ()) keys;
  (match Bits.check_invariants t with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariants: %s" m);
  check_int "all present" 64 (Bits.length t);
  List.iter (fun k -> check "find" true (Bits.find t k = Some ())) keys

let test_create_validation () =
  List.iter
    (fun f ->
      match f () with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> ignore (Ints.create ~leaf_capacity:1 ~internal_capacity:4 ()));
      (fun () -> ignore (Ints.create ~leaf_capacity:4 ~internal_capacity:2 ()));
    ]

(* {1 Byte-budget (compressed) page model} *)

let mk_budget ?(compressed = true) ?(page_bytes = 256) () =
  {
    Sqp_btree.Bptree.page_bytes;
    compressed;
    entry_overhead = 6;
    fixed_entry_bytes = 4;
  }

(* Sorted, deduplicated z values of seeded points — the workload whose
   shared prefixes front coding is built for. *)
let seeded_keys n =
  let space = Sqp_zorder.Space.make ~dims:2 ~depth:10 in
  let rng = Sqp_workload.Rng.create ~seed:77 in
  let pts = Sqp_workload.Datagen.uniform rng ~side:1024 ~n ~dims:2 in
  let zs = Array.map (Sqp_zorder.Interleave.shuffle space) pts in
  Array.sort B.compare zs;
  let dedup =
    Array.to_list zs
    |> List.fold_left
         (fun acc z ->
           match acc with
           | prev :: _ when B.equal prev z -> acc
           | _ -> z :: acc)
         []
    |> List.rev
  in
  Array.of_list dedup

let test_budget_create_validation () =
  List.iter
    (fun budget ->
      match Bits.create ~budget ~leaf_capacity:4 ~internal_capacity:4 () with
      | _ -> Alcotest.fail "malformed budget should raise"
      | exception Invalid_argument _ -> ())
    [
      mk_budget ~page_bytes:8 ();
      { (mk_budget ()) with entry_overhead = -1 };
      { (mk_budget ()) with fixed_entry_bytes = -1 };
    ];
  let b = mk_budget () in
  let t = Bits.create ~budget:b ~leaf_capacity:4 ~internal_capacity:4 () in
  check "budget accessor" true (Bits.budget t = Some b);
  check "no budget" true (Ints.budget (small ()) = None)

let test_budget_insert_churn () =
  (* The byte model must keep the invariants through ordinary mutation,
     not just bulk builds. *)
  let t = Ints.create ~budget:(mk_budget ~page_bytes:64 ()) ~leaf_capacity:4
      ~internal_capacity:4 ()
  in
  let expect_ok' t =
    match Ints.check_invariants t with
    | Ok () -> ()
    | Error m -> Alcotest.failf "budget invariants: %s" m
  in
  let rng = Sqp_workload.Rng.create ~seed:321 in
  let present = Hashtbl.create 64 in
  for _ = 1 to 600 do
    let k = Sqp_workload.Rng.int rng 300 in
    if Sqp_workload.Rng.int rng 3 > 0 then begin
      if not (Hashtbl.mem present k) then begin
        Ints.insert t k (k * 7);
        Hashtbl.replace present k ()
      end
    end
    else begin
      check "delete reflects membership" (Hashtbl.mem present k)
        (Ints.delete t k);
      Hashtbl.remove present k
    end;
    expect_ok' t
  done;
  check_int "final size" (Hashtbl.length present) (Ints.length t);
  Hashtbl.iter
    (fun k () -> check "find" true (Ints.find t k = Some (k * 7)))
    present

let test_budget_bulk_density () =
  let keys = seeded_keys 3000 in
  let entries = Array.map (fun k -> (k, ())) keys in
  let build compressed =
    let t =
      Bits.create ~budget:(mk_budget ~compressed ()) ~leaf_capacity:4
        ~internal_capacity:4 ()
    in
    Bits.bulk_load t entries;
    (match Bits.check_invariants t with
    | Ok () -> ()
    | Error m -> Alcotest.failf "bulk invariants: %s" m);
    t
  in
  let comp = build true and fixed = build false in
  (* Same contents either way. *)
  check_int "comp length" (Array.length keys) (Bits.length comp);
  check "same keys" true
    (List.for_all2
       (fun (a, ()) (b, ()) -> B.equal a b)
       (Bits.to_list comp) (Bits.to_list fixed));
  (* Front coding packs more entries per leaf, so fewer leaves. *)
  check "denser leaves" true
    (Bits.avg_leaf_entries comp > Bits.avg_leaf_entries fixed);
  check "fewer leaves" true (Bits.leaf_count comp < Bits.leaf_count fixed);
  (* compression_stats is consistent with the direct observations. *)
  (match Bits.compression_stats comp with
  | None -> Alcotest.fail "budget tree must report compression stats"
  | Some c ->
      check_int "stats leaves" (Bits.leaf_count comp) c.Bits.leaves;
      check_int "stats entries" (Bits.length comp) c.Bits.entries;
      check "stats density" true
        (abs_float (c.Bits.avg_entries_per_leaf -. Bits.avg_leaf_entries comp)
        < 1e-9);
      check "ratio above 1" true (c.Bits.ratio > 1.0));
  check "no stats without a budget" true
    (Bits.compression_stats (Bits.create ~leaf_capacity:4 ~internal_capacity:4 ())
    = None)

let test_budget_cursor_scan () =
  let keys = seeded_keys 1000 in
  let t =
    Bits.create ~budget:(mk_budget ()) ~leaf_capacity:4 ~internal_capacity:4 ()
  in
  Bits.bulk_load t (Array.map (fun k -> (k, ())) keys);
  let c = Bits.seek_first t in
  Array.iter
    (fun k ->
      (match Bits.cursor_peek c with
      | Some (k', ()) -> check "scan order" true (B.equal k k')
      | None -> Alcotest.fail "cursor ended early");
      Bits.cursor_next c)
    keys;
  check "exhausted" true (Bits.cursor_peek c = None)

(* Properties *)

let prop_model_check =
  QCheck2.Test.make ~name:"tree = sorted association list (random ops)" ~count:60
    QCheck2.Gen.(list_size (int_bound 150) (pair bool (int_bound 60)))
    (fun ops ->
      let t = Ints.create ~leaf_capacity:4 ~internal_capacity:5 () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (is_insert, k) ->
          if is_insert then begin
            if not (Hashtbl.mem model k) then begin
              Ints.insert t k k;
              Hashtbl.replace model k ()
            end
          end
          else begin
            ignore (Ints.delete t k);
            Hashtbl.remove model k
          end)
        ops;
      let expected = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) model []) in
      Ints.check_invariants t = Ok ()
      && List.map fst (Ints.to_list t) = expected)

let prop_bulk_equals_insert =
  QCheck2.Test.make ~name:"bulk_load = repeated insert" ~count:60
    QCheck2.Gen.(list_size (int_bound 80) (int_bound 1000))
    (fun keys ->
      let keys = List.sort_uniq compare keys in
      let t1 = Ints.create ~leaf_capacity:6 ~internal_capacity:5 () in
      Ints.bulk_load t1 (Array.of_list (List.map (fun k -> (k, k)) keys));
      let t2 = Ints.create ~leaf_capacity:6 ~internal_capacity:5 () in
      List.iter (fun k -> Ints.insert t2 k k) keys;
      Ints.check_invariants t1 = Ok ()
      && Ints.to_list t1 = Ints.to_list t2)

let () =
  Alcotest.run "bptree"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "insert and find" `Quick test_insert_find;
          Alcotest.test_case "sorted iteration" `Quick test_sorted_iteration;
          Alcotest.test_case "splits" `Quick test_split_growth;
          Alcotest.test_case "random insert/delete invariants" `Quick test_random_insert_delete;
          Alcotest.test_case "delete to empty" `Quick test_delete_to_empty;
          Alcotest.test_case "duplicates" `Quick test_duplicates;
          Alcotest.test_case "bulk load" `Quick test_bulk_load;
          Alcotest.test_case "bulk load validation" `Quick test_bulk_load_validation;
          Alcotest.test_case "bulk load fill factor" `Quick test_bulk_load_fill;
          Alcotest.test_case "cursor seek" `Quick test_cursor_seek;
          Alcotest.test_case "cursor full scan" `Quick test_cursor_full_scan;
          Alcotest.test_case "access counters" `Quick test_counters;
          Alcotest.test_case "leaf_pages side-effect free" `Quick test_leaf_pages_preserve_counters;
          Alcotest.test_case "bitstring prefix separators" `Quick test_bitstring_prefix_separators;
          Alcotest.test_case "create validation" `Quick test_create_validation;
        ] );
      ( "byte budget",
        [
          Alcotest.test_case "create validation" `Quick
            test_budget_create_validation;
          Alcotest.test_case "insert/delete churn" `Quick
            test_budget_insert_churn;
          Alcotest.test_case "bulk density vs fixed-width" `Quick
            test_budget_bulk_density;
          Alcotest.test_case "cursor scan" `Quick test_budget_cursor_scan;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_model_check; prop_bulk_equals_insert ] );
    ]
