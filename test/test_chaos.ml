(* Chaos torture for the serving stack.

   The heart is a differential: concurrent clients drive a mixed
   mutation/read workload through a real loopback server whose sockets
   suffer seeded faults — EINTR, short transfers, injected latency, and
   mid-frame connection resets — while each client transparently
   reconnects and retries under its idempotency keys.  Every client
   works a disjoint stripe of the grid, so the final table state is
   independent of interleaving and must equal the in-memory oracle
   exactly; every acked single-op batch must have consumed exactly one
   sequence number (applied exactly once, despite the retries).  All
   fault schedules are pure functions of their seed: a failing run
   reproduces from the seed in the message.  Seeds come from
   SQP_CHAOS_SEEDS (comma-separated) when set.

   Around the differential: a deterministic kill-every-connection plan
   (progress purely via reconnect + replay), and a degraded-mode drill —
   ENOSPC mid-batch flips the server read-only, reads keep serving,
   recovery is refused while the disk is still full and succeeds after
   space is freed, with every pre-failure ack still present. *)

module P = Sqp_server.Protocol
module Client = Sqp_server.Client
module Server = Sqp_server.Server
module Catalog = Sqp_server.Catalog
module Faulty_net = Sqp_server.Faulty_net
module Faulty_io = Sqp_storage.Faulty_io
module Journal = Sqp_storage.Journal
module Live = Sqp_btree.Live
module Space = Sqp_zorder.Space
module M = Sqp_obs.Metrics

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let seeds =
  match Sys.getenv_opt "SQP_CHAOS_SEEDS" with
  | None | Some "" -> [ 1; 7; 42 ]
  | Some s -> (
      match String.split_on_char ',' s |> List.filter_map int_of_string_opt with
      | [] -> [ 1; 7; 42 ]
      | l -> l)

(* A small dedicated grid: 2 dimensions, 64 positions per axis. *)
let space = Space.make ~dims:2 ~depth:6
let side = 64

let fresh_catalog () =
  let lv = Live.create ~encode:string_of_int ~decode:int_of_string space in
  (Catalog.make ~lives:[ ("T", lv) ] ~space ~points:[] ~relations:[] (), lv)

let with_chaos_server ?(config = Server.default_config) f =
  let catalog, lv = fresh_catalog () in
  let metrics = M.create () in
  let server = Server.start ~config ~metrics catalog in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () -> f server metrics lv)

let entry_list entries =
  List.sort compare (List.map (fun (p, id) -> (Array.to_list p, id)) entries)

(* {1 The differential torture} *)

let n_clients = 4
let ops_per_client = 30
let stripe = side / n_clients

(* Client [c]'s [j]-th point.  Within one client all points are
   distinct for [j < 64] (x repeats mod 16, y = 7j mod 64 repeats mod
   64, so a collision needs j1 = j2 mod 64); across clients the x
   stripes are disjoint.  Deletes therefore only ever touch the
   deleting client's own entries and the final state commutes. *)
let point_of c j = [| (c * stripe) + (j mod stripe); 7 * j mod side |]

let torture_seed seed =
  let config =
    {
      Server.default_config with
      max_in_flight = 4;
      max_queue = 256;
      idle_timeout_s = Some 10.0;
      frame_timeout_s = Some 10.0;
    }
  in
  with_chaos_server ~config (fun server _metrics lv ->
      let port = Server.port server in
      let acked = Atomic.make 0 in
      let retries = Atomic.make 0 in
      let first_failure = Atomic.make None in
      let fail c j what msg =
        let m =
          Printf.sprintf "seed %d client %d op %d: %s: %s" seed c j what msg
        in
        ignore (Atomic.compare_and_set first_failure None (Some m))
      in
      let survivors = Array.make n_clients [] in
      let client_thread c =
        let plan =
          Faulty_net.seeded ~p_eintr:0.05 ~p_short:0.3 ~p_delay:0.05
            ~delay_s:0.0005 ~p_reset:0.08
            ~seed:((seed * 97) + c)
            ()
        in
        Client.with_connect ~port
          ~client_id:((seed * 1000) + c)
          ~max_attempts:400 ~wrap:(Faulty_net.wrap plan)
          (fun cl ->
            let mine = ref [] in
            for j = 0 to ops_per_client - 1 do
              if Atomic.get first_failure = None then
                if j mod 5 = 4 && !mine <> [] then (
                  (* delete the oldest of our own living points *)
                  match !mine with
                  | [] -> ()
                  | (dp, _) :: rest -> (
                      match Client.delete cl ~table:"T" [ dp ] with
                      | Ok (applied, _) ->
                          Atomic.incr acked;
                          if applied <> 1 then
                            fail c j "delete"
                              (Printf.sprintf "applied %d, expected 1" applied)
                          else mine := rest
                      | Error e -> fail c j "delete" (Client.error_to_string e)))
                else if j mod 5 = 3 then (
                  (* a snapshot read through the faulty wire must simply
                     answer; its contents are inherently racy mid-run *)
                  match
                    Client.live_range cl ~table:"T" ~lo:[| 0; 0 |]
                      ~hi:[| side - 1; side - 1 |]
                  with
                  | Ok _ -> ()
                  | Error e -> fail c j "live_range" (Client.error_to_string e))
                else
                  let p = point_of c j in
                  let id = (c * 1_000_000) + j in
                  match Client.insert cl ~table:"T" [ (p, id) ] with
                  | Ok (applied, _) ->
                      Atomic.incr acked;
                      if applied <> 1 then
                        fail c j "insert"
                          (Printf.sprintf "applied %d, expected 1" applied)
                      else mine := !mine @ [ (p, id) ]
                  | Error e -> fail c j "insert" (Client.error_to_string e)
            done;
            survivors.(c) <- !mine;
            Atomic.fetch_and_add retries (Client.retries cl) |> ignore)
      in
      let threads =
        List.init n_clients (fun c -> Thread.create client_thread c)
      in
      List.iter Thread.join threads;
      (match Atomic.get first_failure with
      | Some m -> Alcotest.fail m
      | None -> ());
      (* exactly-once: every acked single-op batch consumed exactly one
         sequence number — a retried mutation never applied twice *)
      checki
        (Printf.sprintf "seed %d: table seq = acked mutations" seed)
        (Atomic.get acked) (Live.seq lv);
      (* the final state is the oracle's, bit for bit *)
      let expected =
        entry_list (List.concat (Array.to_list survivors))
      in
      let got = entry_list (Live.snapshot_entries (Live.snapshot lv)) in
      checkb
        (Printf.sprintf "seed %d: final state matches the oracle (%d retries)"
           seed (Atomic.get retries))
        true
        (expected = got))

let test_differential () = List.iter torture_seed seeds

(* {1 The workload_gen differential}

   The shared seeded mixed-op generator (the crash/ingest suites'
   schedules), replayed over the faulty wire by one client against the
   in-memory oracle, op for op: every acked applied count must match
   the oracle's, every wire read the oracle's cardinality, and the
   final table state the oracle's scan — entries, payloads and z order,
   bit for bit.  A double-applied retry (extra insert, extra delete)
   cannot survive this comparison. *)

module WG = Workload_gen

let workload_seed seed =
  with_chaos_server (fun server _metrics lv ->
      let port = Server.port server in
      let ops = WG.generate ~side ~dims:2 ~seed ~n:120 () in
      let oracle = WG.Oracle.create space in
      let plan =
        Faulty_net.seeded ~p_eintr:0.05 ~p_short:0.3 ~p_delay:0.03
          ~delay_s:0.0003 ~p_reset:0.08 ~seed:(seed * 131) ()
      in
      Client.with_connect ~port ~client_id:(seed * 31) ~max_attempts:400
        ~wrap:(Faulty_net.wrap plan)
        (fun cl ->
          List.iteri
            (fun i op ->
              let ok what = function
                | Ok v -> v
                | Error e ->
                    Alcotest.failf "seed %d op %d: %s: %s" seed i what
                      (Client.error_to_string e)
              in
              match op with
              | WG.Insert (p, v) ->
                  let applied, _ = ok "insert" (Client.insert cl ~table:"T" [ (p, v) ]) in
                  WG.Oracle.insert oracle p v;
                  if applied <> 1 then
                    Alcotest.failf "seed %d op %d: insert applied %d" seed i applied
              | WG.Delete p ->
                  let applied, _ = ok "delete" (Client.delete cl ~table:"T" [ p ]) in
                  let expected = if WG.Oracle.delete oracle p then 1 else 0 in
                  if applied <> expected then
                    Alcotest.failf "seed %d op %d: delete applied %d, oracle %d"
                      seed i applied expected
              | WG.Range box ->
                  let rows =
                    ok "range"
                      (Client.live_range cl ~table:"T" ~lo:(Sqp_geom.Box.lo box)
                         ~hi:(Sqp_geom.Box.hi box))
                  in
                  let expected = List.length (WG.Oracle.range oracle box) in
                  if Sqp_relalg.Relation.cardinality rows <> expected then
                    Alcotest.failf "seed %d op %d: range returned %d rows, oracle %d"
                      seed i
                      (Sqp_relalg.Relation.cardinality rows)
                      expected
              | WG.Scan ->
                  let rows =
                    ok "scan"
                      (Client.live_range cl ~table:"T" ~lo:[| 0; 0 |]
                         ~hi:[| side - 1; side - 1 |])
                  in
                  if
                    Sqp_relalg.Relation.cardinality rows
                    <> WG.Oracle.length oracle
                  then
                    Alcotest.failf "seed %d op %d: scan returned %d rows, oracle %d"
                      seed i
                      (Sqp_relalg.Relation.cardinality rows)
                      (WG.Oracle.length oracle))
            ops);
      (* final state: entries, payloads and z order, bit for bit *)
      let got = Live.snapshot_entries (Live.snapshot lv) in
      let expected = WG.Oracle.scan oracle in
      checkb
        (Printf.sprintf "seed %d: final live state = workload_gen oracle" seed)
        true
        (List.length got = List.length expected
        && List.for_all2
             (fun (p, v) (q, w) -> Sqp_geom.Point.equal p q && v = w)
             got expected))

let test_workload_differential () = List.iter workload_seed seeds

(* {1 Deterministic connection kills}

   Every connection is killed at its 9th socket operation — roughly two
   requests in — so the run makes progress purely through reconnection
   and idempotent replay. *)

let test_kill_every_connection () =
  with_chaos_server (fun server _metrics lv ->
      let port = Server.port server in
      let n = 20 in
      let cl =
        Client.connect ~port ~client_id:777 ~max_attempts:50
          ~wrap:(Faulty_net.wrap (Faulty_net.kill_after 9))
          ()
      in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          for j = 0 to n - 1 do
            match Client.insert cl ~table:"T" [ (point_of 0 j, j) ] with
            | Ok (1, _) -> ()
            | Ok (applied, _) ->
                Alcotest.failf "insert %d applied %d times" j applied
            | Error e ->
                Alcotest.failf "insert %d: %s" j (Client.error_to_string e)
          done;
          checki "each insert applied exactly once" n (Live.length lv);
          checki "one sequence number per insert" n (Live.seq lv);
          checkb "progress required reconnection" true (Client.reconnects cl >= 1)))

(* {1 Degraded mode: ENOSPC, read-only serving, recovery} *)

let test_degraded_recovery () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ()) "sqp_chaos_degraded.store"
  in
  let remove p = if Sys.file_exists p then Sys.remove p in
  let clean () = List.iter remove [ path; Journal.journal_path path ] in
  clean ();
  Fun.protect ~finally:clean @@ fun () ->
  let io = Faulty_io.enospc_after 8192 in
  let lv =
    Live.create_durable ~io ~page_bytes:256 ~encode:string_of_int
      ~decode:int_of_string ~path space
  in
  Fun.protect ~finally:(fun () -> Live.close lv) @@ fun () ->
  let catalog =
    Catalog.make ~lives:[ ("T", lv) ] ~space ~points:[] ~relations:[] ()
  in
  let metrics = M.create () in
  let server = Server.start ~metrics catalog in
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  let port = Server.port server in
  Client.with_connect ~port (fun cl ->
      let lo = [| 0; 0 |] and hi = [| side - 1; side - 1 |] in
      (* insert until the disk fills; remember everything that was acked *)
      let acked = ref [] in
      let filled = ref false in
      let i = ref 0 in
      while (not !filled) && !i < 300 do
        let p = point_of (!i mod n_clients) (!i mod ops_per_client) in
        (match Client.insert cl ~table:"T" [ (p, !i) ] with
        | Ok _ -> acked := (p, !i) :: !acked
        | Error (Client.Remote { code = P.Degraded; _ }) -> filled := true
        | Error e ->
            Alcotest.failf "unexpected error while filling: %s"
              (Client.error_to_string e));
        incr i
      done;
      checkb "the disk eventually filled" true !filled;
      checkb "some batches were acked before the failure" true (!acked <> []);
      (* read-only mode: reads serve, mutations are refused fast *)
      (match Client.live_range cl ~table:"T" ~lo ~hi with
      | Ok rows ->
          checki "reads keep serving the acked state" (List.length !acked)
            (Sqp_relalg.Relation.cardinality rows)
      | Error e ->
          Alcotest.failf "read refused in degraded mode: %s"
            (Client.error_to_string e));
      (match Client.insert cl ~table:"T" [ ([| 1; 1 |], 999 ) ] with
      | Error (Client.Remote { code = P.Degraded; _ }) -> ()
      | Ok _ -> Alcotest.fail "mutation accepted in degraded mode"
      | Error e ->
          Alcotest.failf "expected Degraded, got %s" (Client.error_to_string e));
      (* health reports the mode and the overall gauge flips *)
      (match Client.health cl with
      | Ok h ->
          checkb "health says degraded" true
            (String.length h.P.mode >= 8 && String.sub h.P.mode 0 8 = "degraded");
          checkb "health not healthy while degraded" false h.P.healthy
      | Error e -> Alcotest.failf "health: %s" (Client.error_to_string e));
      checki "degraded gauge raised" 1
        (M.gauge_value (M.gauge metrics "server.degraded"));
      (* recovery is refused while the disk is still full *)
      (match Client.recover cl with
      | Error (Client.Remote { code = P.Degraded; _ }) -> ()
      | Ok _ -> Alcotest.fail "recovery claimed success on a full disk"
      | Error e ->
          Alcotest.failf "expected Degraded from recover, got %s"
            (Client.error_to_string e));
      (* free space; now recovery succeeds and mutations flow again *)
      Faulty_io.refill_enospc io 10_000_000;
      (match Client.recover cl with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "recover: %s" (Client.error_to_string e));
      (match Client.health cl with
      | Ok h -> Alcotest.(check string) "mode back to serving" "serving" h.P.mode
      | Error e -> Alcotest.failf "health: %s" (Client.error_to_string e));
      checki "degraded gauge cleared" 0
        (M.gauge_value (M.gauge metrics "server.degraded"));
      (match Client.insert cl ~table:"T" [ ([| 2; 2 |], 1000) ] with
      | Ok (1, _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "mutation refused after recovery");
      (* every pre-failure ack survived recovery, plus the new row;
         the batch that hit ENOSPC was never applied *)
      let expected = entry_list (([| 2; 2 |], 1000) :: !acked) in
      let got = entry_list (Live.snapshot_entries (Live.snapshot lv)) in
      checkb "recovered state = acked state + post-recovery insert" true
        (expected = got))

let () =
  Alcotest.run "chaos"
    [
      ( "torture",
        [
          Alcotest.test_case "seeded fault differential" `Quick test_differential;
          Alcotest.test_case "workload_gen differential" `Quick
            test_workload_differential;
          Alcotest.test_case "kill every connection" `Quick
            test_kill_every_connection;
        ] );
      ( "degraded",
        [
          Alcotest.test_case "enospc, read-only, recovery" `Quick
            test_degraded_recovery;
        ] );
    ]
