(* Cluster differential suite.

   The heart: a router fronting 1, 2 and 4 in-process shard servers —
   each serving the z-range-restricted slice of the same seeded
   workload — must be bit-identical to a single full server, for range
   searches (rows AND their global z order), live-table snapshot
   reads, and the spatial join whose element pairs straddle the shard
   cuts (boundary replication + distinct merge).  Around that: plans
   the scatter-gather cannot answer exactly draw Bad_request; the
   router survives deterministic shard-connection kills; a seeded
   mixed workload through a faulty client wire stays exactly-once end
   to end (client → router → owning shard); a live rebalance under
   concurrent mutations loses and duplicates nothing, flips the epoch,
   and forces a map-caching client through the stale-epoch refetch
   protocol; and a real [sqp serve] child process reports its port
   machine-parseably and exits 0 on SIGTERM.

   Seeds come from SQP_CLUSTER_SEEDS (comma-separated) when set. *)

module P = Sqp_server.Protocol
module Client = Sqp_server.Client
module Server = Sqp_server.Server
module Catalog = Sqp_server.Catalog
module SM = Sqp_server.Shard_map
module Faulty_net = Sqp_server.Faulty_net
module Router = Sqp_cluster.Router
module CC = Sqp_cluster.Cluster_client
module Wire = Sqp_relalg.Wire
module Relation = Sqp_relalg.Relation
module Value = Sqp_relalg.Value
module Live = Sqp_btree.Live
module Space = Sqp_zorder.Space
module Box = Sqp_geom.Box
module M = Sqp_obs.Metrics
module WG = Workload_gen

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let seeds =
  match Sys.getenv_opt "SQP_CLUSTER_SEEDS" with
  | None | Some "" -> [ 3; 11 ]
  | Some s -> (
      match String.split_on_char ',' s |> List.filter_map int_of_string_opt with
      | [] -> [ 3; 11 ]
      | l -> l)

let reply_ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Client.error_to_string e)

let expect_error what code = function
  | Ok _ -> Alcotest.failf "%s: expected %s" what (P.error_code_name code)
  | Error (Client.Remote { code = c; _ }) ->
      Alcotest.(check string) what (P.error_code_name code) (P.error_code_name c)
  | Error (Client.Transport _ as e) ->
      Alcotest.failf "%s: expected %s, got %s" what (P.error_code_name code)
        (Client.error_to_string e)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Tuple comparisons via the total {!Value.compare} order, never
   polymorphic compare (Zval is abstract). *)
let tuple_cmp a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la || i >= lb then compare la lb
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let tuple_eq a b = tuple_cmp a b = 0

(* Rows identical, including order — the router must preserve the
   oracle's global z order for range reads. *)
let rows_identical a b =
  List.equal tuple_eq (Relation.tuples a) (Relation.tuples b)

(* Rows identical as sets — for distinct-rooted plan results, whose
   single-node order is plan order while the router's is canonical. *)
let rows_same_set a b =
  List.equal tuple_eq
    (List.sort_uniq tuple_cmp (Relation.tuples a))
    (List.sort_uniq tuple_cmp (Relation.tuples b))

(* {1 The seeded fixture and its single-node oracle} *)

let wk =
  Sqp_workload.Seeded.standard ~n_points:400 ~n_objects:12 ~n_query_boxes:24 ()

let space = wk.Sqp_workload.Seeded.space
let side = Sqp_workload.Seeded.side wk
let full_lo = [| 0; 0 |]
let full_hi = [| side - 1; side - 1 |]

let join_plan =
  Wire.(
    Project
      ( [ "rid"; "sid" ],
        Spatial_join { zl = "zr"; zr = "zs"; left = Scan "R"; right = Scan "S" } ))

let n_boxes = 12

(* Oracle answers, computed once against one full (unsharded) server
   over the same seeds. *)
let oracle =
  lazy
    (let server = Server.start ~metrics:(M.create ()) (Catalog.of_seeded wk) in
     Fun.protect
       ~finally:(fun () -> Server.stop server)
       (fun () ->
         Client.with_connect ~port:(Server.port server) (fun cl ->
             let ranges =
               List.init n_boxes (fun i ->
                   let b = wk.Sqp_workload.Seeded.query_boxes.(i) in
                   ( b,
                     reply_ok "oracle range"
                       (Client.range_search cl ~lo:(Box.lo b) ~hi:(Box.hi b)) ))
             in
             let join = reply_ok "oracle join" (Client.query cl join_plan) in
             let live =
               reply_ok "oracle live"
                 (Client.live_range cl ~table:"L" ~lo:full_lo ~hi:full_hi)
             in
             (ranges, join, live))))

(* [n] shard servers, each built locally from the seeds restricted to
   its even z range, fronted by a router holding the matching map. *)
let with_seeded_cluster ?(config = Router.default_config) n f =
  let shards =
    List.map
      (fun r -> Server.start ~metrics:(M.create ()) (Catalog.of_seeded ~shard:r wk))
      (SM.even_ranges space n)
  in
  Fun.protect
    ~finally:(fun () -> List.iter Server.stop shards)
    (fun () ->
      let endpoints = List.map (fun s -> ("127.0.0.1", Server.port s)) shards in
      let metrics = M.create () in
      let router =
        Router.start ~config ~metrics ~space ~map:(SM.even space endpoints) ()
      in
      Fun.protect
        ~finally:(fun () -> Router.stop router)
        (fun () -> f router metrics))

(* {1 Scatter-gather fidelity at every shard count} *)

let differential_at n =
  let ranges, join, live = Lazy.force oracle in
  with_seeded_cluster n (fun router _metrics ->
      Client.with_connect ~port:(Router.port router) (fun cl ->
          List.iteri
            (fun i (b, expect) ->
              let got =
                reply_ok
                  (Printf.sprintf "%d shards: box %d" n i)
                  (Client.range_search cl ~lo:(Box.lo b) ~hi:(Box.hi b))
              in
              checkb
                (Printf.sprintf
                   "%d shards: box %d rows identical and z-ordered" n i)
                true (rows_identical expect got))
            ranges;
          let got_live =
            reply_ok
              (Printf.sprintf "%d shards: live scan" n)
              (Client.live_range cl ~table:"L" ~lo:full_lo ~hi:full_hi)
          in
          checkb
            (Printf.sprintf "%d shards: live snapshot identical" n)
            true (rows_identical live got_live);
          let got_join =
            reply_ok (Printf.sprintf "%d shards: join" n)
              (Client.query cl join_plan)
          in
          checkb
            (Printf.sprintf "%d shards: join pairs across the cuts" n)
            true (rows_same_set join got_join);
          (* EXPLAIN ANALYZE through the router stitches the per-shard
             breakdown while returning the same result set *)
          let text, rows =
            reply_ok
              (Printf.sprintf "%d shards: analyze" n)
              (Client.analyze cl join_plan)
          in
          checkb
            (Printf.sprintf "%d shards: analyze rows = query rows" n)
            true (rows_same_set join rows);
          checkb
            (Printf.sprintf "%d shards: analyze names every shard" n)
            true
            (contains text "cluster: epoch"
            && contains text (Printf.sprintf "shard %d" (n - 1)));
          let explain =
            reply_ok
              (Printf.sprintf "%d shards: explain" n)
              (Client.explain cl join_plan)
          in
          checkb
            (Printf.sprintf "%d shards: explain is cluster-prefixed" n)
            true
            (contains explain "cluster: epoch")))

let test_differential () = List.iter differential_at [ 1; 2; 4 ]

(* {1 Plans the scatter-gather cannot answer exactly} *)

let test_plan_rejection () =
  with_seeded_cluster 2 (fun router _ ->
      Client.with_connect ~port:(Router.port router) (fun cl ->
          (* root is not the duplicate-eliminating Project *)
          expect_error "root Scan" P.Bad_request (Client.query cl (Wire.Scan "R"));
          expect_error "root Sort" P.Bad_request
            (Client.query cl (Wire.Sort ([ "rid" ], join_plan)));
          (* Product needs cross-shard pairs no shard can see *)
          expect_error "product" P.Bad_request
            (Client.query cl
               (Wire.Project
                  ([ "rid"; "sid" ], Wire.Product (Wire.Scan "R", Wire.Scan "S"))));
          (* but the distinct-rooted join still works on the same session *)
          let rows = reply_ok "join after rejects" (Client.query cl join_plan) in
          let _, join, _ = Lazy.force oracle in
          checkb "session survives rejects" true (rows_same_set join rows)))

(* {1 Shard-connection kills}

   Every router→shard connection dies at its 25th socket operation; the
   router's bounded per-shard retries (fresh connections from the pool)
   must keep every answer exact. *)

let test_shard_kills () =
  let config =
    {
      Router.default_config with
      shard_wrap = Some (Faulty_net.wrap (Faulty_net.kill_after 25));
      shard_attempts = 8;
    }
  in
  let ranges, join, _ = Lazy.force oracle in
  with_seeded_cluster ~config 2 (fun router _ ->
      Client.with_connect ~port:(Router.port router) (fun cl ->
          List.iteri
            (fun i (b, expect) ->
              let got =
                reply_ok
                  (Printf.sprintf "kills: box %d" i)
                  (Client.range_search cl ~lo:(Box.lo b) ~hi:(Box.hi b))
              in
              checkb
                (Printf.sprintf "kills: box %d exact" i)
                true (rows_identical expect got))
            ranges;
          let got_join = reply_ok "kills: join" (Client.query cl join_plan) in
          checkb "kills: join exact" true (rows_same_set join got_join);
          let h = reply_ok "kills: health" (Client.health cl) in
          checkb "kills: healthy" true h.P.healthy))

(* {1 Exactly-once mixed ingest through the router}

   The shared seeded mixed-op schedule, replayed by one client whose
   wire to the {e router} suffers seeded faults.  The router forwards
   each mutation with the origin client's idempotency key, so a client
   retry that re-reaches the owning shard must dedup there: every acked
   applied count must match the in-memory oracle, every read its
   cardinality, and the final cluster-wide scan its contents in z
   order, bit for bit. *)

let small_space = Space.make ~dims:2 ~depth:6
let small_side = 64

let with_small_cluster n f =
  let lives =
    List.init n (fun _ ->
        Live.create ~encode:string_of_int ~decode:int_of_string small_space)
  in
  let shards =
    List.map
      (fun lv ->
        Server.start ~metrics:(M.create ())
          (Catalog.make ~lives:[ ("L", lv) ] ~space:small_space ~points:[]
             ~relations:[] ()))
      lives
  in
  Fun.protect
    ~finally:(fun () -> List.iter Server.stop shards)
    (fun () ->
      let endpoints = List.map (fun s -> ("127.0.0.1", Server.port s)) shards in
      let router =
        Router.start ~metrics:(M.create ()) ~space:small_space
          ~map:(SM.even small_space endpoints)
          ()
      in
      Fun.protect
        ~finally:(fun () -> Router.stop router)
        (fun () -> f router lives))

let small_full_lo = [| 0; 0 |]
let small_full_hi = [| small_side - 1; small_side - 1 |]

(* Expected live rows (id, x0, x1) for an oracle scan, in its z order. *)
let rows_of_entries entries =
  List.map
    (fun (p, v) -> [| Value.Int v; Value.Int p.(0); Value.Int p.(1) |])
    entries

let workload_seed seed =
  with_small_cluster 2 (fun router _lives ->
      let ops = WG.generate ~side:small_side ~dims:2 ~seed ~n:120 () in
      let oracle = WG.Oracle.create small_space in
      let plan =
        Faulty_net.seeded ~p_eintr:0.05 ~p_short:0.3 ~p_delay:0.03
          ~delay_s:0.0003 ~p_reset:0.08 ~seed:(seed * 131) ()
      in
      let retries = ref 0 in
      Client.with_connect
        ~port:(Router.port router)
        ~client_id:(seed * 37) ~max_attempts:400 ~wrap:(Faulty_net.wrap plan)
        (fun cl ->
          List.iteri
            (fun i op ->
              let ok what = function
                | Ok v -> v
                | Error e ->
                    Alcotest.failf "seed %d op %d: %s: %s" seed i what
                      (Client.error_to_string e)
              in
              match op with
              | WG.Insert (p, v) ->
                  let applied, _ =
                    ok "insert" (Client.insert cl ~table:"L" [ (p, v) ])
                  in
                  WG.Oracle.insert oracle p v;
                  if applied <> 1 then
                    Alcotest.failf "seed %d op %d: insert applied %d" seed i
                      applied
              | WG.Delete p ->
                  let applied, _ =
                    ok "delete" (Client.delete cl ~table:"L" [ p ])
                  in
                  let expected = if WG.Oracle.delete oracle p then 1 else 0 in
                  if applied <> expected then
                    Alcotest.failf "seed %d op %d: delete applied %d, oracle %d"
                      seed i applied expected
              | WG.Range box ->
                  let rows =
                    ok "range"
                      (Client.live_range cl ~table:"L" ~lo:(Box.lo box)
                         ~hi:(Box.hi box))
                  in
                  let expected = List.length (WG.Oracle.range oracle box) in
                  if Relation.cardinality rows <> expected then
                    Alcotest.failf "seed %d op %d: range %d rows, oracle %d"
                      seed i (Relation.cardinality rows) expected
              | WG.Scan ->
                  let rows =
                    ok "scan"
                      (Client.live_range cl ~table:"L" ~lo:small_full_lo
                         ~hi:small_full_hi)
                  in
                  if Relation.cardinality rows <> WG.Oracle.length oracle then
                    Alcotest.failf "seed %d op %d: scan %d rows, oracle %d"
                      seed i (Relation.cardinality rows)
                      (WG.Oracle.length oracle))
            ops;
          retries := Client.retries cl;
          (* final cluster-wide state: contents and z order, bit for bit *)
          let got =
            reply_ok "final scan"
              (Client.live_range cl ~table:"L" ~lo:small_full_lo
                 ~hi:small_full_hi)
          in
          let expected = rows_of_entries (WG.Oracle.scan oracle) in
          checkb
            (Printf.sprintf
               "seed %d: final cluster state = oracle (%d wire retries)" seed
               !retries)
            true
            (List.equal tuple_eq expected (Relation.tuples got))))

let test_workload_differential () = List.iter workload_seed seeds

(* {1 Rebalancing under fire}

   One shard owns the whole small space; a second starts empty.  While
   a mutator thread keeps inserting and deleting through the router, a
   [split] moves the upper half of the z range to the empty shard.
   Nothing may be lost or duplicated: the final cluster-wide scan must
   equal the oracle exactly, the epoch must have flipped, the new shard
   must hold only rows it owns — and a map-caching {!Cluster_client}
   connected before the move must be forced through the stale-epoch
   refetch protocol by the shards themselves. *)

let rebalance_seed seed =
  (* two live tables per shard: the split must move BOTH — a rebalance
     that only copied "L" would orphan "M"'s moved-range rows on the
     source (hidden by ownership filtering = silent data loss) *)
  let mk_live () =
    Live.create ~encode:string_of_int ~decode:int_of_string small_space
  in
  let lv_src = mk_live ()
  and lv_dst = mk_live ()
  and lv_src_m = mk_live ()
  and lv_dst_m = mk_live () in
  let mk lv lvm =
    Server.start ~metrics:(M.create ())
      (Catalog.make
         ~lives:[ ("L", lv); ("M", lvm) ]
         ~space:small_space ~points:[] ~relations:[] ())
  in
  let src = mk lv_src lv_src_m and dst = mk lv_dst lv_dst_m in
  Fun.protect
    ~finally:(fun () ->
      Server.stop src;
      Server.stop dst)
    (fun () ->
      let router =
        Router.start ~metrics:(M.create ()) ~space:small_space
          ~map:(SM.even small_space [ ("127.0.0.1", Server.port src) ])
          ()
      in
      Fun.protect
        ~finally:(fun () -> Router.stop router)
        (fun () ->
          let zmax = (1 lsl 12) - 1 and at = 1 lsl 11 in
          let oracle = WG.Oracle.create small_space in
          let oracle_m = WG.Oracle.create small_space in
          Client.with_connect
            ~port:(Router.port router)
            ~client_id:(seed * 41)
            (fun cl ->
              (* seed 200 distinct points while the map is still 1 entry *)
              let pt i = [| i mod small_side; i / small_side * 7 |] in
              for b = 0 to 9 do
                let batch =
                  List.init 20 (fun j ->
                      let i = (b * 20) + j in
                      (pt i, (seed * 10_000) + i))
                in
                let applied, _ =
                  reply_ok "seed insert" (Client.insert cl ~table:"L" batch)
                in
                checki "seed batch applied" 20 applied;
                List.iter (fun (p, v) -> WG.Oracle.insert oracle p v) batch
              done;
              (* seed the second table across the whole space too *)
              let pt_m i = [| (i * 3) mod small_side; i / 2 mod small_side |] in
              for b = 0 to 4 do
                let batch =
                  List.init 20 (fun j ->
                      let i = (b * 20) + j in
                      (pt_m i, (seed * 30_000) + i))
                in
                let applied, _ =
                  reply_ok "seed insert M" (Client.insert cl ~table:"M" batch)
                in
                checki "seed M batch applied" 20 applied;
                List.iter (fun (p, v) -> WG.Oracle.insert oracle_m p v) batch
              done;
              (* a map-caching client bootstraps at epoch 1 *)
              let cc = CC.connect ~router_port:(Router.port router) () in
              Fun.protect
                ~finally:(fun () -> CC.close cc)
                (fun () ->
                  checki "cached epoch before the move" 1 (CC.epoch cc);
                  ignore
                    (reply_ok "direct range at epoch 1"
                       (CC.range_search cc ~space:small_space ~lo:small_full_lo
                          ~hi:small_full_hi));
                  checki "no refetch yet" 0 (CC.refetches cc);
                  (* mutate through the router while the split runs *)
                  let mutator_error = Atomic.make None in
                  let mutator =
                    Thread.create
                      (fun () ->
                        try
                          Client.with_connect
                            ~port:(Router.port router)
                            ~client_id:(seed * 43)
                            (fun mcl ->
                              let present = ref (List.init 200 pt) in
                              for j = 0 to 119 do
                                if j mod 3 = 2 then (
                                  match !present with
                                  | [] -> ()
                                  | p :: rest ->
                                      let applied, _ =
                                        reply_ok "mutator delete"
                                          (Client.delete mcl ~table:"L" [ p ])
                                      in
                                      if applied <> 1 then
                                        failwith
                                          (Printf.sprintf
                                             "mutator delete applied %d" applied);
                                      ignore (WG.Oracle.delete oracle p);
                                      present := rest)
                                else
                                  let p =
                                    [|
                                      j mod small_side;
                                      35 + (j / small_side * 7);
                                    |]
                                  in
                                  let v = (seed * 20_000) + j in
                                  let applied, _ =
                                    reply_ok "mutator insert"
                                      (Client.insert mcl ~table:"L" [ (p, v) ])
                                  in
                                  if applied <> 1 then
                                    failwith
                                      (Printf.sprintf "mutator insert applied %d"
                                         applied);
                                  WG.Oracle.insert oracle p v;
                                  (* keep the second table hot too: its
                                     dual-writes and chunk copies must
                                     interleave with "L"'s *)
                                  let pm =
                                    [|
                                      (j * 5) mod small_side;
                                      50 + (j mod 14);
                                    |]
                                  in
                                  let vm = (seed * 40_000) + j in
                                  let applied_m, _ =
                                    reply_ok "mutator insert M"
                                      (Client.insert mcl ~table:"M"
                                         [ (pm, vm) ])
                                  in
                                  if applied_m <> 1 then
                                    failwith
                                      (Printf.sprintf
                                         "mutator M insert applied %d" applied_m);
                                  WG.Oracle.insert oracle_m pm vm
                              done)
                        with e -> Atomic.set mutator_error (Some e))
                      ()
                  in
                  (* move the upper half of the range — BOTH live
                     tables — to the empty shard *)
                  (match
                     Router.split router
                       ~tables:[ "L"; "M" ]
                       ~from_:0 ~at ~host:"127.0.0.1" ~port:(Server.port dst)
                   with
                  | Ok () -> ()
                  | Error m -> Alcotest.failf "split: %s" m);
                  Thread.join mutator;
                  (match Atomic.get mutator_error with
                  | Some e -> Alcotest.failf "mutator: %s" (Printexc.to_string e)
                  | None -> ());
                  let m = Router.map router in
                  checki "epoch flipped" 2 m.SM.epoch;
                  checki "two entries" 2 (List.length m.SM.entries);
                  checki "cut at the split point" at
                    (List.nth m.SM.entries 1).SM.zlo;
                  ignore zmax;
                  (* nothing lost, nothing duplicated *)
                  let got =
                    reply_ok "post-split scan"
                      (Client.live_range cl ~table:"L" ~lo:small_full_lo
                         ~hi:small_full_hi)
                  in
                  let expected = rows_of_entries (WG.Oracle.scan oracle) in
                  checkb
                    (Printf.sprintf "seed %d: post-split state = oracle" seed)
                    true
                    (List.equal tuple_eq expected (Relation.tuples got));
                  (* the new shard holds only rows it owns *)
                  checkb "dst rows are all in the moved range" true
                    (List.for_all
                       (fun (p, _) ->
                         SM.z_of_point small_space p >= at)
                       (Live.snapshot_entries (Live.snapshot lv_dst)));
                  checkb "dst actually received rows" true
                    (Live.snapshot_length (Live.snapshot lv_dst) > 0);
                  (* the second table moved too, with the same guarantees *)
                  let got_m =
                    reply_ok "post-split scan M"
                      (Client.live_range cl ~table:"M" ~lo:small_full_lo
                         ~hi:small_full_hi)
                  in
                  let expected_m = rows_of_entries (WG.Oracle.scan oracle_m) in
                  checkb
                    (Printf.sprintf "seed %d: post-split M state = oracle" seed)
                    true
                    (List.equal tuple_eq expected_m (Relation.tuples got_m));
                  checkb "dst M rows are all in the moved range" true
                    (List.for_all
                       (fun (p, _) -> SM.z_of_point small_space p >= at)
                       (Live.snapshot_entries (Live.snapshot lv_dst_m)));
                  checkb "dst actually received M rows" true
                    (Live.snapshot_length (Live.snapshot lv_dst_m) > 0);
                  (* the cached client is fenced off and recovers *)
                  ignore
                    (reply_ok "direct range after the move"
                       (CC.range_search cc ~space:small_space ~lo:small_full_lo
                          ~hi:small_full_hi));
                  checkb "stale-epoch refetch ran" true (CC.refetches cc >= 1);
                  checki "cached epoch caught up" 2 (CC.epoch cc)))))

let test_rebalance () = List.iter rebalance_seed seeds

(* A split that omits a live table must abort — map unflipped, nothing
   lost — as soon as a mutation touches that table anywhere in the
   moving range (above the watermark included: a row landing in the
   not-yet-copied suffix would never be copied, then hidden at the
   flip).  The source is seeded heavy so the copy is slow enough that
   the racing writes reliably land mid-move. *)
let test_split_abort () =
  let mk_live () =
    Live.create ~encode:string_of_int ~decode:int_of_string small_space
  in
  let lv_src = mk_live ()
  and lv_dst = mk_live ()
  and lv_src_m = mk_live ()
  and lv_dst_m = mk_live () in
  let mk lv lvm =
    Server.start ~metrics:(M.create ())
      (Catalog.make
         ~lives:[ ("L", lv); ("M", lvm) ]
         ~space:small_space ~points:[] ~relations:[] ())
  in
  let src = mk lv_src lv_src_m and dst = mk lv_dst lv_dst_m in
  Fun.protect
    ~finally:(fun () ->
      Server.stop src;
      Server.stop dst)
    (fun () ->
      let router =
        Router.start ~metrics:(M.create ()) ~space:small_space
          ~map:(SM.even small_space [ ("127.0.0.1", Server.port src) ])
          ()
      in
      Fun.protect
        ~finally:(fun () -> Router.stop router)
        (fun () ->
          let at = 1 lsl 11 in
          Client.with_connect ~port:(Router.port router) ~client_id:91
            (fun cl ->
              for b = 0 to 99 do
                let batch =
                  List.init 100 (fun j ->
                      let i = (b * 100) + j in
                      ([| i mod small_side; i * 7 mod small_side |], i))
                in
                ignore (reply_ok "seed L" (Client.insert cl ~table:"L" batch))
              done;
              (* run the split in a background thread and write "M" from
                 this one until it returns — the writes then necessarily
                 span the whole move, so at least one is gated while the
                 rebalance is live.  Both coordinates >= 32, so z >= at
                 whatever the interleave order — every write is in the
                 moving range. *)
              let result = ref None in
              let splitter =
                Thread.create
                  (fun () ->
                    result :=
                      Some
                        (Router.split router ~tables:[ "L" ] ~from_:0 ~at
                           ~host:"127.0.0.1" ~port:(Server.port dst)))
                  ()
              in
              let oracle_m = ref [] in
              let j = ref 0 in
              while !result = None do
                let c = 32 + (!j mod 32) in
                (match Client.insert cl ~table:"M" [ ([| c; c |], !j) ] with
                | Ok _ -> oracle_m := ([| c; c |], !j) :: !oracle_m
                | Error _ -> ());
                incr j
              done;
              Thread.join splitter;
              (match Option.get !result with
              | Error m ->
                  checkb "abort names the orphaned table" true
                    (String.length m > 0)
              | Ok () -> Alcotest.fail "L-only split succeeded under M writes");
              checki "map unflipped after abort" 1
                (Router.map router).SM.epoch;
              checki "single entry still" 1
                (List.length (Router.map router).SM.entries);
              (* nothing lost: every acked M write is still served *)
              let got =
                reply_ok "M scan after abort"
                  (Client.live_range cl ~table:"M" ~lo:small_full_lo
                     ~hi:small_full_hi)
              in
              checki "M rows all intact after abort"
                (List.length !oracle_m)
                (List.length (Relation.tuples got));
              (* and the cluster still serves mutations normally *)
              let applied, _ =
                reply_ok "post-abort insert"
                  (Client.insert cl ~table:"L" [ ([| 1; 1 |], 424242) ])
              in
              checki "post-abort insert applied" 1 applied)))

(* {1 The spawned-process contract}

   [sqp serve --port 0] must print SQP_SERVE_PORT=<port> as its first
   stdout line (the machine-parseable contract [sqp route] builds on)
   and exit 0 on SIGTERM after a graceful drain. *)

let exe = Filename.concat (Filename.concat ".." "bin") "main.exe"

let test_spawned_serve () =
  if not (Sys.file_exists exe) then
    Alcotest.skip ()
  else begin
    let out_r, out_w = Unix.pipe ~cloexec:false () in
    let pid =
      Unix.create_process exe
        [|
          exe; "serve"; "--port"; "0"; "--points"; "60"; "--objects"; "4";
          "--shard"; "0/2";
        |]
        Unix.stdin out_w Unix.stderr
    in
    Unix.close out_w;
    let ic = Unix.in_channel_of_descr out_r in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
        close_in_noerr ic)
      (fun () ->
        let first = input_line ic in
        let prefix = "SQP_SERVE_PORT=" in
        checkb "first stdout line is the port line" true
          (String.length first > String.length prefix
          && String.sub first 0 (String.length prefix) = prefix);
        let port =
          int_of_string
            (String.sub first (String.length prefix)
               (String.length first - String.length prefix))
        in
        Client.with_connect ~port (fun cl ->
            let h = reply_ok "spawned health" (Client.health cl) in
            checkb "spawned shard is healthy" true h.P.healthy);
        Unix.kill pid Sys.sigterm;
        (try
           while true do
             ignore (input_line ic)
           done
         with End_of_file -> ());
        let _, status = Unix.waitpid [] pid in
        checkb "SIGTERM drain exits 0" true (status = Unix.WEXITED 0))
  end

let () =
  Alcotest.run "cluster"
    [
      ( "scatter-gather",
        [
          Alcotest.test_case "range/live/join differential at 1, 2, 4 shards"
            `Quick test_differential;
          Alcotest.test_case "unanswerable plans draw Bad_request" `Quick
            test_plan_rejection;
          Alcotest.test_case "shard-connection kills" `Quick test_shard_kills;
        ] );
      ( "ingest",
        [
          Alcotest.test_case "exactly-once workload over a faulty wire" `Quick
            test_workload_differential;
        ] );
      ( "rebalance",
        [
          Alcotest.test_case "split under concurrent mutations" `Quick
            test_rebalance;
          Alcotest.test_case "split omitting a live table aborts" `Quick
            test_split_abort;
        ] );
      ( "process",
        [
          Alcotest.test_case "serve reports its port and drains on SIGTERM"
            `Quick test_spawned_serve;
        ] );
    ]
