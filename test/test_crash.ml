(* Crash-consistency torture for the journaled page store.

   The discipline: run a workload once under a counting injector to
   learn how many logical mutating operations it performs, then replay
   it with a fail-stop kill before every single one of them (and again
   with the in-flight write torn), reopen cleanly, and require the store
   to hold exactly the pre-batch or the post-batch state — never a
   mixture.  The same is done at the index level, where "state" means
   the answers to a fixed battery of range queries, checked against
   in-memory oracles.  All schedules are deterministic: every failure
   message echoes the kill point / torn size / seed that reproduces it. *)

module FP = Sqp_storage.File_pager
module Faulty_io = Sqp_storage.Faulty_io
module Storage_error = Sqp_storage.Storage_error
module Journal = Sqp_storage.Journal
module Zindex = Sqp_btree.Zindex
module Persist = Sqp_btree.Persist
module Z = Sqp_zorder
module Obs = Sqp_obs

let check = Alcotest.(check bool)

let seeds =
  match Sys.getenv_opt "SQP_CRASH_SEEDS" with
  | None | Some "" -> [ 1; 7; 42 ]
  | Some s -> (
      match String.split_on_char ',' s |> List.filter_map int_of_string_opt with
      | [] -> [ 1; 7; 42 ]
      | l -> l)

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("sqp_crash_" ^ name)

let remove p = if Sys.file_exists p then Sys.remove p

let with_store name f =
  let path = tmp name in
  let aux path = [ path; path ^ ".tmp"; Journal.journal_path path;
                   Journal.journal_path (path ^ ".tmp") ] in
  let clean () = List.iter remove (aux path) in
  clean ();
  Fun.protect ~finally:clean (fun () -> f path)

let copy_file src dst =
  let ic = open_in_bin src in
  let n = in_channel_length ic in
  let buf = really_input_string ic n in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc buf;
  close_out oc

(* {1 Page-store level} *)

(* Fixed initial state: pages "p1".."p4" in slots 1-4. *)
let fp_setup path =
  List.iter remove [ path; Journal.journal_path path ];
  let s = FP.create ~page_bytes:64 path in
  for i = 1 to 4 do
    ignore (FP.alloc s (Bytes.of_string (Printf.sprintf "p%d" i)))
  done;
  FP.close s

(* The mutation under test: one explicit batch mixing update, free and
   two allocations (one into the freed slot, one extending the file). *)
let fp_mutate io path =
  let s = FP.open_existing ~io path in
  FP.begin_batch s;
  FP.write s 1 (Bytes.of_string "updated-1");
  FP.free s 2;
  ignore (FP.alloc s (Bytes.of_string "reused"));
  ignore (FP.alloc s (Bytes.of_string "extended"));
  FP.commit_batch s;
  FP.close s

(* Canonical content of a store: live (slot, payload) pairs in order,
   read through a clean reopen (which runs recovery first). *)
let fp_dump path =
  let s = FP.open_existing path in
  let out = ref [] in
  FP.iter s (fun slot payload -> out := (slot, Bytes.to_string payload) :: !out);
  FP.close s;
  List.rev !out

let fp_torture () =
  with_store "fp" (fun path ->
      fp_setup path;
      let pre = fp_dump path in
      let counter = Faulty_io.counting () in
      fp_mutate counter path;
      let total = Faulty_io.op_count counter in
      check "workload has crash points" true (total > 0);
      let post = fp_dump path in
      check "workload mutated the store" true (pre <> post);
      List.iter
        (fun torn ->
          for k = 0 to total - 1 do
            let where =
              Printf.sprintf "kill at op %d/%d (torn=%s)" k total
                (match torn with None -> "no" | Some n -> string_of_int n)
            in
            fp_setup path;
            (match fp_mutate (Faulty_io.crash_at ?torn k) path with
            | () -> Alcotest.failf "%s: expected the workload to die" where
            | exception Faulty_io.Crashed -> ());
            let got = fp_dump path in
            if got <> pre && got <> post then
              Alcotest.failf "%s: reopened store is a mixed state" where;
            (* The reopened store must stay fully usable. *)
            let s = FP.open_existing path in
            ignore (FP.alloc s (Bytes.of_string "after"));
            FP.close s
          done)
        [ None; Some 1; Some 37 ])

(* {1 Index level, against in-memory oracles} *)

let build_index ~seed n =
  let space = Z.Space.make ~dims:2 ~depth:8 in
  let points = Workload_gen.uniform_points ~seed ~side:256 ~n ~dims:2 in
  Zindex.of_points space
    (Array.mapi (fun i p -> (p, Workload_gen.payload ~seed i)) points)

(* A fixed battery of range queries (the shared generator's battery); an
   index's "answer" is the full result vector, so two stores agree only
   if every query agrees. *)
let battery index =
  List.map
    (fun box -> fst (Zindex.range_search index box))
    (Workload_gen.battery_boxes ~side:256 ~dims:2 ())

let load_battery path =
  battery (Persist.load ~path ~decode:int_of_string ())

let save ?io path index =
  ignore (Persist.save ?io ~path ~page_bytes:256 ~encode:string_of_int index)

let persist_torture () =
  with_store "persist" (fun path ->
      let v1 = build_index ~seed:123 300 in
      let v2 = build_index ~seed:77 350 in
      let bat1 = battery v1 and bat2 = battery v2 in
      check "oracles differ" true (bat1 <> bat2);
      (* Golden copy of the v1 store, restored before every schedule. *)
      let golden = path ^ ".golden" in
      Fun.protect
        ~finally:(fun () -> remove golden)
        (fun () ->
          save path v1;
          Alcotest.(check bool) "clean load matches oracle v1" true
            (load_battery path = bat1);
          copy_file path golden;
          let counter = Faulty_io.counting () in
          save ~io:counter path v2;
          let total = Faulty_io.op_count counter in
          check "save has crash points" true (total > 0);
          check "clean save lands on v2" true (load_battery path = bat2);
          List.iter
            (fun torn ->
              for k = 0 to total - 1 do
                let where =
                  Printf.sprintf "kill at op %d/%d (torn=%s)" k total
                    (match torn with None -> "no" | Some n -> string_of_int n)
                in
                List.iter remove
                  [ path; path ^ ".tmp"; Journal.journal_path path;
                    Journal.journal_path (path ^ ".tmp") ];
                copy_file golden path;
                (match save ~io:(Faulty_io.crash_at ?torn k) path v2 with
                | () -> Alcotest.failf "%s: expected the save to die" where
                | exception Faulty_io.Crashed -> ());
                let got = load_battery path in
                if got <> bat1 && got <> bat2 then
                  Alcotest.failf
                    "%s: recovered index answers match neither version" where
              done)
            [ None; Some 1; Some 29 ]))

let double_crash () =
  with_store "double" (fun path ->
      let v1 = build_index ~seed:123 300 in
      let v2 = build_index ~seed:77 350 in
      let bat1 = battery v1 and bat2 = battery v2 in
      let golden = path ^ ".golden" in
      Fun.protect
        ~finally:(fun () -> remove golden)
        (fun () ->
          save path v1;
          copy_file path golden;
          let counter = Faulty_io.counting () in
          save ~io:counter path v2;
          let total = Faulty_io.op_count counter in
          (* Crash the save at k1, then crash recovery itself at k2, then
             recover cleanly: still all-or-nothing. *)
          for k1 = 0 to total - 1 do
            for k2 = 0 to 2 do
              List.iter remove
                [ path; path ^ ".tmp"; Journal.journal_path path;
                  Journal.journal_path (path ^ ".tmp") ];
              copy_file golden path;
              (match save ~io:(Faulty_io.crash_at ~torn:3 k1) path v2 with
              | () -> Alcotest.failf "kill at %d: expected the save to die" k1
              | exception Faulty_io.Crashed -> ());
              (match
                 Persist.load ~io:(Faulty_io.crash_at k2) ~path
                   ~decode:int_of_string ()
               with
              | _ -> () (* recovery had fewer than k2 mutating ops *)
              | exception Faulty_io.Crashed -> ());
              let got = load_battery path in
              if got <> bat1 && got <> bat2 then
                Alcotest.failf
                  "kills at op %d then recovery op %d: mixed state" k1 k2
            done
          done))

(* {1 Seeded fault plans: flaky syscalls must be invisible} *)

let seeded_run seed () =
  with_store (Printf.sprintf "seeded_%d" seed) (fun path ->
      (* Enable tracing so the retry counters are recorded. *)
      let tracer = Obs.Trace.create ~capacity:16 Obs.Trace.Collect in
      Obs.Trace.set_global tracer;
      Obs.Metrics.reset (Obs.Metrics.global ());
      Fun.protect
        ~finally:(fun () -> Obs.Trace.set_global Obs.Trace.null)
        (fun () ->
          let v = build_index ~seed:123 300 in
          let bat = battery v in
          let io =
            Faulty_io.seeded ~p_eintr:0.05 ~p_short:0.15 ~p_eio:0.01 ~seed ()
          in
          save ~io path v;
          let got =
            battery (Persist.load ~io ~path ~decode:int_of_string ())
          in
          if got <> bat then
            Alcotest.failf "seed %d: faulty run answers differently" seed;
          let value name =
            Obs.Metrics.counter_value (Obs.Metrics.counter (Obs.Metrics.global ()) name)
          in
          let retries =
            value "file_pager.io.eintr_retries" + value "file_pager.io.transient_retries"
          in
          if retries = 0 then
            Alcotest.failf "seed %d: fault plan injected no retries" seed))

let () =
  Alcotest.run "crash"
    [
      ( "page store",
        [ Alcotest.test_case "kill at every op" `Quick fp_torture ] );
      ( "index save",
        [
          Alcotest.test_case "kill at every op" `Quick persist_torture;
          Alcotest.test_case "double crash" `Quick double_crash;
        ] );
      ( "seeded faults",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "transparent retries (seed %d)" seed)
              `Quick (seeded_run seed))
          seeds );
    ]
