module Z = Sqp_zorder
module B = Z.Bitstring
module D = Z.Decompose

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let s23 = Z.Space.make ~dims:2 ~depth:3

let strings els = List.map B.to_string els

let test_paper_figure2 () =
  (* The exact decomposition shown in Figure 2. *)
  let els = D.decompose_box s23 ~lo:[| 1; 0 |] ~hi:[| 3; 4 |] in
  Alcotest.(check (list string)) "elements"
    [ "00001"; "00011"; "001"; "010010"; "011000"; "011010" ]
    (strings els)

let test_whole_space () =
  let side = Z.Space.side s23 - 1 in
  let els = D.decompose_box s23 ~lo:[| 0; 0 |] ~hi:[| side; side |] in
  Alcotest.(check (list string)) "root only" [ "" ] (strings els)

let test_single_pixel () =
  let els = D.decompose_box s23 ~lo:[| 3; 5 |] ~hi:[| 3; 5 |] in
  Alcotest.(check (list string)) "one full-depth element" [ "011011" ] (strings els)

let test_half_space () =
  let els = D.decompose_box s23 ~lo:[| 0; 0 |] ~hi:[| 3; 7 |] in
  Alcotest.(check (list string)) "left half" [ "0" ] (strings els)

(* Boxes touching the 2^depth border — the element ranges these produce
   end exactly at the last z value, which is what the z-prefix sharder's
   final shard must absorb. *)
let test_border_touching_boxes () =
  let side = Z.Space.side s23 in
  let last = side - 1 in
  let cases =
    [
      ("right column", [| last; 0 |], [| last; last |]);
      ("top row", [| 0; last |], [| last; last |]);
      ("corner pixel", [| last; last |], [| last; last |]);
      ("origin pixel", [| 0; 0 |], [| 0; 0 |]);
      ("all but one row", [| 0; 1 |], [| last; last |]);
      ("interior crossing all quadrants", [| 1; 1 |], [| last - 1; last - 1 |]);
    ]
  in
  List.iter
    (fun (name, lo, hi) ->
      let classify = D.box_classifier s23 ~lo ~hi in
      let els = D.run s23 classify in
      check (name ^ ": exact cover") true (D.is_exact_cover s23 classify els);
      let area =
        List.fold_left (fun acc e -> acc +. Z.Element.cells s23 e) 0.0 els
      in
      let expected = float_of_int ((hi.(0) - lo.(0) + 1) * (hi.(1) - lo.(1) + 1)) in
      check (name ^ ": area") true (abs_float (area -. expected) < 0.5);
      (* The elements convert to in-range z intervals — the sharder clips
         against these, so the last one must not overshoot 2^total - 1. *)
      let intervals = Z.Zrange.elements_to_intervals s23 els in
      List.iter
        (fun (ilo, ihi) ->
          check (name ^ ": interval in range") true
            (0 <= ilo && ilo <= ihi && ihi <= (side * side) - 1))
        intervals;
      if hi.(0) = last && hi.(1) = last then
        check (name ^ ": reaches the last z value") true
          (snd (List.nth intervals (List.length intervals - 1)) = (side * side) - 1))
    cases

let test_invalid_box () =
  List.iter
    (fun (lo, hi) ->
      match D.decompose_box s23 ~lo ~hi with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [
      ([| 3; 3 |], [| 2; 3 |]);
      ([| 0; 0 |], [| 8; 3 |]);
      ([| -1; 0 |], [| 3; 3 |]);
      ([| 0 |], [| 3 |]);
    ]

let test_count_matches_run () =
  for xlo = 0 to 3 do
    for yhi = 3 to 7 do
      let lo = [| xlo; 1 |] and hi = [| 5; yhi |] in
      check_int "count = |run|"
        (List.length (D.decompose_box s23 ~lo ~hi))
        (D.count s23 (D.box_classifier s23 ~lo ~hi))
    done
  done

let test_seq_matches_run () =
  let lo = [| 1; 0 |] and hi = [| 3; 4 |] in
  let eager = D.decompose_box s23 ~lo ~hi in
  let lazy_ = List.of_seq (D.to_seq s23 (D.box_classifier s23 ~lo ~hi)) in
  check "same" true (List.equal B.equal eager lazy_)

let test_seq_from () =
  let lo = [| 1; 0 |] and hi = [| 3; 4 |] in
  let classify = D.box_classifier s23 ~lo ~hi in
  let all = D.decompose_box s23 ~lo ~hi in
  (* From every possible pixel z value, seq_from must produce exactly the
     suffix of elements whose zhi >= that value. *)
  for r = 0 to 63 do
    let zmin = B.of_int r ~width:6 in
    let expected =
      List.filter (fun e -> B.compare (Z.Element.zhi s23 e) zmin >= 0) all
    in
    let got = List.of_seq (D.seq_from s23 classify zmin) in
    if not (List.equal B.equal expected got) then
      Alcotest.failf "seq_from mismatch at z=%d" r
  done

let test_max_level () =
  let options = { D.max_level = Some 2; max_elements = None } in
  let els = D.decompose_box ~options s23 ~lo:[| 1; 0 |] ~hi:[| 3; 4 |] in
  check "coarse" true (List.for_all (fun e -> Z.Element.level e <= 2) els);
  (* Coarse decomposition over-approximates: every exact element is
     contained in some coarse element. *)
  let exact = D.decompose_box s23 ~lo:[| 1; 0 |] ~hi:[| 3; 4 |] in
  check "covers exact" true
    (List.for_all
       (fun e -> List.exists (fun c -> Z.Element.contains c e) els)
       exact)

let test_max_elements_budget () =
  let options = { D.max_level = None; max_elements = Some 3 } in
  let els = D.decompose_box ~options s23 ~lo:[| 1; 0 |] ~hi:[| 3; 4 |] in
  let exact = D.decompose_box s23 ~lo:[| 1; 0 |] ~hi:[| 3; 4 |] in
  check "fewer elements" true (List.length els <= List.length exact);
  check "covers exact" true
    (List.for_all
       (fun e -> List.exists (fun c -> Z.Element.contains c e) els)
       exact)

let test_is_exact_cover () =
  let lo = [| 1; 0 |] and hi = [| 3; 4 |] in
  let classify = D.box_classifier s23 ~lo ~hi in
  check "exact" true (D.is_exact_cover s23 classify (D.run s23 classify));
  (* Remove one element: no longer a cover. *)
  match D.run s23 classify with
  | _ :: rest -> check "broken" false (D.is_exact_cover s23 classify rest)
  | [] -> Alcotest.fail "unexpected empty decomposition"

let test_classifier_classes () =
  let classify = D.box_classifier s23 ~lo:[| 2; 0 |] ~hi:[| 3; 3 |] in
  check "inside" true (classify (B.of_string "001") = D.Inside);
  check "outside" true (classify (B.of_string "1") = D.Outside);
  check "crosses" true (classify B.empty = D.Crosses)

(* Decomposition cache *)

let test_cache_hit_miss () =
  D.reset_cache ();
  D.set_cache_enabled true;
  let lo = [| 1; 0 |] and hi = [| 3; 4 |] in
  let first = D.decompose_box s23 ~lo ~hi in
  let stats = D.cache_stats () in
  check_int "one miss" 1 stats.D.misses;
  check_int "no hit yet" 0 stats.D.hits;
  let second = D.decompose_box s23 ~lo ~hi in
  let stats = D.cache_stats () in
  check_int "still one miss" 1 stats.D.misses;
  check_int "one hit" 1 stats.D.hits;
  check "hit returns the same elements" true (List.equal B.equal first second);
  (* mutating the caller's arrays must not poison the cache key *)
  lo.(0) <- 0;
  let moved = D.decompose_box s23 ~lo:[| 1; 0 |] ~hi in
  check "copied key unaffected by mutation" true (List.equal B.equal first moved);
  check_int "mutation-safe key still hits" 2 (D.cache_stats ()).D.hits

let test_cache_distinguishes_inputs () =
  D.reset_cache ();
  let a = D.decompose_box s23 ~lo:[| 1; 0 |] ~hi:[| 3; 4 |] in
  let b = D.decompose_box s23 ~lo:[| 1; 0 |] ~hi:[| 3; 5 |] in
  check "different boxes differ" false (List.equal B.equal a b);
  (* same box, different options -> different entry, not a stale hit *)
  let options = { D.max_level = Some 2; max_elements = None } in
  let coarse = D.decompose_box ~options s23 ~lo:[| 1; 0 |] ~hi:[| 3; 4 |] in
  check "options are part of the key" false (List.equal B.equal a coarse);
  (* different space, same bounds *)
  let s24 = Z.Space.make ~dims:2 ~depth:4 in
  let deeper = D.decompose_box s24 ~lo:[| 1; 0 |] ~hi:[| 3; 4 |] in
  check "space is part of the key" false (List.equal B.equal a deeper);
  check_int "four distinct misses" 4 (D.cache_stats ()).D.misses

let test_cache_eviction () =
  D.reset_cache ~capacity:2 ();
  let box i = D.decompose_box s23 ~lo:[| 0; 0 |] ~hi:[| i; i |] |> ignore in
  box 1;
  box 2;
  box 3;
  (* capacity 2: box 1 evicted *)
  check_int "one eviction" 1 (D.cache_stats ()).D.evictions;
  box 1;
  let stats = D.cache_stats () in
  check_int "re-decomposed after eviction" 4 stats.D.misses;
  check_int "no hits in this sequence" 0 stats.D.hits;
  D.reset_cache ()

let test_cache_disabled () =
  D.reset_cache ();
  D.set_cache_enabled false;
  check "reports disabled" false (D.cache_enabled ());
  let lo = [| 1; 0 |] and hi = [| 3; 4 |] in
  let a = D.decompose_box s23 ~lo ~hi in
  let b = D.decompose_box s23 ~lo ~hi in
  check "still correct" true (List.equal B.equal a b);
  let stats = D.cache_stats () in
  check_int "no misses recorded" 0 stats.D.misses;
  check_int "no hits recorded" 0 stats.D.hits;
  D.set_cache_enabled true;
  check "re-enabled" true (D.cache_enabled ())

let test_cache_invalid_box_still_raises () =
  D.reset_cache ();
  (match D.decompose_box s23 ~lo:[| 3; 3 |] ~hi:[| 2; 3 |] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  check_int "invalid input never cached" 0 (D.cache_stats ()).D.misses

(* The LRU itself, driven directly. *)
let test_lru_unit () =
  let lru = Z.Lru.create ~capacity:2 in
  check_int "capacity" 2 (Z.Lru.capacity lru);
  check "evict on empty-miss" false (Z.Lru.add lru "a" 1);
  check "no evict under capacity" false (Z.Lru.add lru "b" 2);
  check "find a" true (Z.Lru.find lru "a" = Some 1);
  (* "a" is now most recent, so inserting "c" evicts "b" *)
  check "evict at capacity" true (Z.Lru.add lru "c" 3);
  check "b evicted" true (Z.Lru.find lru "b" = None);
  check "a survives" true (Z.Lru.find lru "a" = Some 1);
  check "c present" true (Z.Lru.find lru "c" = Some 3);
  check_int "length" 2 (Z.Lru.length lru);
  (* overwrite refreshes, does not evict *)
  check "overwrite" false (Z.Lru.add lru "a" 10);
  check "overwritten" true (Z.Lru.find lru "a" = Some 10);
  Z.Lru.clear lru;
  check_int "cleared" 0 (Z.Lru.length lru);
  check "cleared find" true (Z.Lru.find lru "a" = None);
  match Z.Lru.create ~capacity:0 with
  | _ -> Alcotest.fail "capacity 0 should raise"
  | exception Invalid_argument _ -> ()

(* Properties *)

let gen_box side =
  QCheck2.Gen.(
    let coord = int_bound (side - 1) in
    map
      (fun (x1, x2, y1, y2) -> ([| min x1 x2; min y1 y2 |], [| max x1 x2; max y1 y2 |]))
      (quad coord coord coord coord))

let space6 = Z.Space.make ~dims:2 ~depth:6

let prop_sorted_disjoint =
  QCheck2.Test.make ~name:"decomposition z-sorted and disjoint" ~count:300
    (gen_box 64) (fun (lo, hi) ->
      let els = D.decompose_box space6 ~lo ~hi in
      let rec ok = function
        | [] | [ _ ] -> true
        | a :: (b :: _ as rest) -> Z.Element.precedes a b && ok rest
      in
      ok els)

let prop_area_preserved =
  QCheck2.Test.make ~name:"decomposition covers exactly the box area" ~count:300
    (gen_box 64) (fun (lo, hi) ->
      let els = D.decompose_box space6 ~lo ~hi in
      let area =
        List.fold_left (fun acc e -> acc +. Z.Element.cells space6 e) 0.0 els
      in
      let expected =
        float_of_int ((hi.(0) - lo.(0) + 1) * (hi.(1) - lo.(1) + 1))
      in
      abs_float (area -. expected) < 0.5)

let prop_exact_cover_small =
  QCheck2.Test.make ~name:"exact cover on tiny grids" ~count:100 (gen_box 8)
    (fun (lo, hi) ->
      let classify = D.box_classifier s23 ~lo ~hi in
      D.is_exact_cover s23 classify (D.run s23 classify))

let prop_pixel_membership =
  QCheck2.Test.make ~name:"pixel in box <=> covered by an element" ~count:100
    QCheck2.Gen.(pair (gen_box 16) (pair (int_bound 15) (int_bound 15)))
    (fun ((lo, hi), (px, py)) ->
      let s = Z.Space.make ~dims:2 ~depth:4 in
      let els = D.decompose_box s ~lo ~hi in
      let z = Z.Interleave.shuffle s [| px; py |] in
      let covered = List.exists (fun e -> B.is_prefix e z) els in
      let in_box = px >= lo.(0) && px <= hi.(0) && py >= lo.(1) && py <= hi.(1) in
      covered = in_box)

let () =
  Alcotest.run "decompose"
    [
      ( "unit",
        [
          Alcotest.test_case "paper figure 2" `Quick test_paper_figure2;
          Alcotest.test_case "whole space" `Quick test_whole_space;
          Alcotest.test_case "single pixel" `Quick test_single_pixel;
          Alcotest.test_case "half space" `Quick test_half_space;
          Alcotest.test_case "border-touching boxes" `Quick test_border_touching_boxes;
          Alcotest.test_case "invalid box" `Quick test_invalid_box;
          Alcotest.test_case "count = run length" `Quick test_count_matches_run;
          Alcotest.test_case "lazy = eager" `Quick test_seq_matches_run;
          Alcotest.test_case "seq_from skips correctly" `Quick test_seq_from;
          Alcotest.test_case "max_level coarsening" `Quick test_max_level;
          Alcotest.test_case "max_elements budget" `Quick test_max_elements_budget;
          Alcotest.test_case "is_exact_cover" `Quick test_is_exact_cover;
          Alcotest.test_case "classifier classes" `Quick test_classifier_classes;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss accounting" `Quick test_cache_hit_miss;
          Alcotest.test_case "key covers box, options, space" `Quick
            test_cache_distinguishes_inputs;
          Alcotest.test_case "LRU eviction" `Quick test_cache_eviction;
          Alcotest.test_case "escape hatch" `Quick test_cache_disabled;
          Alcotest.test_case "invalid boxes still raise" `Quick
            test_cache_invalid_box_still_raises;
          Alcotest.test_case "lru unit" `Quick test_lru_unit;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_sorted_disjoint;
            prop_area_preserved;
            prop_exact_cover_small;
            prop_pixel_membership;
          ] );
    ]
