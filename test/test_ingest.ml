(* Differential torture suite for the live-ingest path.

   Every seeded mixed schedule from [Workload_gen] is replayed against
   the live table and an in-memory oracle side by side: each read must
   return identical rows, stashed snapshots must stay frozen while
   mutations continue, the sequential path must produce bit-identical
   scan statistics across replays, and the whole battery runs again on a
   durable store with fail-stop crashes injected at every I/O of chosen
   batches (seeds via SQP_INGEST_SEEDS, mirroring SQP_CRASH_SEEDS).
   Online index build is verified bit-identical against a from-scratch
   build, including crash-mid-backfill, and a multi-domain run checks
   that snapshots never observe a half-applied batch. *)

module L = Sqp_btree.Live
module Zindex = Sqp_btree.Zindex
module Persist = Sqp_btree.Persist
module Faulty_io = Sqp_storage.Faulty_io
module Journal = Sqp_storage.Journal
module Z = Sqp_zorder
module WG = Workload_gen
module Pool = Sqp_parallel.Pool

let check = Alcotest.(check bool)

let seeds =
  match Sys.getenv_opt "SQP_INGEST_SEEDS" with
  | None | Some "" -> [ 1; 7; 42 ]
  | Some s -> (
      match String.split_on_char ',' s |> List.filter_map int_of_string_opt with
      | [] -> [ 1; 7; 42 ]
      | l -> l)

let space = Z.Space.make ~dims:2 ~depth:8

let encode = string_of_int

let decode = int_of_string

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("sqp_ingest_" ^ name)

let remove p = if Sys.file_exists p then Sys.remove p

let with_store name f =
  let path = tmp name in
  let aux =
    [ path; path ^ ".tmp"; Journal.journal_path path;
      Journal.journal_path (path ^ ".tmp") ]
  in
  let clean () = List.iter remove aux in
  clean ();
  Fun.protect ~finally:clean (fun () -> f path)

let copy_file src dst =
  let ic = open_in_bin src in
  let n = in_channel_length ic in
  let buf = really_input_string ic n in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc buf;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let entries_of t = L.snapshot_entries (L.snapshot t)

let pp_entries es =
  String.concat ";"
    (List.map
       (fun (p, v) ->
         Printf.sprintf "(%s):%d"
           (String.concat "," (Array.to_list (Array.map string_of_int p)))
           v)
       es)

let check_rows what expected got =
  if expected <> got then
    Alcotest.failf "%s: oracle [%s] vs live [%s]" what (pp_entries expected)
      (pp_entries got)

(* {1 Cowtree vs a sorted-list oracle} *)

module IK = struct
  type t = int

  let compare = compare
end

module C = Sqp_btree.Cowtree.Make (IK)

let cowtree_differential () =
  let rng = Sqp_workload.Rng.create ~seed:5 in
  (* Oracle: sorted assoc list; insert after equals, remove first equal. *)
  let insert_o l k v =
    let rec go = function
      | (k', v') :: rest when k' <= k -> (k', v') :: go rest
      | rest -> (k, v) :: rest
    in
    go l
  in
  let remove_o l k =
    let rec go = function
      | [] -> None
      | (k', _) :: rest when k' = k -> Some rest
      | e :: rest -> Option.map (fun r -> e :: r) (go rest)
    in
    go l
  in
  let t = ref (C.empty ~leaf_capacity:4 ~internal_capacity:4 ()) in
  let o = ref [] in
  let snaps = ref [] in
  for i = 0 to 999 do
    let k = Sqp_workload.Rng.int rng 50 in
    if Sqp_workload.Rng.int rng 3 = 0 then begin
      match (C.remove !t k, remove_o !o k) with
      | None, None -> ()
      | Some t', Some o' ->
          t := t';
          o := o'
      | _ -> Alcotest.failf "step %d: remove presence disagrees (key %d)" i k
    end
    else begin
      t := C.insert !t k i;
      o := insert_o !o k i
    end;
    (match C.check_invariants !t with
    | Ok () -> ()
    | Error e -> Alcotest.failf "step %d: invariant broken: %s" i e);
    if C.to_list !t <> !o then Alcotest.failf "step %d: contents diverge" i;
    if C.length !t <> List.length !o then Alcotest.failf "step %d: length diverges" i;
    if i mod 100 = 0 then snaps := (!t, !o) :: !snaps
  done;
  (* Old roots are frozen: every stashed snapshot still answers. *)
  List.iter
    (fun (t, o) ->
      check "snapshot frozen" true (C.to_list t = o);
      List.iter
        (fun k ->
          let expect = List.filter_map (fun (k', v) -> if k' = k then Some v else None) o in
          check "find_all on snapshot" true (C.find_all t k = expect))
        [ 0; 7; 23; 49 ])
    !snaps;
  (* Bulk build must agree with the incremental tree at every size,
     including exact multiples of the fanout. *)
  List.iter
    (fun n ->
      let entries = Array.init n (fun i -> (i / 3, i)) in
      let b = C.of_sorted_array ~leaf_capacity:4 ~internal_capacity:4 entries in
      (match C.check_invariants b with
      | Ok () -> ()
      | Error e -> Alcotest.failf "bulk %d: invariant broken: %s" n e);
      check
        (Printf.sprintf "bulk build of %d entries" n)
        true
        (C.to_list b = Array.to_list entries))
    [ 0; 1; 4; 5; 16; 17; 64; 100; 256; 257 ]

(* {1 Differential replay of mixed schedules} *)

let replay_op t o op =
  match op with
  | WG.Insert (p, v) ->
      ignore (L.insert t p v);
      WG.Oracle.insert o p v
  | WG.Delete p ->
      let live = L.delete t p and oracle = WG.Oracle.delete o p in
      if live <> oracle then Alcotest.failf "delete presence disagrees"
  | WG.Range box ->
      check_rows "range" (WG.Oracle.range o box) (fst (L.range_search (L.snapshot t) box))
  | WG.Scan -> check_rows "scan" (WG.Oracle.scan o) (entries_of t)

let differential seed () =
  let t = L.create ~encode ~decode space in
  let o = WG.Oracle.create space in
  let sched = WG.generate ~seed ~n:400 () in
  let stashes = ref [] in
  List.iteri
    (fun i op ->
      replay_op t o op;
      if i mod 50 = 0 then
        stashes := (i, L.snapshot t, WG.Oracle.copy o) :: !stashes)
    sched;
  check "oracle and live agree on size" true
    (WG.Oracle.length o = L.length t);
  (* Snapshot isolation: mutations since the stash must be invisible. *)
  let box = WG.random_box (Sqp_workload.Rng.create ~seed:(seed + 1)) ~side:256 ~dims:2 in
  List.iter
    (fun (i, snap, oc) ->
      check_rows
        (Printf.sprintf "stashed snapshot at op %d" i)
        (WG.Oracle.scan oc) (L.snapshot_entries snap);
      check_rows
        (Printf.sprintf "stashed range at op %d" i)
        (WG.Oracle.range oc box)
        (fst (L.range_search snap box)))
    !stashes

(* The sequential path must be deterministic down to its counters: two
   replays of one schedule yield bit-identical [scan_stats]. *)
let stats_deterministic seed () =
  let run () =
    let t = L.create ~encode ~decode space in
    let stats = ref [] in
    List.iter
      (fun op ->
        match op with
        | WG.Insert (p, v) -> ignore (L.insert t p v)
        | WG.Delete p -> ignore (L.delete t p)
        | WG.Range box ->
            stats := snd (L.range_search (L.snapshot t) box) :: !stats
        | WG.Scan -> ())
      (WG.generate ~seed ~n:300 ());
    List.rev !stats
  in
  let a = run () and b = run () in
  check "two replays produce identical scan stats" true (a = b)

(* {1 Durable replay, clean and crash-injected} *)

let mutating_batches ?(batch = 4) sched =
  let muts = List.filter WG.mutates sched in
  let rec chunk = function
    | [] -> []
    | l ->
        let rec take n = function
          | x :: rest when n > 0 ->
              let a, b = take (n - 1) rest in
              (x :: a, b)
          | rest -> ([], rest)
        in
        let a, b = take batch l in
        a :: chunk b
  in
  chunk muts

let to_live_ops ops =
  List.map
    (function
      | WG.Insert (p, v) -> L.Insert (p, v)
      | WG.Delete p -> L.Delete p
      | WG.Range _ | WG.Scan -> assert false)
    ops

let oracle_apply o ops =
  List.iter
    (function
      | WG.Insert (p, v) -> WG.Oracle.insert o p v
      | WG.Delete p -> ignore (WG.Oracle.delete o p)
      | WG.Range _ | WG.Scan -> assert false)
    ops

let durable_roundtrip seed () =
  with_store (Printf.sprintf "dur_%d" seed) (fun path ->
      let t = L.create_durable ~encode ~decode ~path space in
      let o = WG.Oracle.create space in
      let sched = WG.generate ~seed ~n:300 () in
      List.iter (fun op -> replay_op t o op) sched;
      let expect = WG.Oracle.scan o in
      check_rows "before close" expect (entries_of t);
      L.close t;
      let t = L.open_durable ~encode ~decode ~path () in
      check "space recovered" true (L.space t = space);
      check_rows "after reopen (log replay)" expect (entries_of t);
      (* Checkpoint truncates the log; contents must not move. *)
      L.checkpoint t;
      check_rows "after checkpoint" expect (entries_of t);
      L.close t;
      let t = L.open_durable ~encode ~decode ~path () in
      check_rows "after reopen from base image" expect (entries_of t);
      L.close t)

(* Kill the store at every I/O of a batch: the reopened table must hold
   exactly the pre-batch or the post-batch rows — never a mixture. *)
let crash_torture seed () =
  with_store (Printf.sprintf "crash_%d" seed) (fun path ->
      let golden = path ^ ".golden" in
      Fun.protect ~finally:(fun () -> remove golden) @@ fun () ->
      let sched = WG.generate ~seed ~n:120 () in
      let batches = mutating_batches sched in
      L.close (L.create_durable ~encode ~decode ~path space);
      let o = WG.Oracle.create space in
      List.iteri
        (fun j ops ->
          (* Torture roughly every fourth batch; apply the rest plainly. *)
          if j mod 4 = 3 then begin
            let pre = WG.Oracle.scan o in
            let post =
              let oc = WG.Oracle.copy o in
              oracle_apply oc ops;
              WG.Oracle.scan oc
            in
            copy_file path golden;
            (* Learn how many I/O ops (open + batch) the step costs. *)
            let counter = Faulty_io.counting () in
            let tc = L.open_durable ~io:counter ~encode ~decode ~path () in
            ignore (L.apply tc (to_live_ops ops));
            L.close tc;
            let total = Faulty_io.op_count counter in
            check "step has crash points" true (total > 0);
            for k = 0 to total - 1 do
              let where = Printf.sprintf "batch %d, kill at op %d/%d" j k total in
              List.iter remove
                [ path; Journal.journal_path path ];
              copy_file golden path;
              (match
                 let tk = L.open_durable ~io:(Faulty_io.crash_at k) ~encode ~decode ~path () in
                 ignore (L.apply tk (to_live_ops ops));
                 L.close tk
               with
              | () -> Alcotest.failf "%s: expected the step to die" where
              | exception Faulty_io.Crashed -> ());
              let tr = L.open_durable ~encode ~decode ~path () in
              let got = entries_of tr in
              L.close tr;
              if got <> pre && got <> post then
                Alcotest.failf "%s: reopened table is a mixed state" where
            done;
            (* Restore the pre-batch store and land the batch for real. *)
            List.iter remove [ path; Journal.journal_path path ];
            copy_file golden path
          end;
          let t2 = L.open_durable ~encode ~decode ~path () in
          ignore (L.apply t2 (to_live_ops ops));
          oracle_apply o ops;
          check_rows (Printf.sprintf "after batch %d" j) (WG.Oracle.scan o)
            (entries_of t2);
          L.close t2)
        batches)

(* Flaky syscalls (EINTR, short I/O, transient EIO) must be invisible. *)
let seeded_faults seed () =
  with_store (Printf.sprintf "flaky_%d" seed) (fun path ->
      let io = Faulty_io.seeded ~p_eintr:0.05 ~p_short:0.15 ~p_eio:0.01 ~seed () in
      let t = L.create_durable ~io ~encode ~decode ~path space in
      let o = WG.Oracle.create space in
      List.iter (fun op -> replay_op t o op) (WG.generate ~seed ~n:200 ());
      L.close t;
      let t = L.open_durable ~io ~encode ~decode ~path () in
      check_rows "flaky run equals oracle" (WG.Oracle.scan o) (entries_of t);
      L.close t)

(* {1 Online index build} *)

(* Distinct points with point-derived payloads, so index files can be
   compared byte-for-byte without duplicate-order ambiguity. *)
let distinct_points ~seed n =
  let rng = Sqp_workload.Rng.create ~seed in
  let seen = Hashtbl.create (2 * n) in
  let out = ref [] and have = ref 0 in
  while !have < n do
    let p = [| Sqp_workload.Rng.int rng 256; Sqp_workload.Rng.int rng 256 |] in
    if not (Hashtbl.mem seen p) then begin
      Hashtbl.replace seen p ();
      out := p :: !out;
      incr have
    end
  done;
  !out

let point_payload p = (p.(0) * 31) + p.(1)

let online_build seed () =
  with_store (Printf.sprintf "online_%d" seed) (fun path ->
      let t = L.create ~encode ~decode space in
      let base, extra =
        match distinct_points ~seed 360 with
        | l ->
            let rec split n = function
              | x :: rest when n > 0 ->
                  let a, b = split (n - 1) rest in
                  (x :: a, b)
              | rest -> ([], rest)
            in
            split 300 l
      in
      List.iter (fun p -> ignore (L.insert t p (point_payload p))) base;
      (* Feed writes at every chunk boundary: fresh inserts plus deletes
         of base points, so catch-up must handle both. *)
      let pending = ref extra and victims = ref base in
      let boundaries = ref 0 in
      let on_chunk _ =
        incr boundaries;
        (match !pending with
        | p :: rest ->
            pending := rest;
            ignore (L.insert t p (point_payload p))
        | [] -> ());
        match !victims with
        | v :: rest ->
            victims := rest;
            ignore (L.delete t v)
        | [] -> ()
      in
      let index, at_seq = L.rebuild_online ~chunk_size:32 ~on_chunk t in
      check "writes raced the backfill" true (!boundaries > 0);
      check "build reflects the final batch" true (at_seq = L.seq t);
      (* The online-built index must be bit-identical to a from-scratch
         build over the final state. *)
      let final = entries_of t in
      let scratch = Zindex.of_points space (Array.of_list final) in
      let pa = path ^ ".online" and pb = path ^ ".scratch" in
      Fun.protect
        ~finally:(fun () ->
          List.iter remove
            [ pa; pb; pa ^ ".tmp"; pb ^ ".tmp"; Journal.journal_path pa;
              Journal.journal_path pb; Journal.journal_path (pa ^ ".tmp");
              Journal.journal_path (pb ^ ".tmp") ])
        (fun () ->
          ignore (Persist.save ~path:pa ~page_bytes:256 ~encode index);
          ignore (Persist.save ~path:pb ~page_bytes:256 ~encode scratch);
          check "online build is bit-identical to from-scratch" true
            (read_file pa = read_file pb));
      (* The swap also compacted the live tree: contents unchanged. *)
      check_rows "swap preserved contents" final (entries_of t))

let online_build_crash seed () =
  with_store (Printf.sprintf "onlinecrash_%d" seed) (fun path ->
      let idx = path ^ ".idx" in
      let idx_aux =
        [ idx; idx ^ ".tmp"; Journal.journal_path idx;
          Journal.journal_path (idx ^ ".tmp") ]
      in
      Fun.protect ~finally:(fun () -> List.iter remove idx_aux) @@ fun () ->
      let points = distinct_points ~seed 200 in
      let fill t = List.iter (fun p -> ignore (L.insert t p (point_payload p))) points in
      (* Learn the I/O cost of a full create + rebuild + save run. *)
      let counter = Faulty_io.counting () in
      let t = L.create_durable ~io:counter ~encode ~decode ~path space in
      fill t;
      ignore (L.save_index ~io:counter ~path:idx t);
      L.close t;
      let expect =
        let t = L.open_durable ~encode ~decode ~path () in
        let e = entries_of t in
        L.close t;
        e
      in
      let good = read_file idx in
      let total = Faulty_io.op_count counter in
      check "run has crash points" true (total > 0);
      (* Kill at a spread of points; the store must reopen to the full
         contents and the index file must be complete or absent. *)
      let step = max 1 (total / 40) in
      let k = ref 0 in
      while !k < total do
        let where = Printf.sprintf "kill at op %d/%d" !k total in
        List.iter remove (path :: Journal.journal_path path :: idx_aux);
        let io = Faulty_io.crash_at !k in
        (match
           let t = L.create_durable ~io ~encode ~decode ~path space in
           fill t;
           ignore (L.save_index ~io ~path:idx t);
           L.close t
         with
        | () -> Alcotest.failf "%s: expected the run to die" where
        | exception Faulty_io.Crashed -> ());
        (* The journaled store replays to a prefix of the batches: it
           must open cleanly (or not exist yet), never as a mixed
           state. *)
        (if Sys.file_exists path then
           match L.open_durable ~encode ~decode ~path () with
           | t -> L.close t
           | exception Sqp_storage.Storage_error.Corrupt _ ->
               Alcotest.failf "%s: store corrupt after crash" where);
        (* The index is all-or-nothing: absent, or byte-identical to the
           crash-free build. *)
        if Sys.file_exists idx then begin
          if read_file idx <> good then
            Alcotest.failf "%s: index file is a torso" where
        end;
        k := !k + step
      done;
      (* One clean run to confirm the harness itself converges. *)
      List.iter remove (path :: Journal.journal_path path :: idx_aux);
      let t = L.create_durable ~encode ~decode ~path space in
      fill t;
      ignore (L.save_index ~path:idx t);
      check "clean index matches" true (read_file idx = good);
      check_rows "clean store matches" expect (entries_of t);
      L.close t)

(* {1 Concurrency: snapshots never see a torn batch} *)

let concurrency () =
  let t = L.create ~encode ~decode space in
  let nwriters = 3 and batches_per_writer = 25 and batch_size = 5 in
  let writer w () =
    let rng = Sqp_workload.Rng.create ~seed:(1000 + w) in
    let out = ref [] in
    for b = 0 to batches_per_writer - 1 do
      let ops =
        List.init batch_size (fun j ->
            let p =
              [| Sqp_workload.Rng.int rng 256; Sqp_workload.Rng.int rng 256 |]
            in
            L.Insert (p, (w * 1_000_000) + (b * 1_000) + j))
      in
      let seq, applied = L.apply t ops in
      if applied <> batch_size then failwith "insert batch not fully applied";
      out := (seq, ops) :: !out
    done;
    !out
  in
  let reader () =
    for _ = 1 to 400 do
      let snap = L.snapshot t in
      let tally = Hashtbl.create 64 in
      List.iter
        (fun (_, v) ->
          let batch = v / 1_000 in
          Hashtbl.replace tally batch (1 + Option.value ~default:0 (Hashtbl.find_opt tally batch)))
        (L.snapshot_entries snap);
      Hashtbl.iter
        (fun batch n ->
          if n <> batch_size then
            failwith
              (Printf.sprintf
                 "snapshot at seq %d sees %d/%d rows of batch %d: torn batch"
                 (L.snapshot_seq snap) n batch_size batch))
        tally
    done;
    []
  in
  let results =
    Pool.with_pool ~domains:(nwriters + 2) (fun pool ->
        Pool.run pool
          (List.init nwriters (fun w -> writer w) @ [ reader; reader ]))
  in
  let committed = List.concat results in
  check "every batch got a distinct sequence number" true
    (let seqs = List.map fst committed in
     List.length (List.sort_uniq compare seqs) = List.length seqs);
  (* Final state must equal a serialized replay in commit order. *)
  let replay = L.create ~encode ~decode space in
  List.iter
    (fun (_, ops) -> ignore (L.apply replay ops))
    (List.sort (fun (a, _) (b, _) -> compare a b) committed);
  check_rows "final state equals serialized replay" (entries_of replay) (entries_of t)

(* {1 Join differentials} *)

let join_differential seed () =
  let ta = L.create ~encode ~decode space and tb = L.create ~encode ~decode space in
  let oa = WG.Oracle.create space and ob = WG.Oracle.create space in
  List.iter
    (fun op ->
      match op with
      | WG.Insert (p, v) ->
          ignore (L.insert ta p v);
          WG.Oracle.insert oa p v
      | WG.Delete p ->
          ignore (L.delete ta p);
          ignore (WG.Oracle.delete oa p)
      | _ -> ())
    (WG.generate ~seed ~n:150 ());
  List.iter
    (fun op ->
      match op with
      | WG.Insert (p, v) ->
          ignore (L.insert tb p v);
          WG.Oracle.insert ob p v
      | WG.Delete p ->
          ignore (L.delete tb p);
          ignore (WG.Oracle.delete ob p)
      | _ -> ())
    (WG.generate ~seed:(seed + 100) ~n:150 ());
  let sa = L.snapshot ta and sb = L.snapshot tb in
  (* Oracle join: nested loops over z-sorted sides, point equality. *)
  let expect =
    List.concat_map
      (fun (p, va) ->
        List.filter_map
          (fun (q, vb) ->
            if Sqp_geom.Point.equal p q then Some ((p, va), (q, vb)) else None)
          (WG.Oracle.scan ob))
      (WG.Oracle.scan oa)
  in
  let got = L.equi_join sa sb in
  check "join sizes agree" true (List.length expect = List.length got);
  check "join pairs agree" true
    (List.sort compare expect = List.sort compare got)

let () =
  Alcotest.run "ingest"
    [
      ( "cowtree",
        [ Alcotest.test_case "differential vs sorted list" `Quick cowtree_differential ] );
      ( "differential",
        List.concat_map
          (fun seed ->
            [
              Alcotest.test_case
                (Printf.sprintf "mixed schedule (seed %d)" seed)
                `Quick (differential seed);
              Alcotest.test_case
                (Printf.sprintf "deterministic stats (seed %d)" seed)
                `Quick (stats_deterministic seed);
            ])
          seeds );
      ( "durable",
        List.concat_map
          (fun seed ->
            [
              Alcotest.test_case
                (Printf.sprintf "roundtrip (seed %d)" seed)
                `Quick (durable_roundtrip seed);
              Alcotest.test_case
                (Printf.sprintf "kill at every op (seed %d)" seed)
                `Quick (crash_torture seed);
              Alcotest.test_case
                (Printf.sprintf "transparent flaky I/O (seed %d)" seed)
                `Quick (seeded_faults seed);
            ])
          seeds );
      ( "online build",
        List.concat_map
          (fun seed ->
            [
              Alcotest.test_case
                (Printf.sprintf "bit-identical under writes (seed %d)" seed)
                `Quick (online_build seed);
              Alcotest.test_case
                (Printf.sprintf "crash mid-backfill (seed %d)" seed)
                `Quick (online_build_crash seed);
            ])
          seeds );
      ( "concurrency",
        [ Alcotest.test_case "no torn snapshots across domains" `Quick concurrency ] );
      ( "join",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "equi-join differential (seed %d)" seed)
              `Quick (join_differential seed))
          seeds );
    ]
