(* The observability layer: span nesting and balance, the null sink's
   zero-allocation guarantee, domain-safe metrics with associative
   snapshot merging, and the EXPLAIN ANALYZE accounting invariant (per
   node page accesses sum exactly to the run's Stats totals). *)

module Obs = Sqp_obs
module Trace = Obs.Trace
module Metrics = Obs.Metrics
module W = Sqp_workload
module R = Sqp_relalg
module Stats = Sqp_storage.Stats

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* {1 Spans} *)

let test_span_nesting () =
  let t = Trace.create Trace.Collect in
  Trace.with_span t "outer" (fun () ->
      Trace.with_span t "inner" (fun () ->
          check_int "two open" 2 (Trace.open_depth t));
      Trace.with_span t "inner2" (fun () -> ()));
  check_int "balanced" 0 (Trace.open_depth t);
  let spans = Trace.spans t in
  (* Finish order: children complete before their parent. *)
  check "names in finish order" true
    (List.map (fun s -> s.Trace.name) spans = [ "inner"; "inner2"; "outer" ]);
  check "depths" true
    (List.map (fun s -> s.Trace.depth) spans = [ 1; 1; 0 ]);
  (* An unmatched span_end is a no-op, not an underflow. *)
  Trace.span_end t;
  check_int "still balanced" 0 (Trace.open_depth t)

let test_span_attrs_and_timing () =
  let t = Trace.create Trace.Collect in
  let clock = ref 10.0 in
  Trace.set_clock t (fun () -> !clock);
  Trace.span_begin t "timed";
  clock := 10.5;
  Trace.span_end ~attrs:(fun () -> [ ("rows", Trace.Int 7) ]) t;
  (match Trace.spans t with
  | [ s ] ->
      check "start" true (s.Trace.start = 10.0);
      check "duration" true (abs_float (s.Trace.duration -. 0.5) < 1e-9);
      check "attrs" true (s.Trace.attrs = [ ("rows", Trace.Int 7) ])
  | _ -> Alcotest.fail "expected exactly one span")

let test_span_survives_exception () =
  let t = Trace.create Trace.Collect in
  (try
     Trace.with_span t "boom" (fun () -> failwith "inside")
   with Failure _ -> ());
  check_int "closed on raise" 0 (Trace.open_depth t);
  check_int "recorded anyway" 1 (List.length (Trace.spans t))

let test_ring_bounded () =
  let t = Trace.create ~capacity:4 Trace.Collect in
  for i = 1 to 10 do
    Trace.with_span t (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  let names = List.map (fun s -> s.Trace.name) (Trace.spans t) in
  check "keeps the most recent, oldest first" true
    (names = [ "s7"; "s8"; "s9"; "s10" ]);
  check_int "dropped count" 6 (Trace.dropped t);
  Trace.clear t;
  check_int "cleared" 0 (List.length (Trace.spans t));
  check_int "dropped reset" 0 (Trace.dropped t)

let test_null_sink_allocates_nothing () =
  let t = Trace.null in
  check "disabled" false (Trace.enabled t);
  (* The shape instrumented code takes when tracing is off: one enabled
     check, then plain begin/end (attribute thunks are only built — and
     only wrapped in an option — behind the guard).  Warm up first so any
     one-time allocation is out of the way. *)
  let tick () =
    if Trace.enabled t then
      Trace.span_end ~attrs:(fun () -> [ ("k", Trace.Int 1) ]) t
    else begin
      Trace.span_begin t "x";
      Trace.span_end t;
      Trace.with_span t "y" ignore
    end
  in
  tick ();
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    tick ()
  done;
  let delta = Gc.minor_words () -. before in
  check "null path allocates nothing" true (delta < 100.0)

let test_chrome_export () =
  let t = Trace.create Trace.Collect in
  let clock = ref 1.0 in
  Trace.set_clock t (fun () -> !clock);
  Trace.with_span t "outer"
    (fun () ->
      clock := 1.25;
      Trace.with_span
        ~attrs:(fun () -> [ ("n", Trace.Int 3); ("tag", Trace.Str "a") ])
        t "inner"
        (fun () -> clock := 2.0));
  let json = Trace.to_chrome_json (Trace.spans t) in
  check "has traceEvents" true
    (String.length json > 0
    && String.sub json 0 1 = "{"
    && contains json "\"traceEvents\""
    && contains json "\"inner\""
    && contains json "\"tag\"")

(* {1 The instrumentation guard} *)

(* With the ambient tracer disabled (the default), instrumented library
   code must not even create metrics; enabling it turns the counters
   on. *)
let test_global_guard () =
  Trace.set_global Trace.null;
  Metrics.reset (Metrics.global ());
  let pager = Sqp_storage.Pager.create () in
  let id = Sqp_storage.Pager.alloc pager 42 in
  check "no metrics while disabled" true
    (List.for_all
       (fun (name, _) -> not (starts_with "pager." name))
       (Metrics.snapshot (Metrics.global ())));
  let t = Trace.create Trace.Collect in
  Trace.set_global t;
  ignore (Sqp_storage.Pager.read pager id);
  Trace.set_global Trace.null;
  check_int "reads counted while enabled" 1
    (Metrics.counter_value (Metrics.counter (Metrics.global ()) "pager.physical_reads"))

(* {1 Metrics} *)

let test_metric_kinds () =
  let r = Metrics.create () in
  ignore (Metrics.counter r "m");
  (try
     ignore (Metrics.gauge r "m");
     Alcotest.fail "kind clash not detected"
   with Invalid_argument _ -> ());
  let h = Metrics.histogram r "h" in
  List.iter (Metrics.observe h) [ 0; 1; 1; 5; 1000; -3 ];
  match List.assoc "h" (Metrics.snapshot r) with
  | Metrics.Histogram_v { count; sum; buckets } ->
      check_int "count" 6 count;
      check_int "sum (negative clamped)" 1007 sum;
      check "buckets ascending" true
        (let bounds = List.map fst buckets in
         List.sort compare bounds = bounds)
  | _ -> Alcotest.fail "expected histogram reading"

let test_shared_registry_across_domains () =
  let r = Metrics.create () in
  let c = Metrics.counter r "shared.hits" in
  let g = Metrics.gauge r "shared.depth" in
  let domains =
    List.init 4 (fun i ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              Metrics.incr c
            done;
            Metrics.record_max g (i + 1)))
  in
  List.iter Domain.join domains;
  check_int "no lost increments" 4000 (Metrics.counter_value c);
  check_int "high-water mark" 4 (Metrics.gauge_value g)

let test_merge_associativity_across_domains () =
  (* Each domain owns a private registry (the per-shard pattern) and
     reports a snapshot; merging must not care how we group them. *)
  let snapshots =
    List.map Domain.join
      (List.init 3 (fun i ->
           Domain.spawn (fun () ->
               let r = Metrics.create () in
               Metrics.add (Metrics.counter r "work.items") ((i + 1) * 10);
               Metrics.record_max (Metrics.gauge r "work.depth") (i + 2);
               let h = Metrics.histogram r "work.sizes" in
               List.iter (Metrics.observe h) [ i; (i * 3) + 1; 7 ];
               Metrics.snapshot r)))
  in
  match snapshots with
  | [ a; b; c ] ->
      check "associative" true
        (Metrics.merge (Metrics.merge a b) c = Metrics.merge a (Metrics.merge b c));
      check "commutative" true (Metrics.merge a b = Metrics.merge b a);
      let total = Metrics.merge_all snapshots in
      (match List.assoc "work.items" total with
      | Metrics.Counter_v v -> check_int "counters add" 60 v
      | _ -> Alcotest.fail "counter");
      (match List.assoc "work.depth" total with
      | Metrics.Gauge_v v -> check_int "gauges max" 4 v
      | _ -> Alcotest.fail "gauge");
      (match List.assoc "work.sizes" total with
      | Metrics.Histogram_v { count; sum; _ } ->
          check_int "histogram count" 9 count;
          check_int "histogram sum" 36 sum
      | _ -> Alcotest.fail "histogram")
  | _ -> Alcotest.fail "expected three snapshots"

(* {1 EXPLAIN ANALYZE accounting} *)

let stats_eq name (a : Stats.t) (b : Stats.t) =
  check name true
    (a.Stats.physical_reads = b.Stats.physical_reads
    && a.Stats.physical_writes = b.Stats.physical_writes
    && a.Stats.allocations = b.Stats.allocations
    && a.Stats.frees = b.Stats.frees
    && a.Stats.pool_hits = b.Stats.pool_hits
    && a.Stats.pool_misses = b.Stats.pool_misses)

let analyze_fixture () =
  let wk = W.Seeded.standard ~n_objects:24 () in
  let stored name renames objects =
    R.Stored.store
      (R.Ops.rename renames
         (R.Query.decompose_relation ~options:wk.W.Seeded.decompose_options
            ~name wk.W.Seeded.space objects))
  in
  let r = stored "R" [ ("id", "rid"); ("z", "zr") ] wk.W.Seeded.left_objects in
  let s = stored "S" [ ("id", "sid"); ("z", "zs") ] wk.W.Seeded.right_objects in
  ( r,
    s,
    R.Plan.Project
      ( [ "rid"; "sid" ],
        R.Plan.Spatial_join
          {
            zl = "zr";
            zr = "zs";
            left = R.Plan.Scan_stored r;
            right = R.Plan.Scan_stored s;
            impl = None;
          } ) )

let rec join_node (n : R.Plan.node_report) =
  if n.R.Plan.shard_table <> [] then Some n
  else List.find_map join_node n.R.Plan.children

let analyze_invariants ~parallelism =
  let r, s, plan = analyze_fixture () in
  let before_r = Stats.snapshot (R.Stored.stats r)
  and before_s = Stats.snapshot (R.Stored.stats s) in
  let a = R.Plan.run_analyze ~parallelism plan in
  (* Golden invariant: per-node exclusive page counts sum exactly to the
     run's total, which equals the externally measured Stats delta. *)
  stats_eq "tree sums to total" (R.Plan.sum_pages a.R.Plan.report)
    a.R.Plan.total_pages;
  let external_delta =
    Stats.sum
      [
        Stats.diff ~after:(Stats.snapshot (R.Stored.stats r)) ~before:before_r;
        Stats.diff ~after:(Stats.snapshot (R.Stored.stats s)) ~before:before_s;
      ]
  in
  stats_eq "total equals external Stats delta" external_delta
    a.R.Plan.total_pages;
  check "run touched pages at all" true
    (Stats.total_accesses a.R.Plan.total_pages > 0
    || a.R.Plan.total_pages.Stats.pool_misses > 0);
  a

let test_analyze_sequential () =
  let a = analyze_invariants ~parallelism:1 in
  check_int "sequential" 1 a.R.Plan.parallelism;
  check "no shard table when sequential" true (join_node a.R.Plan.report = None)

let test_analyze_parallel_matches () =
  let seq = analyze_invariants ~parallelism:1 in
  let par = analyze_invariants ~parallelism:2 in
  check "same result as sequential" true
    (R.Relation.equal_contents seq.R.Plan.result par.R.Plan.result);
  match join_node par.R.Plan.report with
  | None -> Alcotest.fail "parallel join reported no shard table"
  | Some n ->
      check "several shards" true (List.length n.R.Plan.shard_table >= 2);
      let pairs =
        List.fold_left
          (fun acc row -> acc + row.R.Plan.shard_pairs)
          0 n.R.Plan.shard_table
      in
      check_int "shard pairs sum to the join's pairs"
        (List.assoc "pairs" n.R.Plan.node_attrs)
        pairs

let test_analyze_agrees_with_run () =
  let _, _, plan = analyze_fixture () in
  let direct = R.Plan.run plan in
  let a = R.Plan.run_analyze plan in
  check "run_analyze computes what run computes" true
    (R.Relation.equal_contents direct a.R.Plan.result)

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "nesting and balance" `Quick test_span_nesting;
          Alcotest.test_case "attrs and timing" `Quick test_span_attrs_and_timing;
          Alcotest.test_case "exception safety" `Quick test_span_survives_exception;
          Alcotest.test_case "bounded ring" `Quick test_ring_bounded;
          Alcotest.test_case "null sink allocates nothing" `Quick
            test_null_sink_allocates_nothing;
          Alcotest.test_case "chrome export" `Quick test_chrome_export;
          Alcotest.test_case "global guard" `Quick test_global_guard;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "kind clash" `Quick test_metric_kinds;
          Alcotest.test_case "shared registry across domains" `Quick
            test_shared_registry_across_domains;
          Alcotest.test_case "merge associativity across domains" `Quick
            test_merge_associativity_across_domains;
        ] );
      ( "explain-analyze",
        [
          Alcotest.test_case "sequential accounting" `Quick test_analyze_sequential;
          Alcotest.test_case "parallel accounting and shard table" `Quick
            test_analyze_parallel_matches;
          Alcotest.test_case "agrees with run" `Quick test_analyze_agrees_with_run;
        ] );
    ]
