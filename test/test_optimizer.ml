(* Cost-based optimizer tests.

   Three pillars: (1) histogram correctness — masses are conserved and
   element masses match exact counts at full resolution; (2) the
   differential guarantee — every plan the optimizer produces (forced
   implementations, commuted inputs, coarsened range covers) returns
   the same rows as the plan it replaced, as a multiset; (3) prediction
   accuracy — predicted rows and pages stay within the error factors
   documented in docs/COST_MODEL.md ("Calibration") on the seeded
   workload, so a regression in the formulas fails loudly here. *)

module W = Sqp_workload
module R = Sqp_relalg
module O = Sqp_optimizer
module Srv = Sqp_server
module Z = Sqp_zorder
module Box = Sqp_geom.Box

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* One seeded fixture; [cat] analyzed once, [plain_cat] never. *)
let wk = W.Seeded.standard ()
let cat = Srv.Catalog.of_seeded wk
let plain_cat = Srv.Catalog.of_seeded wk
let stats = Srv.Catalog.analyze cat
let space = wk.W.Seeded.space

let point_hist =
  match O.Stats.find_z stats "z" with
  | Some (_, h) -> h
  | None -> Alcotest.fail "no histogram for the point relation's z column"

(* Error factors documented in docs/COST_MODEL.md — the test and the
   document must agree, so change both together. *)
let range_rows_factor = 2.0
let join_rows_factor = 2.0
let distinct_rows_factor = 4.0
let pages_factor = 1.5

let within factor pred actual =
  if actual = 0 then pred <= 1.0
  else
    let a = float_of_int actual in
    pred <= (a *. factor) +. 0.5 && a <= (pred *. factor) +. 0.5

(* {1 Histograms} *)

let zs =
  List.map (Z.Interleave.shuffle space) (Array.to_list wk.W.Seeded.points)

let test_histogram_conservation () =
  let h = O.Histogram.build ~space (List.to_seq zs) in
  checki "rows" (Array.length wk.W.Seeded.points) (O.Histogram.rows h);
  let total =
    O.Histogram.fold_nonempty (fun _ mass _ acc -> acc +. mass) h 0.0
  in
  checkb "bucket masses sum to the row count" true
    (Float.abs (total -. float_of_int (O.Histogram.rows h)) < 1e-6);
  (* The root element contains everything. *)
  let root_mass = O.Histogram.element_mass h Z.Element.root in
  checkb "root element mass = rows" true
    (Float.abs (root_mass -. float_of_int (O.Histogram.rows h)) < 1e-6)

let test_histogram_element_mass_exact () =
  (* The mass inside an element of level = prefix_bits (one whole
     bucket) is the exact count of z values extending it. *)
  let h = O.Histogram.build ~space (List.to_seq zs) in
  let pb = O.Histogram.prefix_bits h in
  let prefix z = Z.Bitstring.take z pb in
  let sample = List.filteri (fun i _ -> i mod 500 = 0) zs in
  List.iter
    (fun z ->
      let e = prefix z in
      let exact = List.length (List.filter (fun z' -> prefix z' = e) zs) in
      let mass = O.Histogram.element_mass h e in
      checkb "bucket-aligned element mass is exact" true
        (Float.abs (mass -. float_of_int exact) < 1e-6))
    sample

(* {1 Range alternatives and predictions} *)

let boxes =
  wk.W.Seeded.query :: Array.to_list (Array.sub wk.W.Seeded.query_boxes 0 20)

let test_range_predictions_within_factor () =
  List.iter
    (fun b ->
      let lo = Box.lo b and hi = Box.hi b in
      let pred =
        O.Cost.predicted_range_rows ~space ~hist:point_hist ~lo ~hi ()
      in
      let actual =
        R.Relation.cardinality
          (R.Plan.run (Srv.Catalog.range_plan plain_cat ~lo ~hi))
      in
      checkb
        (Printf.sprintf "range rows within %.0fx (pred %.1f, actual %d)"
           range_rows_factor pred actual)
        true
        (within range_rows_factor pred actual))
    boxes

let test_range_alternatives_shape () =
  let lo = Box.lo wk.W.Seeded.query and hi = Box.hi wk.W.Seeded.query in
  let alts =
    O.Cost.range_alternatives ~space ~hist:point_hist
      ~points:(Array.length wk.W.Seeded.points) ~lo ~hi ()
  in
  checkb "several alternatives" true (List.length alts >= 4);
  let costs = List.map (fun a -> a.O.Cost.cost) alts in
  checkb "sorted by ascending cost" true (List.sort compare costs = costs);
  List.iter
    (fun a ->
      checkb "positive cost" true (a.O.Cost.cost > 0.0);
      if a.O.Cost.max_level = None then
        checkb "exact cover never needs refining" true
          (not a.O.Cost.needs_refine))
    alts;
  (* The executors differ: the plan path must carry its interpreter
     constant, so it is always dearer than the direct exact kernel. *)
  let exact = List.find (fun a -> a.O.Cost.max_level = None) alts in
  List.iter
    (fun a ->
      checkb "plan path costlier than the direct kernel" true
        (O.Cost.plan_path_cost ~points:(Array.length wk.W.Seeded.points) a
        > exact.O.Cost.cost))
    alts

let test_range_plan_differential () =
  (* The statistics-aware range plan (possibly coarsened + refined)
     returns exactly the rows of the statistics-free one, and the
     direct access path agrees on the count. *)
  List.iter
    (fun b ->
      let lo = Box.lo b and hi = Box.hi b in
      let without = R.Plan.run (Srv.Catalog.range_plan plain_cat ~lo ~hi) in
      let with_stats = R.Plan.run (Srv.Catalog.range_plan cat ~lo ~hi) in
      checkb "coarsened+refined = exact rows" true
        (R.Relation.equal_contents without with_stats);
      match Srv.Catalog.range_access cat ~lo ~hi with
      | Srv.Catalog.Planned -> ()
      | Srv.Catalog.Direct alt ->
          let prep = Srv.Catalog.prepared_points cat in
          let entries, _ =
            (match alt.O.Cost.method_ with
            | O.Cost.Plain -> Sqp_core.Range_search.search_plain
            | O.Cost.Skip -> Sqp_core.Range_search.search_skip)
              prep
              (Box.make ~lo ~hi)
          in
          checki "direct path row count"
            (R.Relation.cardinality without)
            (List.length entries))
    boxes

(* {1 Join decisions and the plan differential} *)

let overlap = Srv.Catalog.overlap_plan cat

let test_choose_plan_differential () =
  let expected = R.Plan.run overlap in
  let chosen, decisions = O.Optimizer.choose_plan stats overlap in
  checkb "one join decision" true (List.length decisions = 1);
  checkb "chosen plan: same rows" true
    (R.Relation.equal_contents expected (R.Plan.run chosen));
  (* Every forced implementation returns the same multiset. *)
  let joint impl =
    match overlap with
    | R.Plan.Project (names, R.Plan.Spatial_join { zl; zr; left; right; _ }) ->
        R.Plan.Project (names, R.Plan.spatial_join ~impl ~zl ~zr left right)
    | _ -> Alcotest.fail "unexpected overlap plan shape"
  in
  List.iter
    (fun impl ->
      checkb "forced impl: same rows" true
        (R.Relation.equal_contents expected (R.Plan.run (joint impl))))
    [ R.Plan.Merge; R.Plan.Nested_loop ]

let test_join_estimates_within_factor () =
  let chosen, _ = O.Optimizer.choose_plan stats overlap in
  let a = R.Plan.run_analyze chosen in
  let rows = O.Optimizer.compare_analysis stats chosen a.R.Plan.report in
  checkb "comparison covers every operator" true (List.length rows >= 4);
  List.iter
    (fun (r : O.Optimizer.comparison_row) ->
      let factor =
        (* the duplicate-eliminating projection carries the loosest
           estimate (distinct witnesses); joins and scans are tighter *)
        if
          String.length r.O.Optimizer.op >= 7
          && String.sub r.O.Optimizer.op 0 7 = "project"
        then distinct_rows_factor
        else join_rows_factor
      in
      checkb
        (Printf.sprintf "%s: rows within %.0fx (pred %.0f, actual %d)"
           r.O.Optimizer.op factor r.O.Optimizer.predicted_rows
           r.O.Optimizer.actual_rows)
        true
        (within factor r.O.Optimizer.predicted_rows r.O.Optimizer.actual_rows);
      checkb
        (Printf.sprintf "%s: pages within %.1fx (pred %.0f, actual %d)"
           r.O.Optimizer.op pages_factor r.O.Optimizer.predicted_pages
           r.O.Optimizer.actual_pages)
        true
        (within pages_factor r.O.Optimizer.predicted_pages
           r.O.Optimizer.actual_pages))
    rows

let test_optimizer_overrides_heuristic () =
  (* A join whose element product sits under the 20k size-heuristic
     threshold while both sides are large: statistics pick the merge
     where the heuristic would nested-loop (the bench-optimizer
     "small_join" workload). *)
  let small =
    List.find_map
      (fun k ->
        let wk = W.Seeded.standard ~n_objects:k () in
        let l, r = W.Seeded.join_elements wk in
        let p = List.length l * List.length r in
        if p <= 20_000 && p >= 4_000 then Some wk else None)
      [ 24; 20; 16; 12; 10; 8; 6; 4 ]
  in
  match small with
  | None -> Alcotest.fail "no seeded size lands under the heuristic threshold"
  | Some wk ->
      let cat = Srv.Catalog.of_seeded wk in
      let st = Srv.Catalog.analyze cat in
      let plan = Srv.Catalog.overlap_plan cat in
      let chosen, decisions = O.Optimizer.choose_plan st plan in
      let d = List.hd decisions in
      checkb "heuristic would nested-loop" false
        d.O.Optimizer.heuristic_would_merge;
      checkb "cost model picks the merge" true
        (d.O.Optimizer.chosen = R.Plan.Merge);
      checkb "override keeps the rows" true
        (R.Relation.equal_contents (R.Plan.run plan) (R.Plan.run chosen))

(* {1 Explain and parallelism} *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_explain_cost_column () =
  let chosen, _ = O.Optimizer.choose_plan stats overlap in
  let text = O.Optimizer.explain stats chosen in
  checkb "every operator line has a cost column" true
    (List.for_all
       (fun line -> String.trim line = "" || contains line "[cost=")
       (String.split_on_char '\n' text));
  checkb "forced choice is marked" true (contains text "(forced)")

let test_choose_parallelism () =
  let p1 = O.Optimizer.choose_parallelism stats ~max_domains:1 overlap in
  checki "max_domains 1" 1 p1;
  let p4 = O.Optimizer.choose_parallelism stats ~max_domains:4 overlap in
  checkb "either sequential or the full pool" true (p4 = 1 || p4 = 4)

let () =
  Alcotest.run "optimizer"
    [
      ( "histograms",
        [
          Alcotest.test_case "mass conservation" `Quick
            test_histogram_conservation;
          Alcotest.test_case "element mass exact at bucket level" `Quick
            test_histogram_element_mass_exact;
        ] );
      ( "range",
        [
          Alcotest.test_case "predictions within factor" `Quick
            test_range_predictions_within_factor;
          Alcotest.test_case "alternatives shape" `Quick
            test_range_alternatives_shape;
          Alcotest.test_case "differential" `Quick test_range_plan_differential;
        ] );
      ( "join",
        [
          Alcotest.test_case "choose_plan differential" `Quick
            test_choose_plan_differential;
          Alcotest.test_case "estimates within factor" `Quick
            test_join_estimates_within_factor;
          Alcotest.test_case "overrides the size heuristic" `Quick
            test_optimizer_overrides_heuristic;
        ] );
      ( "explain",
        [
          Alcotest.test_case "cost column" `Quick test_explain_cost_column;
          Alcotest.test_case "parallelism choice" `Quick
            test_choose_parallelism;
        ] );
    ]
