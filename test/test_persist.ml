module FP = Sqp_storage.File_pager
module Crc32 = Sqp_storage.Crc32
module Storage_error = Sqp_storage.Storage_error
module Faulty_io = Sqp_storage.Faulty_io
module Journal = Sqp_storage.Journal
module Fsck = Sqp_storage.Fsck
module Zindex = Sqp_btree.Zindex
module Persist = Sqp_btree.Persist
module Z = Sqp_zorder
module W = Sqp_workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("sqp_test_" ^ name)

let with_file name f =
  let path = tmp name in
  let aux = [ path; path ^ ".tmp"; Journal.journal_path path ] in
  let clean () = List.iter (fun p -> if Sys.file_exists p then Sys.remove p) aux in
  clean ();
  Fun.protect ~finally:clean (fun () -> f path)

(* Byte surgery on closed store files, for the corruption tests. *)
let patch path off bytes =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.write fd bytes 0 (Bytes.length bytes));
  Unix.close fd

let read_at path off len =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  let buf = Bytes.create len in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let n = Unix.read fd buf 0 len in
  Unix.close fd;
  Bytes.sub buf 0 n

(* A checksum-valid free page image pointing at [next]. *)
let free_page_img ~page_bytes next =
  let buf = Bytes.make page_bytes '\000' in
  Bytes.set_int32_be buf 0 (Int32.of_int 0xFFFFFFFF);
  Bytes.set_int64_be buf 8 (Int64.of_int next);
  let crc = Crc32.(finish (update (update init buf ~pos:0 ~len:4) buf ~pos:8 ~len:8)) in
  Bytes.set_int32_be buf 4 (Int32.of_int crc);
  buf

(* Rewrite one header field (by byte offset) and re-checksum the header. *)
let patch_header path off v =
  let head = read_at path 0 FP.header_size in
  Bytes.set_int64_be head off (Int64.of_int v);
  Bytes.set_int32_be head 36 (Int32.of_int (Crc32.bytes_crc head ~pos:0 ~len:36));
  patch path 0 head

let expect_corrupt name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Storage_error.Corrupt")
  | exception Storage_error.Corrupt _ -> ()

(* {1 File pager} *)

let test_fp_roundtrip () =
  with_file "roundtrip" (fun path ->
      let s = FP.create ~page_bytes:128 path in
      let a = FP.alloc s (Bytes.of_string "hello") in
      let b = FP.alloc s (Bytes.of_string "world!") in
      Alcotest.(check string) "a" "hello" (Bytes.to_string (FP.read s a));
      Alcotest.(check string) "b" "world!" (Bytes.to_string (FP.read s b));
      FP.write s a (Bytes.of_string "HELLO");
      Alcotest.(check string) "rewritten" "HELLO" (Bytes.to_string (FP.read s a));
      check_int "live" 2 (FP.page_count s);
      FP.close s)

let test_fp_reopen () =
  with_file "reopen" (fun path ->
      let s = FP.create ~page_bytes:64 path in
      let ids = List.init 5 (fun i -> FP.alloc s (Bytes.of_string (string_of_int i))) in
      FP.free s (List.nth ids 2);
      FP.close s;
      let s2 = FP.open_existing path in
      check_int "live after reopen" 4 (FP.page_count s2);
      List.iteri
        (fun i id ->
          if i <> 2 then
            Alcotest.(check string) "content" (string_of_int i)
              (Bytes.to_string (FP.read s2 id)))
        ids;
      (match FP.read s2 (List.nth ids 2) with
      | _ -> Alcotest.fail "freed page readable"
      | exception Invalid_argument _ -> ());
      FP.close s2)

let test_fp_free_reuse () =
  with_file "reuse" (fun path ->
      let s = FP.create ~page_bytes:64 path in
      let a = FP.alloc s (Bytes.of_string "a") in
      let _b = FP.alloc s (Bytes.of_string "b") in
      FP.free s a;
      let c = FP.alloc s (Bytes.of_string "c") in
      check_int "slot reused" a c;
      FP.close s)

let test_fp_overflow () =
  with_file "overflow" (fun path ->
      let s = FP.create ~page_bytes:64 path in
      let cap = FP.payload_capacity s in
      (match FP.alloc s (Bytes.make (cap + 1) 'x') with
      | _ -> Alcotest.fail "expected overflow"
      | exception Invalid_argument _ -> ());
      (* Exactly at capacity is fine. *)
      let id = FP.alloc s (Bytes.make cap 'x') in
      check_int "full page" cap (Bytes.length (FP.read s id));
      FP.close s)

let test_fp_iter_order () =
  with_file "iter" (fun path ->
      let s = FP.create ~page_bytes:64 path in
      let _ = FP.alloc s (Bytes.of_string "1") in
      let b = FP.alloc s (Bytes.of_string "2") in
      let _ = FP.alloc s (Bytes.of_string "3") in
      FP.free s b;
      let seen = ref [] in
      FP.iter s (fun _ payload -> seen := Bytes.to_string payload :: !seen);
      Alcotest.(check (list string)) "live pages in order" [ "1"; "3" ] (List.rev !seen);
      FP.close s)

let test_fp_bad_magic () =
  with_file "magic" (fun path ->
      let oc = open_out path in
      output_string oc (String.make 64 'j');
      close_out oc;
      expect_corrupt "bad magic" (fun () -> FP.open_existing path))

let test_fp_closed () =
  with_file "closed" (fun path ->
      let s = FP.create ~page_bytes:64 path in
      FP.close s;
      match FP.alloc s (Bytes.of_string "x") with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())

(* {1 Corruption and open_existing edge cases} *)

(* A closed 64-byte-page store with three live pages "0" "1" "2". *)
let small_store path =
  let s = FP.create ~page_bytes:64 path in
  let ids = List.init 3 (fun i -> FP.alloc s (Bytes.of_string (string_of_int i))) in
  FP.close s;
  ids

let test_fp_short_file () =
  with_file "short" (fun path ->
      let oc = open_out path in
      output_string oc "SQP2";
      close_out oc;
      expect_corrupt "short file" (fun () -> FP.open_existing path))

let test_fp_truncated () =
  with_file "truncated" (fun path ->
      ignore (small_store path);
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
      Unix.ftruncate fd ((4 * 64) - 10);
      Unix.close fd;
      expect_corrupt "truncated" (fun () -> FP.open_existing path))

let test_fp_page_bitrot () =
  with_file "bitrot" (fun path ->
      let ids = small_store path in
      (* Flip a payload byte of the middle page: open-time scan fails. *)
      patch path ((List.nth ids 1 * 64) + FP.page_header_bytes) (Bytes.of_string "X");
      expect_corrupt "bitrot" (fun () -> FP.open_existing path))

let test_fp_read_detects_corruption () =
  with_file "readcrc" (fun path ->
      let ids = small_store path in
      let s = FP.open_existing path in
      (* Corrupt behind the open handle's back; reads go to disk. *)
      patch path ((List.nth ids 0 * 64) + FP.page_header_bytes) (Bytes.of_string "X");
      expect_corrupt "read" (fun () -> FP.read s (List.nth ids 0));
      FP.close s)

let test_fp_free_list_cycle () =
  with_file "cycle" (fun path ->
      let s = FP.create ~page_bytes:64 path in
      let ids = List.init 3 (fun i -> FP.alloc s (Bytes.of_string (string_of_int i))) in
      FP.free s (List.nth ids 0);
      FP.free s (List.nth ids 1);
      FP.close s;
      (* Free list is b -> a -> end; point a back at b to close a cycle. *)
      let a = List.nth ids 0 and b = List.nth ids 1 in
      patch path (a * 64) (free_page_img ~page_bytes:64 b);
      expect_corrupt "cycle" (fun () -> FP.open_existing path))

let test_fp_free_list_dangling () =
  with_file "dangling" (fun path ->
      let s = FP.create ~page_bytes:64 path in
      let ids = List.init 3 (fun i -> FP.alloc s (Bytes.of_string (string_of_int i))) in
      FP.free s (List.nth ids 1);
      FP.close s;
      (* Point the freed page's next at a live page. *)
      patch path (List.nth ids 1 * 64)
        (free_page_img ~page_bytes:64 (List.nth ids 2));
      expect_corrupt "dangling" (fun () -> FP.open_existing path))

let test_fp_header_live_mismatch () =
  with_file "livemism" (fun path ->
      ignore (small_store path);
      (* Header claims 2 live pages; the scan finds 3. *)
      patch_header path 28 2;
      expect_corrupt "live mismatch" (fun () -> FP.open_existing path))

let test_fp_header_slot_mismatch () =
  with_file "slotmism" (fun path ->
      ignore (small_store path);
      (* Header claims more slots than the file holds. *)
      patch_header path 12 40;
      expect_corrupt "slot mismatch" (fun () -> FP.open_existing path))

let test_fp_garbage_journal_discarded () =
  with_file "gjournal" (fun path ->
      ignore (small_store path);
      let oc = open_out (Journal.journal_path path) in
      output_string oc "torn nonsense, not a journal";
      close_out oc;
      (* A torn journal is discarded and the store opens as it was. *)
      let s = FP.open_existing path in
      check_int "live" 3 (FP.page_count s);
      FP.close s;
      check "journal removed" false (Sys.file_exists (Journal.journal_path path)))

(* {1 Batches} *)

let test_fp_batch_abort () =
  with_file "abort" (fun path ->
      let s = FP.create ~page_bytes:64 path in
      let a = FP.alloc s (Bytes.of_string "keep") in
      FP.begin_batch s;
      let b = FP.alloc s (Bytes.of_string "drop") in
      FP.write s a (Bytes.of_string "KEEP?");
      Alcotest.(check string) "read-your-writes" "KEEP?" (Bytes.to_string (FP.read s a));
      FP.abort_batch s;
      Alcotest.(check string) "rolled back" "keep" (Bytes.to_string (FP.read s a));
      check_int "alloc rolled back" 1 (FP.page_count s);
      (match FP.read s b with
      | _ -> Alcotest.fail "aborted alloc readable"
      | exception Invalid_argument _ -> ());
      (* The slot is reusable after the abort. *)
      let c = FP.alloc s (Bytes.of_string "again") in
      check_int "slot reused after abort" b c;
      FP.close s)

let test_fp_batch_commit_once () =
  with_file "batch" (fun path ->
      let s = FP.create ~page_bytes:64 path in
      FP.begin_batch s;
      let ids = List.init 10 (fun i -> FP.alloc s (Bytes.of_string (string_of_int i))) in
      FP.commit_batch s;
      FP.close s;
      let s2 = FP.open_existing path in
      List.iteri
        (fun i id ->
          Alcotest.(check string) "batched page" (string_of_int i)
            (Bytes.to_string (FP.read s2 id)))
        ids;
      FP.close s2)

let test_fp_enospc () =
  with_file "enospc" (fun path ->
      let s = FP.create ~page_bytes:64 path in
      let a = FP.alloc s (Bytes.of_string "first") in
      FP.close s;
      (* Reopen with a nearly-exhausted disk: the next commit must fail
         with a typed error and leave the old state recoverable. *)
      let io = Faulty_io.enospc_after 16 in
      let s = FP.open_existing ~io path in
      (match FP.alloc s (Bytes.of_string "second") with
      | _ -> Alcotest.fail "expected Io_error"
      | exception Storage_error.Io_error { error = Unix.ENOSPC; _ } -> ());
      (* The handle is poisoned; a fresh open recovers the old state. *)
      let s2 = FP.open_existing path in
      check_int "old state intact" 1 (FP.page_count s2);
      Alcotest.(check string) "first page intact" "first"
        (Bytes.to_string (FP.read s2 a));
      FP.close s2)

(* {1 Fsck} *)

let test_fsck_clean_and_corrupt () =
  with_file "fsck" (fun path ->
      let ids = small_store path in
      let r = Fsck.scan path in
      check "clean store" true (Fsck.clean r);
      patch path ((List.nth ids 1 * 64) + FP.page_header_bytes) (Bytes.of_string "X");
      let r = Fsck.scan path in
      check "corruption found" false (Fsck.clean r);
      check_int "one bad page" 1 (List.length r.Fsck.bad_pages);
      check_int "bad slot" (List.nth ids 1) (List.hd r.Fsck.bad_pages).Fsck.slot;
      check "report mentions slot" true
        (String.length (Fsck.to_text r) > 0))

let test_fsck_salvage () =
  with_file "salvage" (fun path ->
      let dest = path ^ ".rescued" in
      if Sys.file_exists dest then Sys.remove dest;
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists dest then Sys.remove dest)
        (fun () ->
          let ids = small_store path in
          patch path ((List.nth ids 1 * 64) + FP.page_header_bytes) (Bytes.of_string "X");
          let salvaged, lost = Fsck.salvage ~src:path ~dest () in
          check_int "salvaged" 2 salvaged;
          check_int "lost" 1 lost;
          (* Every uncorrupted page survives, in order. *)
          let s = FP.open_existing dest in
          let seen = ref [] in
          FP.iter s (fun _ p -> seen := Bytes.to_string p :: !seen);
          Alcotest.(check (list string)) "survivors" [ "0"; "2" ] (List.rev !seen);
          FP.close s))

(* {1 Index persistence} *)

let build_index n =
  let space = Z.Space.make ~dims:2 ~depth:8 in
  let rng = W.Rng.create ~seed:123 in
  let points = W.Datagen.uniform rng ~side:256 ~n ~dims:2 in
  Zindex.of_points space (Array.mapi (fun i p -> (p, i)) points)

let test_save_load_roundtrip () =
  with_file "index" (fun path ->
      let index = build_index 500 in
      let pages = Persist.save ~path ~encode:string_of_int index in
      check "some data pages" true (pages > 0);
      let loaded = Persist.load ~path ~decode:int_of_string () in
      check_int "length" 500 (Zindex.length loaded);
      check_int "capacity preserved" (Zindex.leaf_capacity index)
        (Zindex.leaf_capacity loaded);
      (* Queries agree. *)
      let rng = W.Rng.create ~seed:9 in
      for _ = 1 to 20 do
        let x1 = W.Rng.int rng 256 and x2 = W.Rng.int rng 256 in
        let y1 = W.Rng.int rng 256 and y2 = W.Rng.int rng 256 in
        let box =
          Sqp_geom.Box.make ~lo:[| min x1 x2; min y1 y2 |]
            ~hi:[| max x1 x2; max y1 y2 |]
        in
        let a, _ = Zindex.range_search index box in
        let b, _ = Zindex.range_search loaded box in
        if a <> b then Alcotest.fail "reloaded index answers differently"
      done)

let test_save_load_3d_and_strings () =
  with_file "index3d" (fun path ->
      let space = Z.Space.make ~dims:3 ~depth:4 in
      let rng = W.Rng.create ~seed:3 in
      let points = W.Datagen.uniform rng ~side:16 ~n:100 ~dims:3 in
      let index =
        Zindex.of_points ~leaf_capacity:8 space
          (Array.map (fun p -> (p, Printf.sprintf "p%d-%d-%d" p.(0) p.(1) p.(2))) points)
      in
      ignore (Persist.save ~path ~encode:Fun.id index);
      let loaded = Persist.load ~path ~decode:Fun.id () in
      check_int "length" 100 (Zindex.length loaded);
      check_int "capacity" 8 (Zindex.leaf_capacity loaded);
      Array.iter
        (fun p ->
          check "payload preserved" true
            (Zindex.find loaded p = Some (Printf.sprintf "p%d-%d-%d" p.(0) p.(1) p.(2))))
        points)

let test_save_empty_index () =
  with_file "empty" (fun path ->
      let space = Z.Space.make ~dims:2 ~depth:4 in
      let index = Zindex.create space in
      let pages = Persist.save ~path ~encode:string_of_int index in
      check_int "no data pages" 0 pages;
      let loaded = Persist.load ~path ~decode:int_of_string () in
      check_int "empty" 0 (Zindex.length loaded))

let test_save_replaces_atomically () =
  with_file "replace" (fun path ->
      ignore (Persist.save ~path ~encode:string_of_int (build_index 100));
      (* Saving again over the same path replaces, never corrupts. *)
      ignore (Persist.save ~path ~encode:string_of_int (build_index 200));
      let loaded = Persist.load ~path ~decode:int_of_string () in
      check_int "second save wins" 200 (Zindex.length loaded);
      check "no tmp left behind" false (Sys.file_exists (path ^ ".tmp")))

let test_salvage_then_lenient_load () =
  with_file "lenient" (fun path ->
      let dest = path ^ ".rescued" in
      if Sys.file_exists dest then Sys.remove dest;
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists dest then Sys.remove dest)
        (fun () ->
          let index = build_index 400 in
          ignore (Persist.save ~path ~page_bytes:256 ~encode:string_of_int index);
          (* Rot one data page, then salvage what survives. *)
          let s = FP.open_existing path in
          let slots = ref [] in
          FP.iter s (fun slot _ -> slots := slot :: !slots);
          FP.close s;
          let victim = List.hd !slots (* highest slot: a data page *) in
          patch path ((victim * 256) + FP.page_header_bytes) (Bytes.of_string "\xde\xad");
          expect_corrupt "strict load fails" (fun () ->
              Persist.load ~path ~decode:int_of_string ());
          let salvaged, lost = Fsck.salvage ~src:path ~dest () in
          check "salvaged most pages" true (salvaged >= 1);
          check_int "one page lost" 1 lost;
          let loaded = Persist.load ~lenient:true ~path:dest ~decode:int_of_string () in
          check "most entries recovered" true
            (Zindex.length loaded > 0 && Zindex.length loaded < 400)))

(* {1 Format versions: v3 front-coded pages vs the v2 legacy format} *)

let test_v2_v3_same_answers () =
  with_file "v2v3" (fun path ->
      let v2_path = path ^ ".v2" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists v2_path then Sys.remove v2_path)
        (fun () ->
          let index = build_index 500 in
          ignore (Persist.save ~format:Persist.V3 ~path ~encode:string_of_int index);
          ignore
            (Persist.save ~format:Persist.V2 ~path:v2_path ~encode:string_of_int
               index);
          (* Version sniffing: both formats load transparently... *)
          let from3 = Persist.load ~path ~decode:int_of_string () in
          let from2 = Persist.load ~path:v2_path ~decode:int_of_string () in
          check_int "v3 length" 500 (Zindex.length from3);
          check_int "v2 length" 500 (Zindex.length from2);
          (* ... and answer identically. *)
          let rng = W.Rng.create ~seed:31 in
          for _ = 1 to 25 do
            let x1 = W.Rng.int rng 256 and x2 = W.Rng.int rng 256 in
            let y1 = W.Rng.int rng 256 and y2 = W.Rng.int rng 256 in
            let box =
              Sqp_geom.Box.make ~lo:[| min x1 x2; min y1 y2 |]
                ~hi:[| max x1 x2; max y1 y2 |]
            in
            let a, _ = Zindex.range_search from3 box in
            let b, _ = Zindex.range_search from2 box in
            if a <> b then Alcotest.fail "v2 and v3 answer differently"
          done;
          (* v3 packs the same entries onto strictly fewer data pages. *)
          let i2 = Persist.inspect ~path:v2_path () in
          let i3 = Persist.inspect ~path () in
          check_int "v2 version" 2 i2.Persist.version;
          check_int "v3 version" 3 i3.Persist.version;
          check "fewer v3 pages" true (i3.Persist.data_pages < i2.Persist.data_pages)))

let test_inspect_clean () =
  with_file "inspect" (fun path ->
      let index = build_index 400 in
      ignore (Persist.save ~path ~encode:string_of_int index);
      let info = Persist.inspect ~path () in
      check_int "version" 3 info.Persist.version;
      check_int "dims" 2 info.Persist.dims;
      check_int "depth" 8 info.Persist.depth;
      check_int "count" 400 info.Persist.count;
      check_int "found" 400 info.Persist.found;
      check "no page errors" true (info.Persist.page_errors = []);
      check "some data pages" true (info.Persist.data_pages > 0))

(* Patch payload bytes of a live page and re-checksum it, so the page
   store stays clean and only the {e inner} v3 structure is rotten —
   exactly the damage Zrun.validate exists to catch. *)
let patch_within_checksum path ~page_bytes slot off bytes =
  let img = Bytes.of_string (Bytes.to_string (read_at path (slot * page_bytes) page_bytes)) in
  Bytes.blit bytes 0 img (FP.page_header_bytes + off) (Bytes.length bytes);
  let len = Int32.to_int (Bytes.get_int32_be img 0) in
  let crc =
    Crc32.(finish (update (update init img ~pos:0 ~len:4) img ~pos:8 ~len))
  in
  Bytes.set_int32_be img 4 (Int32.of_int crc);
  patch path (slot * page_bytes) img

let test_inspect_reports_bad_page () =
  with_file "inspectbad" (fun path ->
      let index = build_index 400 in
      ignore (Persist.save ~path ~page_bytes:256 ~encode:string_of_int index);
      let clean = Persist.inspect ~path () in
      (* Rot a data page's run body under a valid checksum: the page
         store is clean, but inspect's deep v3 validation pins it. *)
      let s = FP.open_existing path in
      let slots = ref [] in
      FP.iter s (fun slot _ -> slots := slot :: !slots);
      FP.close s;
      let victim = List.hd !slots in
      patch_within_checksum path ~page_bytes:256 victim 4
        (Bytes.of_string "\xff\xff\xff\xff");
      check "page store itself is clean" true (Fsck.clean (Fsck.scan path));
      let info = Persist.inspect ~path () in
      check_int "version still read" 3 info.Persist.version;
      check_int "one bad page" 1 (List.length info.Persist.page_errors);
      check_int "bad slot pinned" victim (fst (List.hd info.Persist.page_errors));
      check "entries missing" true (info.Persist.found < clean.Persist.found);
      (* The strict loader refuses the same damage. *)
      expect_corrupt "strict load fails" (fun () ->
          Persist.load ~path ~decode:int_of_string ()))

let test_v3_salvage_then_lenient_load () =
  with_file "lenient3" (fun path ->
      let dest = path ^ ".rescued" in
      if Sys.file_exists dest then Sys.remove dest;
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists dest then Sys.remove dest)
        (fun () ->
          (* A budget-built index: the metadata round-trips the page
             budget, so the recovered index keeps compressed geometry. *)
          let space = Z.Space.make ~dims:2 ~depth:8 in
          let rng = W.Rng.create ~seed:123 in
          let points = W.Datagen.uniform rng ~side:256 ~n:400 ~dims:2 in
          let index =
            Zindex.of_points ~page_budget:512 space
              (Array.mapi (fun i p -> (p, i)) points)
          in
          ignore (Persist.save ~path ~page_bytes:256 ~encode:string_of_int index);
          check "v3 with budget" true
            ((Persist.inspect ~path ()).Persist.page_budget = Some 512);
          let s = FP.open_existing path in
          let slots = ref [] in
          FP.iter s (fun slot _ -> slots := slot :: !slots);
          FP.close s;
          patch path ((List.hd !slots * 256) + FP.page_header_bytes)
            (Bytes.of_string "\xde\xad");
          expect_corrupt "strict load fails" (fun () ->
              Persist.load ~path ~decode:int_of_string ());
          let _salvaged, lost = Fsck.salvage ~src:path ~dest () in
          check_int "one page lost" 1 lost;
          let loaded = Persist.load ~lenient:true ~path:dest ~decode:int_of_string () in
          check "most entries recovered" true
            (Zindex.length loaded > 0 && Zindex.length loaded < 400);
          check "compressed geometry recovered" true
            (Zindex.page_budget loaded = Some 512)))

let () =
  Alcotest.run "persist"
    [
      ( "file pager",
        [
          Alcotest.test_case "roundtrip" `Quick test_fp_roundtrip;
          Alcotest.test_case "reopen" `Quick test_fp_reopen;
          Alcotest.test_case "free-slot reuse" `Quick test_fp_free_reuse;
          Alcotest.test_case "overflow" `Quick test_fp_overflow;
          Alcotest.test_case "iter order" `Quick test_fp_iter_order;
          Alcotest.test_case "bad magic" `Quick test_fp_bad_magic;
          Alcotest.test_case "closed handle" `Quick test_fp_closed;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "short file" `Quick test_fp_short_file;
          Alcotest.test_case "truncated file" `Quick test_fp_truncated;
          Alcotest.test_case "page bit rot" `Quick test_fp_page_bitrot;
          Alcotest.test_case "read detects corruption" `Quick
            test_fp_read_detects_corruption;
          Alcotest.test_case "free-list cycle" `Quick test_fp_free_list_cycle;
          Alcotest.test_case "free-list dangling" `Quick test_fp_free_list_dangling;
          Alcotest.test_case "header live mismatch" `Quick test_fp_header_live_mismatch;
          Alcotest.test_case "header slot mismatch" `Quick test_fp_header_slot_mismatch;
          Alcotest.test_case "garbage journal discarded" `Quick
            test_fp_garbage_journal_discarded;
        ] );
      ( "batches",
        [
          Alcotest.test_case "abort rolls back" `Quick test_fp_batch_abort;
          Alcotest.test_case "commit is atomic" `Quick test_fp_batch_commit_once;
          Alcotest.test_case "enospc" `Quick test_fp_enospc;
        ] );
      ( "fsck",
        [
          Alcotest.test_case "scan" `Quick test_fsck_clean_and_corrupt;
          Alcotest.test_case "salvage" `Quick test_fsck_salvage;
        ] );
      ( "index persistence",
        [
          Alcotest.test_case "save/load roundtrip" `Quick test_save_load_roundtrip;
          Alcotest.test_case "3d + string payloads" `Quick test_save_load_3d_and_strings;
          Alcotest.test_case "empty index" `Quick test_save_empty_index;
          Alcotest.test_case "atomic replace" `Quick test_save_replaces_atomically;
          Alcotest.test_case "salvage + lenient load" `Quick test_salvage_then_lenient_load;
        ] );
      ( "format versions",
        [
          Alcotest.test_case "v2 and v3 answer identically" `Quick
            test_v2_v3_same_answers;
          Alcotest.test_case "inspect clean v3" `Quick test_inspect_clean;
          Alcotest.test_case "inspect pins a bad page" `Quick
            test_inspect_reports_bad_page;
          Alcotest.test_case "v3 salvage + lenient load" `Quick
            test_v3_salvage_then_lenient_load;
        ] );
    ]
