module R = Sqp_relalg
module P = Sqp_relalg.Plan
module Z = Sqp_zorder

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let space = Z.Space.make ~dims:2 ~depth:5

let points =
  [
    (1, [| 2; 3 |]); (2, [| 12; 20 |]); (3, [| 20; 25 |]); (4, [| 31; 31 |]);
    (5, [| 7; 7 |]); (6, [| 25; 9 |]);
  ]

let p_rel = R.Query.points_relation space points

let box = Sqp_geom.Box.of_ranges [ (5, 26); (5, 26) ]

let b_rel = R.Ops.rename [ ("z", "zb") ] (R.Query.box_relation space box)

let range_plan =
  P.Project
    ( [ "x0"; "x1" ],
      P.Spatial_join { zl = "z"; zr = "zb"; left = P.Scan p_rel; right = P.Scan b_rel; impl = None } )

let test_schema () =
  Alcotest.(check (list string)) "projected schema" [ "x0"; "x1" ]
    (R.Schema.names (P.schema range_plan));
  Alcotest.(check (list string)) "join schema"
    [ "id"; "z"; "x0"; "x1"; "zb" ]
    (R.Schema.names
       (P.schema
          (P.Spatial_join
             { zl = "z"; zr = "zb"; left = P.Scan p_rel; right = P.Scan b_rel; impl = None })))

let test_run_range_query () =
  let result = P.run range_plan in
  let coords =
    List.map (fun t -> (R.Value.to_int t.(0), R.Value.to_int t.(1)))
      (R.Relation.tuples result)
    |> List.sort compare
  in
  Alcotest.(check (list (pair int int))) "points in box"
    [ (7, 7); (12, 20); (20, 25); (25, 9) ]
    coords

let test_select_and_run () =
  let plan =
    P.Select (P.attr_between "x0" (R.Value.Int 10) (R.Value.Int 30), P.Scan p_rel)
  in
  check_int "x in [10,30]" 3 (R.Relation.cardinality (P.run plan))

let test_optimize_preserves_semantics () =
  let plans =
    [
      range_plan;
      P.Select
        ( P.attr_between "x0" (R.Value.Int 0) (R.Value.Int 15),
          P.Spatial_join
            { zl = "z"; zr = "zb"; left = P.Scan p_rel; right = P.Scan b_rel; impl = None } );
      P.Sort ([ "x0" ], P.Sort ([ "x1" ], P.Scan p_rel));
      P.Select
        ( P.attr_equals "id" (R.Value.Int 3),
          P.Rename
            ( [ ("oid", "id") ],
              P.Rename ([ ("x0", "col") ], P.Scan (R.Ops.rename [ ("id", "oid") ] p_rel)) ) );
    ]
  in
  List.iter
    (fun plan ->
      let a = P.run plan and b = P.run (P.optimize plan) in
      if not (R.Relation.equal_contents a b) then
        Alcotest.failf "optimize changed semantics:\n%s" (P.explain plan))
    plans

let test_pushdown_happens () =
  let plan =
    P.Select
      ( P.attr_equals "id" (R.Value.Int 1),
        P.Spatial_join
          { zl = "z"; zr = "zb"; left = P.Scan p_rel; right = P.Scan b_rel; impl = None } )
  in
  match P.optimize plan with
  | P.Spatial_join { left = P.Select _; _ } -> ()
  | other -> Alcotest.failf "expected pushed-down select:\n%s" (P.explain other)

let test_pushdown_through_rename () =
  let plan =
    P.Select
      (P.attr_equals "pid" (R.Value.Int 2), P.Rename ([ ("id", "pid") ], P.Scan p_rel))
  in
  (match P.optimize plan with
  | P.Rename (_, P.Select _) -> ()
  | other -> Alcotest.failf "expected select under rename:\n%s" (P.explain other));
  check_int "still one row" 1 (R.Relation.cardinality (P.run (P.optimize plan)))

let test_explain () =
  let text = P.explain range_plan in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check "spatial join line" true (contains text "spatial join");
  check "scan line" true (contains text "scan");
  check "project line" true (contains text "project")

let test_estimated_rows () =
  check "scan estimate exact" true
    (P.estimated_rows (P.Scan p_rel) = float_of_int (List.length points));
  check "select reduces" true
    (P.estimated_rows (P.Select (P.attr_equals "id" (R.Value.Int 1), P.Scan p_rel))
    < P.estimated_rows (P.Scan p_rel))

let test_join_impl_choice () =
  (* Tiny inputs choose the nested loop; big estimates choose z-merge. *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let small_join =
    P.Spatial_join { zl = "z"; zr = "zb"; left = P.Scan p_rel; right = P.Scan b_rel; impl = None }
  in
  check "small input -> nested loop" true
    (contains (P.explain small_join) "nested loop");
  let big =
    R.Relation.make
      (R.Schema.make [ ("zz", R.Value.TZval) ])
      (List.init 500 (fun i ->
           [| R.Value.Zval (Sqp_zorder.Bitstring.of_int i ~width:10) |]))
  in
  let big_join =
    P.Spatial_join
      { zl = "zz"; zr = "zb"; left = P.Scan big; right = P.Scan (R.Ops.rename [] b_rel); impl = None }
  in
  check "big input -> z-merge" true (contains (P.explain big_join) "z-merge")

let test_union_product () =
  let u = P.Union (P.Scan p_rel, P.Scan p_rel) in
  check_int "union dedups" 6 (R.Relation.cardinality (P.run u));
  let small =
    R.Relation.make (R.Schema.make [ ("k", R.Value.TInt) ]) [ [| R.Value.Int 1 |] ]
  in
  let prod = P.Product (P.Scan p_rel, P.Scan small) in
  check_int "product" 6 (R.Relation.cardinality (P.run prod))

let test_natural_join_plan () =
  let extra =
    R.Relation.make
      (R.Schema.make [ ("id", R.Value.TInt); ("tag", R.Value.TStr) ])
      [ [| R.Value.Int 1; R.Value.Str "a" |]; [| R.Value.Int 3; R.Value.Str "b" |] ]
  in
  let plan = P.Natural_join (P.Scan p_rel, P.Scan extra) in
  check_int "joined rows" 2 (R.Relation.cardinality (P.run plan));
  Alcotest.(check (list string)) "schema"
    [ "id"; "z"; "x0"; "x1"; "tag" ]
    (R.Schema.names (P.schema plan))

let () =
  Alcotest.run "plan"
    [
      ( "unit",
        [
          Alcotest.test_case "schema" `Quick test_schema;
          Alcotest.test_case "run range query" `Quick test_run_range_query;
          Alcotest.test_case "select" `Quick test_select_and_run;
          Alcotest.test_case "optimize preserves semantics" `Quick test_optimize_preserves_semantics;
          Alcotest.test_case "pushdown below join" `Quick test_pushdown_happens;
          Alcotest.test_case "pushdown through rename" `Quick test_pushdown_through_rename;
          Alcotest.test_case "explain" `Quick test_explain;
          Alcotest.test_case "estimates" `Quick test_estimated_rows;
          Alcotest.test_case "join impl choice" `Quick test_join_impl_choice;
          Alcotest.test_case "union/product" `Quick test_union_product;
          Alcotest.test_case "natural join plan" `Quick test_natural_join_plan;
        ] );
    ]
