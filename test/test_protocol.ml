(* Wire and Protocol codec tests: roundtrips for every scalar, value,
   relation, plan and message variant; typed errors (never escaping
   exceptions) on malformed, truncated, oversized and wrong-version
   input; seeded frame fuzz; frame I/O over a socketpair. *)

module B = Sqp_zorder.Bitstring
module Value = Sqp_relalg.Value
module Schema = Sqp_relalg.Schema
module Relation = Sqp_relalg.Relation
module Wire = Sqp_relalg.Wire
module P = Sqp_server.Protocol
module Rng = Sqp_workload.Rng

let check = Alcotest.check
let checkb = Alcotest.(check bool)

(* Roundtrip through a writer/reader pair, via Wire.encode/decode. *)
let roundtrip writer reader v = Wire.decode reader (Wire.encode writer v)

let ok = function Ok v -> v | Error m -> Alcotest.failf "decode failed: %s" m

(* {1 Scalars} *)

let test_scalars () =
  List.iter
    (fun n -> check Alcotest.int "u32" n (ok (roundtrip Wire.write_u32 Wire.read_u32 n)))
    [ 0; 1; 255; 65536; 0xffff_ffff ];
  List.iter
    (fun n -> check Alcotest.int "i64" n (ok (roundtrip Wire.write_i64 Wire.read_i64 n)))
    [ 0; 1; -1; max_int; min_int; 42; -12345678901234 ];
  List.iter
    (fun s ->
      check Alcotest.string "string" s
        (ok (roundtrip Wire.write_string Wire.read_string s)))
    [ ""; "x"; "hello wire"; String.make 1000 'z' ];
  (try
     ignore (Wire.encode Wire.write_u32 (-1));
     Alcotest.fail "negative u32 accepted"
   with Invalid_argument _ -> ())

let test_values () =
  let cases =
    [
      Value.Null;
      Value.Int 0;
      Value.Int (-7);
      Value.Int max_int;
      Value.Float 3.5;
      Value.Float (-0.);
      Value.Float infinity;
      Value.Str "spatial";
      Value.Bool true;
      Value.Bool false;
      Value.Zval B.empty;
      Value.Zval (B.of_string "1011001");
      Value.Zval (B.init 65 (fun i -> i mod 3 = 0));
    ]
  in
  List.iter
    (fun v ->
      let v' = ok (roundtrip Wire.write_value Wire.read_value v) in
      checkb "value roundtrip" true (Value.equal v v'))
    cases;
  (* NaN: equality fails by definition, compare bit patterns instead *)
  match ok (roundtrip Wire.write_value Wire.read_value (Value.Float nan)) with
  | Value.Float f -> checkb "nan" true (Float.is_nan f)
  | _ -> Alcotest.fail "nan decoded to a different constructor"

let test_relation_roundtrip () =
  let schema =
    Schema.make
      [ ("id", Value.TInt); ("z", Value.TZval); ("w", Value.TFloat); ("s", Value.TStr) ]
  in
  let rel =
    Relation.make ~name:"mixed" schema
      [
        [| Value.Int 1; Value.Zval (B.of_string "101"); Value.Float 0.5; Value.Str "a" |];
        [| Value.Int 2; Value.Zval B.empty; Value.Null; Value.Str "" |];
      ]
  in
  let rel' = ok (roundtrip Wire.write_relation Wire.read_relation rel) in
  check Alcotest.string "name" (Relation.name rel) (Relation.name rel');
  checkb "schema" true (Schema.equal (Relation.schema rel) (Relation.schema rel'));
  checkb "tuples" true (Relation.equal_contents rel rel')

(* {1 Plans} *)

let deep_plan =
  Wire.(
    Project
      ( [ "a" ],
        Union
          ( Select_equals ("k", Value.Int 3, Scan "R"),
            Rename
              ( [ ("x", "y") ],
                Sort
                  ( [ "y" ],
                    Natural_join
                      ( Select_between ("v", Value.Int 1, Value.Int 9, Scan "S"),
                        Spatial_join
                          {
                            zl = "zr";
                            zr = "zs";
                            left = Product (Scan "R", Project_all ([ "z" ], Scan "S"));
                            right = Scan "S";
                          } ) ) ) ) ))

let test_plan_roundtrip () =
  let bytes = Wire.encode Wire.write_plan deep_plan in
  let p = ok (Wire.decode Wire.read_plan bytes) in
  (* plans contain only structural data; re-encoding is the strictest
     equality we can ask for *)
  check Alcotest.string "re-encoded bytes" bytes (Wire.encode Wire.write_plan p)

let test_plan_depth_guard () =
  let rec nest n p = if n = 0 then p else nest (n - 1) (Wire.Project ([ "a" ], p)) in
  let too_deep = nest (Wire.max_plan_depth + 1) (Wire.Scan "R") in
  match Wire.decode Wire.read_plan (Wire.encode Wire.write_plan too_deep) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "over-deep plan decoded"

(* {1 Messages} *)

let req_ok = function
  | Ok f -> f
  | Error (c, m) -> Alcotest.failf "request rejected (%s): %s" (P.error_code_name c) m

(* A two-entry shard map for the cluster frames (tags 12/13/14 and
   response tag 7). *)
let shard_map =
  Sqp_server.Shard_map.make ~epoch:7
    [
      { Sqp_server.Shard_map.zlo = 0; zhi = 2047; host = "127.0.0.1"; port = 4001 };
      { Sqp_server.Shard_map.zlo = 2048; zhi = 4095; host = "10.0.0.2"; port = 65535 };
    ]

(* [Shard_map.make] must enforce contiguous coverage from z = 0: the
   router routes mutations by exact ownership, so a gap would leave z
   values no shard owns and a mutation there unroutable. *)
let test_shard_map_validation () =
  let module SM = Sqp_server.Shard_map in
  let entry zlo zhi = { SM.zlo; zhi; host = "h"; port = 1 } in
  let rejects what entries =
    match SM.make ~epoch:1 entries with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "map with %s accepted" what
  in
  rejects "a coverage gap" [ entry 0 10; entry 12 20 ];
  rejects "an overlap" [ entry 0 10; entry 10 20 ];
  rejects "a nonzero start" [ entry 1 20 ];
  rejects "descending entries" [ entry 11 20; entry 0 10 ];
  rejects "inverted bounds" [ entry 0 10; entry 11 5 ];
  rejects "no entries" [];
  ignore (SM.make ~epoch:1 [ entry 0 10; entry 11 20 ])

let test_request_roundtrip () =
  let key client_id request_seq = Some { P.client_id; request_seq } in
  let cases =
    [
      (None, None, P.Range_search { lo = [| 0; 0 |]; hi = [| 1023; 1023 |] });
      (Some 250, None, P.Query deep_plan);
      (None, None, P.Explain (Wire.Scan "R"));
      (Some 1, None, P.Analyze (Wire.Scan "S"));
      (None, None, P.Health);
      ( Some 100,
        key 424_242 1,
        P.Insert
          {
            table = "L";
            points = [ ([| 1; 2 |], 7); ([| 3; 4 |], -1); ([| 0; 0 |], max_int) ];
          } );
      (None, None, P.Insert { table = ""; points = [] });
      ( None,
        key max_int max_int,
        P.Delete { table = "L"; points = [ [| 9; 9 |]; [| 1; 2; 3 |] ] } );
      (Some 5, key 7 0, P.Create_index { table = "L" });
      ( None,
        key 1 2,
        P.Live_range { table = "L"; lo = [| 0; 0 |]; hi = [| 255; 255 |] } );
      (None, None, P.Refresh_stats);
      (Some 3000, None, P.Refresh_stats);
      (None, None, P.Recover);
      (None, None, P.Shard_map_get);
      (Some 99, None, P.Shard_map_set { map = shard_map; self = 1 });
      (None, None, P.Shard_map_set { map = shard_map; self = -1 });
      (Some 10, None, P.Forward { epoch = 3; payload = "\x00\xffraw bytes" });
      (None, None, P.Forward { epoch = 0xFFFF_FFFF; payload = "\x02\x07" });
    ]
  in
  List.iter
    (fun (deadline_ms, idem, request) ->
      let bytes = P.encode_request { P.deadline_ms; idem; request } in
      let f = req_ok (P.decode_request bytes) in
      check Alcotest.(option int) "deadline" deadline_ms f.P.deadline_ms;
      checkb "idem" true (idem = f.P.idem);
      check Alcotest.string "request bytes" bytes
        (P.encode_request
           { P.deadline_ms = f.P.deadline_ms; idem = f.P.idem; request = f.P.request }))
    cases

let test_response_roundtrip () =
  let rel =
    Relation.make ~name:"r"
      (Schema.make [ ("rid", Value.TInt); ("sid", Value.TInt) ])
      [ [| Value.Int 1; Value.Int 1000 |] ]
  in
  let cases =
    [
      P.Rows rel;
      P.Text "project {a}\n  scan R\n";
      P.Analyzed { rendered = "analyze"; rows = rel };
      P.Health_report
        {
          healthy = true;
          detail = "ok";
          in_flight = 2;
          queued = 1;
          served = 99;
          mode = "serving";
        };
      P.Error { code = P.Overloaded; message = "queue full" };
      P.Error { code = P.Degraded; message = "disk full" };
      P.Ack { applied = 0; seq = 0 };
      P.Ack { applied = 42; seq = 1_000_000 };
      P.Shard_map shard_map;
      P.Error { code = P.Stale_epoch; message = "request epoch 3, shard at 4" };
    ]
  in
  List.iter
    (fun resp ->
      let bytes = P.encode_response resp in
      match P.decode_response bytes with
      | Error m -> Alcotest.failf "response rejected: %s" m
      | Ok resp' ->
          check Alcotest.string "response bytes" bytes (P.encode_response resp'))
    cases

(* {1 Malformed input draws typed errors, never exceptions} *)

let expect_code code bytes what =
  match P.decode_request bytes with
  | Ok _ -> Alcotest.failf "%s decoded" what
  | Error (c, _) ->
      check Alcotest.string what (P.error_code_name code) (P.error_code_name c)

let test_malformed_requests () =
  expect_code P.Bad_request "" "empty payload";
  expect_code P.Bad_request "\x01" "one byte";
  (* version 9 *)
  expect_code P.Unsupported_version "\x09\x05\x00\x00\x00\x00" "future version";
  (* unknown tag 200 *)
  expect_code P.Bad_request "\x01\xc8\x00\x00\x00\x00" "unknown tag";
  (* health with trailing bytes *)
  expect_code P.Bad_request "\x01\x05\x00\x00\x00\x00XX" "trailing bytes";
  (* range search truncated mid-array *)
  let full =
    P.encode_request
      {
        P.deadline_ms = None;
        idem = None;
        request = P.Range_search { lo = [| 3; 4 |]; hi = [| 5; 6 |] };
      }
  in
  expect_code P.Bad_request (String.sub full 0 (String.length full - 5)) "truncated";
  (* dimensionality mismatch *)
  let b = Buffer.create 32 in
  Wire.write_u8 b P.version;
  Wire.write_u8 b 1;
  Wire.write_u32 b 0;
  Wire.write_u8 b 0;
  Wire.write_u32 b 1;
  Wire.write_i64 b 7;
  Wire.write_u32 b 2;
  Wire.write_i64 b 8;
  Wire.write_i64 b 9;
  expect_code P.Bad_request (Buffer.contents b) "lo/hi mismatch";
  (* absurd dimension count *)
  let b = Buffer.create 32 in
  Wire.write_u8 b P.version;
  Wire.write_u8 b 1;
  Wire.write_u32 b 0;
  Wire.write_u8 b 0;
  Wire.write_u32 b 1_000_000;
  expect_code P.Bad_request (Buffer.contents b) "dimension bomb";
  (* insert truncated mid-point-list *)
  let full =
    P.encode_request
      {
        P.deadline_ms = None;
        idem = None;
        request = P.Insert { table = "L"; points = [ ([| 1; 2 |], 3) ] };
      }
  in
  expect_code P.Bad_request (String.sub full 0 (String.length full - 3))
    "truncated insert";
  (* delete advertising more points than the payload carries *)
  let b = Buffer.create 32 in
  Wire.write_u8 b P.version;
  Wire.write_u8 b 7;
  Wire.write_u32 b 0;
  Wire.write_u8 b 0;
  Wire.write_string b "L";
  Wire.write_u32 b 50_000;
  expect_code P.Bad_request (Buffer.contents b) "delete count bomb";
  (* live range with mismatched bound dimensionality *)
  let b = Buffer.create 32 in
  Wire.write_u8 b P.version;
  Wire.write_u8 b 9;
  Wire.write_u32 b 0;
  Wire.write_u8 b 0;
  Wire.write_string b "L";
  Wire.write_int_array b [| 1; 2 |];
  Wire.write_int_array b [| 3; 4; 5 |];
  expect_code P.Bad_request (Buffer.contents b) "live range lo/hi mismatch";
  (* idempotency key on a non-mutation tag *)
  let b = Buffer.create 32 in
  Wire.write_u8 b P.version;
  Wire.write_u8 b 5;
  Wire.write_u32 b 0;
  Wire.write_u8 b 1;
  Wire.write_i64 b 7;
  Wire.write_i64 b 1;
  expect_code P.Bad_request (Buffer.contents b) "idem on health";
  (* idempotency flag byte that is neither 0 nor 1 *)
  let b = Buffer.create 32 in
  Wire.write_u8 b P.version;
  Wire.write_u8 b 6;
  Wire.write_u32 b 0;
  Wire.write_u8 b 9;
  Wire.write_string b "L";
  Wire.write_point_list b [];
  expect_code P.Bad_request (Buffer.contents b) "bad idem flag";
  (* the encoder refuses to build the same nonsense *)
  try
    ignore
      (P.encode_request
         {
           P.deadline_ms = None;
           idem = Some { P.client_id = 1; request_seq = 1 };
           request = P.Health;
         });
    Alcotest.fail "encode accepted idem on Health"
  with Invalid_argument _ -> ()

(* Version-1 peers must keep working against a v2 stack: v1 requests
   (no idempotency block) decode, and responses encoded at version 1
   stay within the v1 grammar. *)
let test_v1_compat () =
  (* a v1 range-search frame, built byte by byte *)
  let b = Buffer.create 32 in
  Wire.write_u8 b 1;
  Wire.write_u8 b 1;
  Wire.write_u32 b 250;
  Wire.write_int_array b [| 1; 2 |];
  Wire.write_int_array b [| 3; 4 |];
  let f = req_ok (P.decode_request (Buffer.contents b)) in
  check Alcotest.(option int) "v1 deadline" (Some 250) f.P.deadline_ms;
  checkb "v1 has no idem" true (f.P.idem = None);
  checkb "v1 request" true
    (f.P.request = P.Range_search { lo = [| 1; 2 |]; hi = [| 3; 4 |] });
  (* a v1 insert — the idem block must NOT be expected *)
  let b = Buffer.create 32 in
  Wire.write_u8 b 1;
  Wire.write_u8 b 6;
  Wire.write_u32 b 0;
  Wire.write_string b "L";
  Wire.write_point_list b [ ([| 5; 6 |], 9) ];
  let f = req_ok (P.decode_request (Buffer.contents b)) in
  checkb "v1 insert" true
    (f.P.request = P.Insert { table = "L"; points = [ ([| 5; 6 |], 9) ] });
  (* v1-encoded responses roundtrip and stay decodable *)
  let health =
    P.Health_report
      {
        healthy = true;
        detail = "ok";
        in_flight = 0;
        queued = 0;
        served = 7;
        mode = "serving";
      }
  in
  let bytes = P.encode_response ~version:1 health in
  check Alcotest.int "v1 response version byte" 1 (P.payload_version bytes);
  (match P.decode_response bytes with
  | Ok (P.Health_report h) ->
      check Alcotest.string "v1 health has no mode" "" h.P.mode;
      check Alcotest.int "v1 health served" 7 h.P.served
  | Ok _ -> Alcotest.fail "v1 health decoded to a different kind"
  | Error m -> Alcotest.failf "v1 health rejected: %s" m);
  (* Degraded downgrades to Server_error for v1 peers *)
  (match
     P.decode_response
       (P.encode_response ~version:1
          (P.Error { code = P.Degraded; message = "disk full" }))
   with
  | Ok (P.Error { code = P.Server_error; message }) ->
      check Alcotest.string "downgrade message" "degraded: disk full" message
  | Ok _ -> Alcotest.fail "v1 Degraded decoded to something else"
  | Error m -> Alcotest.failf "v1 Degraded rejected: %s" m);
  (* and version 2 keeps the typed code *)
  (match
     P.decode_response
       (P.encode_response (P.Error { code = P.Degraded; message = "disk full" }))
   with
  | Ok (P.Error { code = P.Degraded; _ }) -> ()
  | _ -> Alcotest.fail "v2 Degraded did not roundtrip");
  (* unknown encode versions are a programming error *)
  try
    ignore (P.encode_response ~version:3 health);
    Alcotest.fail "version 3 accepted"
  with Invalid_argument _ -> ()

let test_malformed_responses () =
  List.iter
    (fun (bytes, what) ->
      match P.decode_response bytes with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s decoded" what)
    [
      ("", "empty");
      ("\x07\x01", "future version");
      ("\x01\xff", "unknown tag");
      ("\x01\x02\x00\x00\x00\x09ab", "string length past end");
      ("\x01\x05\x2a\x00\x00\x00\x00", "unknown error code");
    ];
  (* relation with an inflated tuple count *)
  let b = Buffer.create 64 in
  Wire.write_u8 b 1;
  Wire.write_u8 b 1;
  Wire.write_string b "r";
  Wire.write_schema b (Schema.make [ ("id", Value.TInt) ]);
  Wire.write_u32 b 0xffff_ff00;
  match P.decode_response (Buffer.contents b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "count bomb decoded"

(* {1 Seeded fuzz}

   Random bytes, and random corruptions of valid frames, must always
   come back as [Ok] or a typed [Error] — decoders may not raise. *)

let test_fuzz_random_bytes () =
  let rng = Rng.create ~seed:4242 in
  for _ = 1 to 4000 do
    let len = Rng.int rng 80 in
    let s = String.init len (fun _ -> Char.chr (Rng.int rng 256)) in
    (try ignore (P.decode_request s)
     with e ->
       Alcotest.failf "decode_request raised %s on %S" (Printexc.to_string e) s);
    try ignore (P.decode_response s)
    with e ->
      Alcotest.failf "decode_response raised %s on %S" (Printexc.to_string e) s
  done

let test_fuzz_corrupted_frames () =
  let rng = Rng.create ~seed:777 in
  let valid =
    [|
      P.encode_request
        { P.deadline_ms = Some 5; idem = None; request = P.Query deep_plan };
      P.encode_request
        {
          P.deadline_ms = None;
          idem = None;
          request = P.Range_search { lo = [| 1; 2 |]; hi = [| 3; 4 |] };
        };
      P.encode_request
        {
          P.deadline_ms = Some 9;
          idem = Some { P.client_id = 123_456; request_seq = 42 };
          request = P.Insert { table = "L"; points = [ ([| 5; 6 |], 1); ([| 7; 8 |], 2) ] };
        };
      P.encode_request
        {
          P.deadline_ms = None;
          idem = None;
          request = P.Live_range { table = "L"; lo = [| 0; 0 |]; hi = [| 9; 9 |] };
        };
      P.encode_response (P.Ack { applied = 3; seq = 17 });
      P.encode_response
        (P.Rows
           (Relation.make
              (Schema.make [ ("z", Value.TZval) ])
              [ [| Value.Zval (B.of_string "110") |] ]));
    |]
  in
  for _ = 1 to 2000 do
    let base = valid.(Rng.int rng (Array.length valid)) in
    let b = Bytes.of_string base in
    for _ = 0 to Rng.int rng 4 do
      Bytes.set b (Rng.int rng (Bytes.length b)) (Char.chr (Rng.int rng 256))
    done;
    let s = Bytes.to_string b in
    try
      ignore (P.decode_request s);
      ignore (P.decode_response s)
    with e -> Alcotest.failf "corruption raised %s" (Printexc.to_string e)
  done

(* {1 Frame I/O} *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_frame_roundtrip () =
  with_socketpair (fun a b ->
      let payload =
        P.encode_request { P.deadline_ms = None; idem = None; request = P.Health }
      in
      P.write_frame a payload;
      P.write_frame a payload;
      (match P.read_frame b with
      | Ok p -> check Alcotest.string "frame 1" payload p
      | Error e -> Alcotest.failf "read 1: %s" (P.read_error_to_string e));
      match P.read_frame b with
      | Ok p -> check Alcotest.string "frame 2" payload p
      | Error e -> Alcotest.failf "read 2: %s" (P.read_error_to_string e))

let test_frame_eof_and_truncation () =
  with_socketpair (fun a b ->
      Unix.close a;
      match P.read_frame b with
      | Error P.Eof -> ()
      | _ -> Alcotest.fail "expected Eof");
  with_socketpair (fun a b ->
      (* a length prefix promising 100 bytes, then silence *)
      ignore (Unix.write a (Bytes.of_string "\x00\x00\x00\x64xy") 0 6);
      Unix.close a;
      match P.read_frame b with
      | Error P.Truncated -> ()
      | _ -> Alcotest.fail "expected Truncated");
  with_socketpair (fun a b ->
      (* prefix itself cut short *)
      ignore (Unix.write a (Bytes.of_string "\x00\x00") 0 2);
      Unix.close a;
      match P.read_frame b with
      | Error P.Truncated -> ()
      | _ -> Alcotest.fail "expected Truncated on short prefix")

let test_frame_oversized () =
  with_socketpair (fun a b ->
      ignore (Unix.write a (Bytes.of_string "\xff\xff\xff\xff") 0 4);
      match P.read_frame ~max_bytes:4096 b with
      | Error (P.Oversized n) -> check Alcotest.int "length" 0xffff_ffff n
      | _ -> Alcotest.fail "expected Oversized");
  with_socketpair (fun a b ->
      (* below the 2-byte floor is equally unusable *)
      ignore (Unix.write a (Bytes.of_string "\x00\x00\x00\x01") 0 4);
      match P.read_frame b with
      | Error (P.Oversized 1) -> ()
      | _ -> Alcotest.fail "expected Oversized 1")

(* The session timeouts: a silent peer trips the idle timeout (not
   mid-frame), a dribbling peer trips the frame timeout (mid-frame), and
   a peer that stops reading trips the write timeout. *)
let test_frame_stalls () =
  with_socketpair (fun _a b ->
      (* nothing sent at all: idle, not mid-frame *)
      match P.read_frame_io ~idle_timeout:0.05 (P.io_of_fd b) with
      | Error (P.Stalled { mid_frame = false }) -> ()
      | r ->
          Alcotest.failf "expected idle stall, got %s"
            (match r with
            | Ok _ -> "a frame"
            | Error e -> P.read_error_to_string e));
  with_socketpair (fun a b ->
      (* half a length prefix, then silence: mid-frame *)
      ignore (Unix.write a (Bytes.of_string "\x00\x00") 0 2);
      match P.read_frame_io ~idle_timeout:0.05 (P.io_of_fd b) with
      | Error (P.Stalled { mid_frame = true }) -> ()
      | _ -> Alcotest.fail "expected mid-frame stall on a torn prefix");
  with_socketpair (fun a b ->
      (* full prefix, partial payload, then silence: the slow loris *)
      ignore (Unix.write a (Bytes.of_string "\x00\x00\x00\x64xy") 0 6);
      match P.read_frame_io ~frame_timeout:0.05 (P.io_of_fd b) with
      | Error (P.Stalled { mid_frame = true }) -> ()
      | _ -> Alcotest.fail "expected mid-frame stall on a dribbled payload");
  with_socketpair (fun a _b ->
      (* the peer never reads: a large frame must not block forever *)
      let payload = String.make 4_000_000 'x' in
      match P.write_frame_io ~timeout:0.05 (P.io_of_fd a) payload with
      | () -> Alcotest.fail "oversized write completed against a full buffer"
      | exception Unix.Unix_error (Unix.ETIMEDOUT, _, _) -> ())

let () =
  Alcotest.run "protocol"
    [
      ( "wire",
        [
          Alcotest.test_case "scalars" `Quick test_scalars;
          Alcotest.test_case "values" `Quick test_values;
          Alcotest.test_case "relation" `Quick test_relation_roundtrip;
          Alcotest.test_case "plan" `Quick test_plan_roundtrip;
          Alcotest.test_case "plan depth guard" `Quick test_plan_depth_guard;
        ] );
      ( "messages",
        [
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
          Alcotest.test_case "malformed requests" `Quick test_malformed_requests;
          Alcotest.test_case "malformed responses" `Quick test_malformed_responses;
          Alcotest.test_case "v1 compatibility" `Quick test_v1_compat;
          Alcotest.test_case "shard map validation" `Quick
            test_shard_map_validation;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "random bytes" `Quick test_fuzz_random_bytes;
          Alcotest.test_case "corrupted frames" `Quick test_fuzz_corrupted_frames;
        ] );
      ( "framing",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "eof and truncation" `Quick test_frame_eof_and_truncation;
          Alcotest.test_case "oversized" `Quick test_frame_oversized;
          Alcotest.test_case "stalls and timeouts" `Quick test_frame_stalls;
        ] );
    ]
