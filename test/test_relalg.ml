module R = Sqp_relalg
module Z = Sqp_zorder
module B = Z.Bitstring

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* {1 Value} *)

let test_value_compare () =
  check "int order" true (R.Value.compare (R.Value.Int 1) (R.Value.Int 2) < 0);
  check "zval z order" true
    (R.Value.compare (R.Value.Zval (B.of_string "01")) (R.Value.Zval (B.of_string "011")) < 0);
  check "null first" true (R.Value.compare R.Value.Null (R.Value.Int (-100)) < 0);
  check "equal" true (R.Value.equal (R.Value.Str "x") (R.Value.Str "x"))

let test_value_accessors () =
  check_int "to_int" 5 (R.Value.to_int (R.Value.Int 5));
  (match R.Value.to_int (R.Value.Str "x") with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  check "to_zval" true
    (B.equal (R.Value.to_zval (R.Value.Zval (B.of_string "01"))) (B.of_string "01"))

(* {1 Schema} *)

let schema_ab = R.Schema.make [ ("a", R.Value.TInt); ("b", R.Value.TStr) ]

let test_schema () =
  check_int "arity" 2 (R.Schema.arity schema_ab);
  check_int "index" 1 (R.Schema.index schema_ab "b");
  check "mem" true (R.Schema.mem schema_ab "a");
  check "not mem" false (R.Schema.mem schema_ab "c");
  check "ty" true (R.Schema.ty schema_ab "b" = R.Value.TStr);
  (match R.Schema.make [ ("x", R.Value.TInt); ("x", R.Value.TStr) ] with
  | _ -> Alcotest.fail "duplicate attr should fail"
  | exception Invalid_argument _ -> ());
  let renamed = R.Schema.rename schema_ab [ ("a", "z") ] in
  Alcotest.(check (list string)) "renamed" [ "z"; "b" ] (R.Schema.names renamed);
  let projected = R.Schema.project schema_ab [ "b" ] in
  check_int "projected arity" 1 (R.Schema.arity projected)

let test_schema_common_concat () =
  let s2 = R.Schema.make [ ("b", R.Value.TStr); ("c", R.Value.TInt) ] in
  Alcotest.(check (list string)) "common" [ "b" ] (R.Schema.common schema_ab s2);
  (match R.Schema.concat schema_ab s2 with
  | _ -> Alcotest.fail "clash should fail"
  | exception Invalid_argument _ -> ());
  let s3 = R.Schema.make [ ("c", R.Value.TInt) ] in
  check_int "concat arity" 3 (R.Schema.arity (R.Schema.concat schema_ab s3))

(* {1 Relations and operators} *)

let rel_people =
  R.Relation.make ~name:"people" schema_ab
    [
      [| R.Value.Int 1; R.Value.Str "ann" |];
      [| R.Value.Int 2; R.Value.Str "bob" |];
      [| R.Value.Int 3; R.Value.Str "cat" |];
      [| R.Value.Int 3; R.Value.Str "cat" |];
    ]

let test_relation_basics () =
  check_int "cardinality" 4 (R.Relation.cardinality rel_people);
  let t = List.hd (R.Relation.tuples rel_people) in
  check_int "get" 1 (R.Value.to_int (R.Relation.get t schema_ab "a"))

let test_relation_arity_check () =
  match R.Relation.make schema_ab [ [| R.Value.Int 1 |] ] with
  | _ -> Alcotest.fail "arity mismatch should fail"
  | exception Invalid_argument _ -> ()

let test_select () =
  let big = R.Ops.select (fun t -> R.Value.to_int t.(0) > 1) rel_people in
  check_int "selected" 3 (R.Relation.cardinality big)

let test_project () =
  let names = R.Ops.project [ "b" ] rel_people in
  check_int "distinct" 3 (R.Relation.cardinality names);
  let all = R.Ops.project_all [ "b" ] rel_people in
  check_int "bag" 4 (R.Relation.cardinality all)

let test_distinct () =
  check_int "dedup" 3 (R.Relation.cardinality (R.Ops.distinct rel_people))

let test_extend () =
  let doubled =
    R.Ops.extend "a2" R.Value.TInt
      (fun t -> R.Value.Int (2 * R.Value.to_int t.(0)))
      rel_people
  in
  let t = List.hd (R.Relation.tuples doubled) in
  check_int "computed" 2 (R.Value.to_int (R.Relation.get t (R.Relation.schema doubled) "a2"))

let test_sort_by () =
  let sorted = R.Ops.sort_by [ "b"; "a" ] rel_people in
  match R.Relation.tuples sorted with
  | first :: _ -> check "ann first" true (R.Value.to_string_exn first.(1) = "ann")
  | [] -> Alcotest.fail "empty"

let test_product_union () =
  let other =
    R.Relation.make (R.Schema.make [ ("c", R.Value.TInt) ]) [ [| R.Value.Int 9 |] ]
  in
  check_int "product" 4 (R.Relation.cardinality (R.Ops.product rel_people other));
  let u = R.Ops.union rel_people rel_people in
  check_int "set union" 3 (R.Relation.cardinality u)

let test_natural_join () =
  let orders =
    R.Relation.make
      (R.Schema.make [ ("a", R.Value.TInt); ("item", R.Value.TStr) ])
      [
        [| R.Value.Int 1; R.Value.Str "pen" |];
        [| R.Value.Int 1; R.Value.Str "ink" |];
        [| R.Value.Int 3; R.Value.Str "pad" |];
        [| R.Value.Int 9; R.Value.Str "egg" |];
      ]
  in
  let joined = R.Ops.natural_join (R.Ops.distinct rel_people) orders in
  check_int "matches" 3 (R.Relation.cardinality joined);
  Alcotest.(check (list string)) "schema" [ "a"; "b"; "item" ]
    (R.Schema.names (R.Relation.schema joined))

let test_group_by () =
  let orders =
    R.Relation.make
      (R.Schema.make [ ("cust", R.Value.TStr); ("amount", R.Value.TInt) ])
      [
        [| R.Value.Str "ann"; R.Value.Int 5 |];
        [| R.Value.Str "bob"; R.Value.Int 3 |];
        [| R.Value.Str "ann"; R.Value.Int 7 |];
        [| R.Value.Str "ann"; R.Value.Int 1 |];
      ]
  in
  let g =
    R.Ops.group_by [ "cust" ]
      [ ("n", R.Ops.Count); ("total", R.Ops.Sum "amount");
        ("lo", R.Ops.Min "amount"); ("hi", R.Ops.Max "amount") ]
      orders
  in
  check_int "two groups" 2 (R.Relation.cardinality g);
  let schema = R.Relation.schema g in
  let find cust =
    List.find
      (fun t -> R.Value.to_string_exn (R.Relation.get t schema "cust") = cust)
      (R.Relation.tuples g)
  in
  let ann = find "ann" in
  check_int "count" 3 (R.Value.to_int (R.Relation.get ann schema "n"));
  check_int "sum" 13 (R.Value.to_int (R.Relation.get ann schema "total"));
  check_int "min" 1 (R.Value.to_int (R.Relation.get ann schema "lo"));
  check_int "max" 7 (R.Value.to_int (R.Relation.get ann schema "hi"))

let test_group_by_area_per_object () =
  (* "What is the area of each object?" phrased relationally: decompose,
     extend with per-element cell counts, group by id. *)
  let space = Z.Space.make ~dims:2 ~depth:5 in
  let shapes =
    [
      (1, Sqp_geom.Shape.Box (Sqp_geom.Box.of_ranges [ (0, 3); (0, 3) ]));
      (2, Sqp_geom.Shape.Box (Sqp_geom.Box.of_ranges [ (10, 14); (10, 12) ]));
    ]
  in
  let r = R.Query.decompose_relation space shapes in
  let with_cells =
    R.Ops.extend "cells" R.Value.TInt
      (fun t ->
        R.Value.Int
          (int_of_float
             (Z.Element.cells space (R.Value.to_zval t.(1)))))
      r
  in
  let areas = R.Ops.group_by [ "id" ] [ ("area", R.Ops.Sum "cells") ] with_cells in
  let schema = R.Relation.schema areas in
  let area id =
    R.Value.to_int
      (R.Relation.get
         (List.find
            (fun t -> R.Value.to_int (R.Relation.get t schema "id") = id)
            (R.Relation.tuples areas))
         schema "area")
  in
  check_int "object 1" 16 (area 1);
  check_int "object 2" 15 (area 2)

let test_group_by_invalid () =
  match R.Ops.group_by [ "b" ] [ ("s", R.Ops.Sum "b") ] rel_people with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_flatten_sets () =
  let r =
    R.Relation.make
      (R.Schema.make [ ("id", R.Value.TInt); ("n", R.Value.TInt) ])
      [ [| R.Value.Int 1; R.Value.Int 2 |]; [| R.Value.Int 2; R.Value.Int 0 |] ]
  in
  (* Expand n into n copies 0..n-1. *)
  let f =
    R.Ops.flatten_sets r ~set_attr:"n"
      (fun v -> List.init (R.Value.to_int v) (fun i -> R.Value.Int i))
      R.Value.TInt
  in
  check_int "expanded" 2 (R.Relation.cardinality f)

(* {1 Spatial join} *)

let space = Z.Space.make ~dims:2 ~depth:5

let zrel name attr els =
  R.Relation.make ~name
    (R.Schema.make [ (attr ^ "_id", R.Value.TInt); (attr, R.Value.TZval) ])
    (List.mapi (fun i e -> [| R.Value.Int i; R.Value.Zval e |]) els)

let test_spatial_join_basic () =
  let r = zrel "R" "zr" [ B.of_string "00"; B.of_string "01" ] in
  let s = zrel "S" "zs" [ B.of_string "0011"; B.of_string "1" ] in
  let joined, stats = R.Spatial_join.merge r ~zr:"zr" s ~zs:"zs" in
  (* 00 contains 0011; 01 and 1 match nothing. *)
  check_int "one pair" 1 (R.Relation.cardinality joined);
  check_int "stats pairs" 1 stats.R.Spatial_join.pairs;
  let t = List.hd (R.Relation.tuples joined) in
  check_int "r id" 0 (R.Value.to_int (R.Relation.get t (R.Relation.schema joined) "zr_id"));
  check_int "s id" 0 (R.Value.to_int (R.Relation.get t (R.Relation.schema joined) "zs_id"))

let test_spatial_join_both_directions () =
  (* Containment in either direction must be found. *)
  let r = zrel "R" "zr" [ B.of_string "0011" ] in
  let s = zrel "S" "zs" [ B.of_string "00" ] in
  let joined, _ = R.Spatial_join.merge r ~zr:"zr" s ~zs:"zs" in
  check_int "zs contains zr" 1 (R.Relation.cardinality joined)

let test_spatial_join_equal_elements () =
  let r = zrel "R" "zr" [ B.of_string "010" ] in
  let s = zrel "S" "zs" [ B.of_string "010" ] in
  let joined, _ = R.Spatial_join.merge r ~zr:"zr" s ~zs:"zs" in
  check_int "emitted exactly once" 1 (R.Relation.cardinality joined)

let test_spatial_join_matches_nested_loop () =
  let rng = Sqp_workload.Rng.create ~seed:21 in
  for _ = 1 to 20 do
    let rand_els n =
      List.init n (fun _ ->
          let len = Sqp_workload.Rng.int rng 9 in
          B.init len (fun _ -> Sqp_workload.Rng.bool rng))
    in
    let r = zrel "R" "zr" (rand_els 30) in
    let s = zrel "S" "zs" (rand_els 30) in
    let m, _ = R.Spatial_join.merge r ~zr:"zr" s ~zs:"zs" in
    let n, _ = R.Spatial_join.nested_loop r ~zr:"zr" s ~zs:"zs" in
    if not (R.Relation.equal_contents m n) then
      Alcotest.failf "merge %d vs nested %d" (R.Relation.cardinality m)
        (R.Relation.cardinality n)
  done

let test_spatial_join_merge_cheaper () =
  let rng = Sqp_workload.Rng.create ~seed:2 in
  let rand_els n =
    List.init n (fun _ ->
        let len = 4 + Sqp_workload.Rng.int rng 6 in
        B.init len (fun _ -> Sqp_workload.Rng.bool rng))
  in
  let r = zrel "R" "zr" (rand_els 200) in
  let s = zrel "S" "zs" (rand_els 200) in
  let _, ms = R.Spatial_join.merge r ~zr:"zr" s ~zs:"zs" in
  let _, ns = R.Spatial_join.nested_loop r ~zr:"zr" s ~zs:"zs" in
  check "merge does fewer comparisons" true
    (ms.R.Spatial_join.comparisons * 4 < ns.R.Spatial_join.comparisons)

(* {1 Query scenarios} *)

let test_range_query_scenario () =
  let points =
    [ (1, [| 2; 3 |]); (2, [| 10; 10 |]); (3, [| 20; 25 |]); (4, [| 31; 31 |]) ]
  in
  let box = Sqp_geom.Box.of_ranges [ (5, 25); (5, 30) ] in
  let result = R.Query.range_query space points box in
  check_int "two points" 2 (R.Relation.cardinality result);
  let coords =
    List.map
      (fun t -> (R.Value.to_int t.(0), R.Value.to_int t.(1)))
      (R.Relation.tuples result)
  in
  check "both present" true
    (List.mem (10, 10) coords && List.mem (20, 25) coords)

let test_range_query_matches_brute_force () =
  let rng = Sqp_workload.Rng.create ~seed:31 in
  let points =
    List.init 80 (fun i -> (i, [| Sqp_workload.Rng.int rng 32; Sqp_workload.Rng.int rng 32 |]))
  in
  for _ = 1 to 10 do
    let x1 = Sqp_workload.Rng.int rng 32 and x2 = Sqp_workload.Rng.int rng 32 in
    let y1 = Sqp_workload.Rng.int rng 32 and y2 = Sqp_workload.Rng.int rng 32 in
    let box =
      Sqp_geom.Box.make ~lo:[| min x1 x2; min y1 y2 |] ~hi:[| max x1 x2; max y1 y2 |]
    in
    let result = R.Query.range_query space points box in
    let expected =
      List.filter (fun (_, p) -> Sqp_geom.Box.contains_point box p) points
      |> List.map (fun (_, p) -> (p.(0), p.(1)))
      |> List.sort_uniq compare
    in
    let got =
      List.map
        (fun t -> (R.Value.to_int t.(0), R.Value.to_int t.(1)))
        (R.Relation.tuples result)
      |> List.sort compare
    in
    if got <> expected then Alcotest.fail "range query via join mismatch"
  done

let test_overlapping_pairs () =
  let mk_box x y w h =
    Sqp_geom.Shape.Box (Sqp_geom.Box.of_ranges [ (x, x + w - 1); (y, y + h - 1) ])
  in
  let r = [ (1, mk_box 0 0 8 8); (2, mk_box 20 20 4 4) ] in
  let s = [ (7, mk_box 4 4 8 8); (8, mk_box 28 28 2 2) ] in
  let pairs = R.Query.overlapping_pairs space r s in
  check_int "one overlap" 1 (R.Relation.cardinality pairs);
  let t = List.hd (R.Relation.tuples pairs) in
  check_int "rid" 1 (R.Value.to_int t.(0));
  check_int "sid" 7 (R.Value.to_int t.(1))

(* {1 Stored relations on disk} *)

let test_stored_durable_roundtrip () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ()) "sqp_test_stored.rel"
  in
  let clean () =
    List.iter
      (fun p -> if Sys.file_exists p then Sys.remove p)
      [ path; path ^ ".tmp" ]
  in
  clean ();
  Fun.protect ~finally:clean (fun () ->
      let schema =
        R.Schema.make
          [ ("id", R.Value.TInt); ("label", R.Value.TStr); ("score", R.Value.TFloat);
            ("flag", R.Value.TBool); ("z", R.Value.TZval) ]
      in
      let tuples =
        List.init 100 (fun i ->
            [| R.Value.Int i;
               (if i mod 7 = 0 then R.Value.Null else R.Value.Str (Printf.sprintf "row %d" i));
               R.Value.Float (float_of_int i /. 3.0);
               R.Value.Bool (i mod 2 = 0);
               R.Value.Zval (B.of_string (if i mod 3 = 0 then "0110" else "10")) |])
      in
      let rel = R.Relation.make ~name:"durable" schema tuples in
      let stored = R.Stored.store ~tuples_per_page:9 rel in
      R.Stored.save_to ~path stored;
      let back = R.Stored.load_from ~path () in
      Alcotest.(check string) "name" "durable" (R.Stored.name back);
      check "schema" true (R.Schema.equal schema (R.Stored.schema back));
      check_int "cardinality" 100 (R.Stored.cardinality back);
      check_int "tuples_per_page" 9 (R.Stored.tuples_per_page back);
      check_int "pages" (R.Stored.pages stored) (R.Stored.pages back);
      check "tuples identical in order" true
        (R.Relation.tuples (R.Stored.scan back) = R.Relation.tuples rel))

let () =
  Alcotest.run "relalg"
    [
      ( "value",
        [
          Alcotest.test_case "compare" `Quick test_value_compare;
          Alcotest.test_case "accessors" `Quick test_value_accessors;
        ] );
      ( "schema",
        [
          Alcotest.test_case "basics" `Quick test_schema;
          Alcotest.test_case "common/concat" `Quick test_schema_common_concat;
        ] );
      ( "operators",
        [
          Alcotest.test_case "relation basics" `Quick test_relation_basics;
          Alcotest.test_case "arity check" `Quick test_relation_arity_check;
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "extend" `Quick test_extend;
          Alcotest.test_case "sort_by" `Quick test_sort_by;
          Alcotest.test_case "product/union" `Quick test_product_union;
          Alcotest.test_case "natural join" `Quick test_natural_join;
          Alcotest.test_case "group_by" `Quick test_group_by;
          Alcotest.test_case "group_by area per object" `Quick test_group_by_area_per_object;
          Alcotest.test_case "group_by invalid" `Quick test_group_by_invalid;
          Alcotest.test_case "flatten_sets" `Quick test_flatten_sets;
        ] );
      ( "spatial join",
        [
          Alcotest.test_case "basic containment" `Quick test_spatial_join_basic;
          Alcotest.test_case "both directions" `Quick test_spatial_join_both_directions;
          Alcotest.test_case "equal elements once" `Quick test_spatial_join_equal_elements;
          Alcotest.test_case "merge = nested loop" `Quick test_spatial_join_matches_nested_loop;
          Alcotest.test_case "merge cheaper" `Quick test_spatial_join_merge_cheaper;
        ] );
      ( "durable snapshots",
        [
          Alcotest.test_case "save_to/load_from roundtrip" `Quick
            test_stored_durable_roundtrip;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "range query (Section 4)" `Quick test_range_query_scenario;
          Alcotest.test_case "range query = brute force" `Quick test_range_query_matches_brute_force;
          Alcotest.test_case "overlapping pairs" `Quick test_overlapping_pairs;
        ] );
    ]
