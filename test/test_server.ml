(* End-to-end server acceptance tests.

   The heart is remote execution fidelity: concurrent loopback clients
   issuing a seeded query battery must receive results identical to
   running the same plans in-process with [Plan.run] — and afterwards
   the serving metrics must reconcile (in-flight gauge back to 0,
   latency histogram count equal to the number of requests).  Around
   that: deterministic overload (Overloaded, no crash), deadline
   timeouts, typed catalog errors, malformed frames at the socket, and
   graceful drain completing an in-flight query. *)

module P = Sqp_server.Protocol
module Client = Sqp_server.Client
module Server = Sqp_server.Server
module Catalog = Sqp_server.Catalog
module Wire = Sqp_relalg.Wire
module Plan = Sqp_relalg.Plan
module Relation = Sqp_relalg.Relation
module M = Sqp_obs.Metrics
module Box = Sqp_geom.Box

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* One modest seeded fixture for the whole file (server startup also
   materializes R and S onto stored pages). *)
let wk = Sqp_workload.Seeded.standard ~n_points:400 ~n_objects:12 ~n_query_boxes:24 ()
let catalog = Catalog.of_seeded wk

let join_plan =
  Wire.(
    Project
      ( [ "rid"; "sid" ],
        Spatial_join { zl = "zr"; zr = "zs"; left = Scan "R"; right = Scan "S" } ))

let with_server ?(config = Server.default_config) f =
  let metrics = M.create () in
  let server = Server.start ~config ~metrics catalog in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () -> f server metrics)

let reply_ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Client.error_to_string e)

let expect_error what code = function
  | Ok _ -> Alcotest.failf "%s: expected %s" what (P.error_code_name code)
  | Error (Client.Remote { code = c; _ }) ->
      Alcotest.(check string) what (P.error_code_name code) (P.error_code_name c)
  | Error (Client.Transport _ as e) ->
      Alcotest.failf "%s: expected %s, got %s" what (P.error_code_name code)
        (Client.error_to_string e)

let eventually ?(timeout = 5.0) cond =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if cond () then true
    else if Unix.gettimeofday () -. t0 > timeout then false
    else (
      Thread.delay 0.002;
      go ())
  in
  go ()

(* {1 Remote execution fidelity under concurrency} *)

let test_concurrent_differential () =
  with_server (fun server metrics ->
      let port = Server.port server in
      let boxes = Array.sub wk.Sqp_workload.Seeded.query_boxes 0 6 in
      (* the in-process oracle: the same plans, run directly *)
      let expected_ranges =
        Array.map
          (fun box ->
            Plan.run (Catalog.range_plan catalog ~lo:(Box.lo box) ~hi:(Box.hi box)))
          boxes
      in
      let expected_join = Plan.run (Catalog.overlap_plan catalog) in
      let n_clients = 4 in
      let failures = Atomic.make 0 in
      let sent = Atomic.make 0 in
      let client_thread _c =
        Client.with_connect ~port (fun client ->
            Array.iteri
              (fun i box ->
                Atomic.incr sent;
                let got =
                  reply_ok "range"
                    (Client.range_search client ~lo:(Box.lo box) ~hi:(Box.hi box))
                in
                if not (Relation.equal_contents expected_ranges.(i) got) then
                  Atomic.incr failures)
              boxes;
            Atomic.incr sent;
            let got = reply_ok "join" (Client.query client join_plan) in
            if not (Relation.equal_contents expected_join got) then
              Atomic.incr failures)
      in
      let threads = List.init n_clients (fun c -> Thread.create client_thread c) in
      List.iter Thread.join threads;
      checki "every remote result matched Plan.run" 0 (Atomic.get failures);
      (* one health probe on a fresh connection *)
      Atomic.incr sent;
      let h =
        Client.with_connect ~port (fun c -> reply_ok "health" (Client.health c))
      in
      checkb "healthy" true h.P.healthy;
      checki "health sees drained queues" 0 h.P.in_flight;
      (* metrics reconcile with what we sent *)
      let total = Atomic.get sent in
      checki "requests counter" total
        (M.counter_value (M.counter metrics "server.requests"));
      checki "all answered ok" total
        (M.counter_value (M.counter metrics "server.responses.ok"));
      checki "in-flight gauge back to 0" 0
        (M.gauge_value (M.gauge metrics "server.in_flight"));
      match List.assoc_opt "server.latency_us" (M.snapshot metrics) with
      | Some (M.Histogram_v { count; _ }) ->
          checki "latency histogram count = requests" total count
      | _ -> Alcotest.fail "latency histogram missing")

(* {1 Typed errors for bad plans} *)

let test_catalog_errors () =
  with_server (fun server _ ->
      Client.with_connect ~port:(Server.port server) (fun client ->
          expect_error "unknown relation" P.Unknown_relation
            (Client.query client (Wire.Scan "NOPE"));
          expect_error "unknown attribute" P.Bad_request
            (Client.query client (Wire.Project ([ "nope" ], Wire.Scan "R")));
          expect_error "inverted range" P.Bad_request
            (Client.range_search client ~lo:[| 50; 50 |] ~hi:[| 10; 10 |]);
          expect_error "wrong dimensionality" P.Bad_request
            (Client.range_search client ~lo:[| 1 |] ~hi:[| 2 |]);
          (* the session survived all of it *)
          let rows = reply_ok "after errors" (Client.query client join_plan) in
          checkb "still serving" true (Relation.cardinality rows >= 0)))

let test_explain_and_analyze () =
  with_server (fun server _ ->
      Client.with_connect ~port:(Server.port server) (fun client ->
          let text = reply_ok "explain" (Client.explain client join_plan) in
          let contains hay needle =
            let n = String.length needle and h = String.length hay in
            let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
            go 0
          in
          checkb "explain mentions the join" true (contains text "spatial join");
          let rendered, rows = reply_ok "analyze" (Client.analyze client join_plan) in
          checkb "analyze rendered" true (String.length rendered > 0);
          let expected = Plan.run (Catalog.overlap_plan catalog) in
          checkb "analyze rows match" true (Relation.equal_contents expected rows)))

(* {1 Live ingest over the wire}

   Mutation frames against the "L" live table, checked for fidelity
   against the in-process table the server serves from: acks carry the
   table's own sequence numbers, snapshot reads match a direct
   [Live.range_search], and applied counts reflect actual presence. *)

module Live = Sqp_btree.Live

let test_live_ingest () =
  with_server (fun server _ ->
      Client.with_connect ~port:(Server.port server) (fun c ->
          let lv = Option.get (Catalog.live catalog "L") in
          expect_error "unknown live table" P.Unknown_relation
            (Client.insert c ~table:"NOPE" [ ([| 1; 2 |], 1) ]);
          expect_error "point outside the space" P.Bad_request
            (Client.insert c ~table:"L" [ ([| 1_000_000; 0 |], 1) ]);
          let len0 = Live.length lv in
          let pts =
            [ ([| 3; 4 |], 100_000); ([| 3; 4 |], 100_001); ([| 250; 7 |], 100_002) ]
          in
          let applied, seq = reply_ok "insert" (Client.insert c ~table:"L" pts) in
          checki "insert applied all" 3 applied;
          checki "ack seq is the table's" (Live.seq lv) seq;
          checki "table grew" (len0 + 3) (Live.length lv);
          (* snapshot read over the wire = direct snapshot read *)
          let lo = [| 0; 0 |] and hi = [| 63; 63 |] in
          let expected, _ =
            Live.range_search (Live.snapshot lv) (Box.make ~lo ~hi)
          in
          let rows = reply_ok "live range" (Client.live_range c ~table:"L" ~lo ~hi) in
          checki "live range cardinality" (List.length expected)
            (Relation.cardinality rows);
          expect_error "inverted live range" P.Bad_request
            (Client.live_range c ~table:"L" ~lo:[| 9; 9 |] ~hi:[| 1; 1 |]);
          (* applied counts actual presence: one delete per entry at the
             point, plus one that finds nothing *)
          let count_at p =
            List.length
              (List.filter
                 (fun (q, _) -> q = p)
                 (Live.snapshot_entries (Live.snapshot lv)))
          in
          let n = count_at [| 250; 7 |] in
          checkb "the inserted point is present" true (n >= 1);
          let applied, _ =
            reply_ok "delete"
              (Client.delete c ~table:"L"
                 (List.init (n + 1) (fun _ -> [| 250; 7 |])))
          in
          checki "delete applied counts presence" n applied;
          checki "point fully removed" 0 (count_at [| 250; 7 |]);
          (* online rebuild through the wire, then reads still serve *)
          let applied, seq = reply_ok "create index" (Client.create_index c ~table:"L") in
          checki "index covers the table" (Live.length lv) applied;
          checki "rebuild seq is the table's" (Live.seq lv) seq;
          let expected, _ =
            Live.range_search (Live.snapshot lv) (Box.make ~lo ~hi)
          in
          let rows =
            reply_ok "live range after rebuild"
              (Client.live_range c ~table:"L" ~lo ~hi)
          in
          checki "post-rebuild live range" (List.length expected)
            (Relation.cardinality rows)))

(* {1 Deterministic overload: Overloaded, not collapse} *)

let test_overload_sheds () =
  let gate = Atomic.make true in
  let started = Atomic.make false in
  let config =
    {
      Server.default_config with
      max_in_flight = 1;
      max_queue = 0;
      on_execute =
        (fun () ->
          Atomic.set started true;
          while Atomic.get gate do
            Thread.delay 0.002
          done);
    }
  in
  with_server ~config (fun server metrics ->
      let port = Server.port server in
      let slow_result = ref None in
      let slow =
        Thread.create
          (fun () ->
            Client.with_connect ~port (fun c ->
                slow_result := Some (Client.query c join_plan)))
          ()
      in
      checkb "slow query entered execution" true
        (eventually (fun () -> Atomic.get started));
      (* the only slot is held and the queue has no room: shed *)
      Client.with_connect ~port (fun c ->
          expect_error "overloaded" P.Overloaded
            (Client.range_search c ~lo:[| 0; 0 |] ~hi:[| 10; 10 |]));
      (* health still answers during the overload (it bypasses admission) *)
      Client.with_connect ~port (fun c -> ignore (reply_ok "health" (Client.health c)));
      Atomic.set gate false;
      Thread.join slow;
      (match !slow_result with
      | Some (Ok _) -> ()
      | Some (Error e) ->
          Alcotest.failf "slow query failed: %s" (Client.error_to_string e)
      | None -> Alcotest.fail "slow query never answered");
      checkb "shed counted" true
        (M.counter_value (M.counter metrics "server.shed") >= 1);
      checki "nothing left in flight" 0
        (M.gauge_value (M.gauge metrics "server.in_flight")))

let test_deadline_timeout () =
  let config =
    { Server.default_config with on_execute = (fun () -> Thread.delay 0.08) }
  in
  with_server ~config (fun server metrics ->
      Client.with_connect ~port:(Server.port server) (fun c ->
          expect_error "timed out" P.Timed_out
            (Client.query ~deadline_ms:1 c join_plan);
          (* without a deadline the same query succeeds on the same session *)
          ignore (reply_ok "no deadline" (Client.query c join_plan)));
      checkb "timeout counted" true
        (M.counter_value (M.counter metrics "server.timeouts") >= 1))

(* {1 Malformed frames at the socket} *)

let raw_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let test_malformed_frames_on_the_wire () =
  with_server (fun server metrics ->
      let port = Server.port server in
      let fd = raw_connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* well-framed garbage: typed Bad_request, session survives *)
          P.write_frame fd "\x01\xde\xad\xbe\xef";
          (match P.read_frame fd with
          | Ok payload -> (
              match P.decode_response payload with
              | Ok (P.Error { code = P.Bad_request; _ }) -> ()
              | Ok _ -> Alcotest.fail "garbage did not draw Bad_request"
              | Error m -> Alcotest.failf "undecodable response: %s" m)
          | Error e -> Alcotest.failf "no response to garbage: %s" (P.read_error_to_string e));
          (* a frame claiming a future protocol version: typed response too *)
          P.write_frame fd "\x09\x05\x00\x00\x00\x00";
          (match P.read_frame fd with
          | Ok payload -> (
              match P.decode_response payload with
              | Ok (P.Error { code = P.Unsupported_version; _ }) -> ()
              | _ -> Alcotest.fail "future version not answered typedly")
          | Error e -> Alcotest.failf "no response to version probe: %s" (P.read_error_to_string e));
          (* same connection still executes real queries *)
          P.write_frame fd
            (P.encode_request
               { P.deadline_ms = None; idem = None; request = P.Health });
          (match P.read_frame fd with
          | Ok payload -> (
              match P.decode_response payload with
              | Ok (P.Health_report _) -> ()
              | _ -> Alcotest.fail "health after garbage failed")
          | Error e -> Alcotest.failf "no health response: %s" (P.read_error_to_string e));
          (* an unusable length prefix ends the session — optionally after
             one parting typed error frame *)
          ignore (Unix.write fd (Bytes.of_string "\xff\xff\xff\xff") 0 4);
          (match P.read_frame fd with
          | Error (P.Eof | P.Truncated) -> ()
          | Error (P.Oversized _ | P.Stalled _) ->
              Alcotest.fail "unexpected read error after oversized prefix"
          | Ok payload -> (
              (* the parting shot must be a typed error, then EOF *)
              (match P.decode_response payload with
              | Ok (P.Error _) -> ()
              | _ -> Alcotest.fail "non-error frame after oversized prefix");
              match P.read_frame fd with
              | Error (P.Eof | P.Truncated) -> ()
              | Error _ | Ok _ ->
                  Alcotest.fail "session survived an oversized prefix")));
      checkb "bad frames counted" true
        (M.counter_value (M.counter metrics "server.bad_frames") >= 1);
      (* the server as a whole is unaffected: fresh connections serve *)
      Client.with_connect ~port (fun c -> ignore (reply_ok "health" (Client.health c))))

(* {1 Graceful drain} *)

let test_stop_drains_in_flight () =
  let gate = Atomic.make true in
  let started = Atomic.make false in
  let config =
    {
      Server.default_config with
      on_execute =
        (fun () ->
          Atomic.set started true;
          while Atomic.get gate do
            Thread.delay 0.002
          done);
    }
  in
  let metrics = M.create () in
  let server = Server.start ~config ~metrics catalog in
  let port = Server.port server in
  let slow_result = ref None in
  let slow =
    Thread.create
      (fun () ->
        Client.with_connect ~port (fun c ->
            slow_result := Some (Client.query c join_plan)))
      ()
  in
  checkb "query in flight" true (eventually (fun () -> Atomic.get started));
  let stopped = Atomic.make false in
  let stopper =
    Thread.create
      (fun () ->
        Server.stop server;
        Atomic.set stopped true)
      ()
  in
  Thread.delay 0.05;
  checkb "stop waits for the in-flight query" false (Atomic.get stopped);
  Atomic.set gate false;
  Thread.join stopper;
  Thread.join slow;
  (match !slow_result with
  | Some (Ok rows) ->
      checkb "drained query got its rows" true
        (Relation.equal_contents rows (Plan.run (Catalog.overlap_plan catalog)))
  | Some (Error e) ->
      Alcotest.failf "drained query failed: %s" (Client.error_to_string e)
  | None -> Alcotest.fail "drained query never answered");
  checki "in-flight gauge at 0 after stop" 0
    (M.gauge_value (M.gauge metrics "server.in_flight"));
  (* the listener is gone *)
  match Client.connect ~port () with
  | exception Unix.Unix_error _ -> ()
  | c ->
      (* some stacks accept briefly; the session must at least be dead —
         a typed Transport error once the retries give out *)
      (match Client.health c with
      | Ok _ -> Alcotest.fail "server still serving after stop"
      | Error _ -> ());
      Client.close c

(* {1 Exactly-once at the protocol level}

   Raw-socket checks of the dedup window: a duplicated mutation frame —
   on the same connection or a fresh one, as after a connection kill —
   is answered with the original [Ack] byte for byte and applied once;
   a key far below the window draws [Bad_request] rather than a silent
   re-apply; an expired deadline is refused without touching the table,
   and the aborted key stays usable for the real retry. *)

let request_raw fd frame =
  P.write_frame fd frame;
  match P.read_frame fd with
  | Ok payload -> payload
  | Error e -> Alcotest.failf "no response: %s" (P.read_error_to_string e)

let test_idempotent_replay () =
  with_server (fun server metrics ->
      let port = Server.port server in
      let lv = Option.get (Catalog.live catalog "L") in
      let frame seq points =
        P.encode_request
          {
            P.deadline_ms = None;
            idem = Some { P.client_id = 987_654; request_seq = seq };
            request = P.Insert { table = "L"; points };
          }
      in
      let len0 = Live.length lv in
      let fd = raw_connect port in
      let first =
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            let first = request_raw fd (frame 1 [ ([| 11; 13 |], 910_001) ]) in
            (match P.decode_response first with
            | Ok (P.Ack { applied = 1; _ }) -> ()
            | _ -> Alcotest.fail "first send not acked");
            checki "applied once" (len0 + 1) (Live.length lv);
            (* the same frame again on the same connection *)
            let again = request_raw fd (frame 1 [ ([| 11; 13 |], 910_001) ]) in
            Alcotest.(check string) "replay is byte-for-byte" first again;
            checki "not applied again" (len0 + 1) (Live.length lv);
            first)
      in
      (* the same frame on a fresh connection — the shape of a retry
         after a connection kill *)
      let fd2 = raw_connect port in
      Fun.protect
        ~finally:(fun () -> Unix.close fd2)
        (fun () ->
          let again = request_raw fd2 (frame 1 [ ([| 11; 13 |], 910_001) ]) in
          Alcotest.(check string) "replay across connections" first again;
          checki "still applied once" (len0 + 1) (Live.length lv);
          checkb "dedup hits counted" true
            (M.counter_value (M.counter metrics "server.dedup.hits") >= 2);
          (* advance far past the dedup window, then an ancient key is
             refused rather than silently re-applied *)
          (match P.decode_response (request_raw fd2 (frame 500 [])) with
          | Ok (P.Ack { applied = 0; _ }) -> ()
          | _ -> Alcotest.fail "window-advancing send not acked");
          match
            P.decode_response (request_raw fd2 (frame 2 [ ([| 11; 13 |], 910_002) ]))
          with
          | Ok (P.Error { code = P.Bad_request; _ }) -> ()
          | _ -> Alcotest.fail "ancient key not refused"))

let test_expired_deadline_no_touch () =
  let config =
    { Server.default_config with on_execute = (fun () -> Thread.delay 0.05) }
  in
  with_server ~config (fun server _ ->
      let port = Server.port server in
      let lv = Option.get (Catalog.live catalog "L") in
      let len0 = Live.length lv in
      let frame deadline_ms =
        P.encode_request
          {
            P.deadline_ms;
            idem = Some { P.client_id = 13_579; request_seq = 1 };
            request = P.Insert { table = "L"; points = [ ([| 21; 22 |], 910_100) ] };
          }
      in
      let fd = raw_connect port in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          (* the 1 ms budget is long gone once on_execute has slept *)
          (match P.decode_response (request_raw fd (frame (Some 1))) with
          | Ok (P.Error { code = P.Timed_out; _ }) -> ()
          | _ -> Alcotest.fail "expired deadline not refused");
          checki "table untouched" len0 (Live.length lv);
          (* the aborted key is fresh again: the retry without a
             deadline applies for real, exactly once *)
          match P.decode_response (request_raw fd (frame None)) with
          | Ok (P.Ack { applied = 1; _ }) ->
              checki "retry applied exactly once" (len0 + 1) (Live.length lv)
          | _ -> Alcotest.fail "retry after expiry not acked"))

(* {1 Session hygiene: aborts are counted, idle sessions are reaped} *)

let test_session_hygiene () =
  let config =
    {
      Server.default_config with
      idle_timeout_s = Some 0.25;
      frame_timeout_s = Some 1.0;
    }
  in
  with_server ~config (fun server metrics ->
      let port = Server.port server in
      let active () = M.gauge_value (M.gauge metrics "server.sessions.active") in
      (* a mid-frame disconnect is an aborted session, not a leaked thread *)
      let fd = raw_connect port in
      checkb "session registered" true (eventually (fun () -> active () = 1));
      ignore (Unix.write fd (Bytes.of_string "\x00\x00") 0 2);
      Unix.close fd;
      checkb "abort counted" true
        (eventually (fun () ->
             M.counter_value (M.counter metrics "server.sessions.aborted") >= 1));
      checkb "gauge back to 0 after abort" true
        (eventually (fun () -> active () = 0));
      (* a silent connection is reaped by the idle timeout: the server
         closes its end (we read EOF) and counts the reap *)
      let fd2 = raw_connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd2 with Unix.Unix_error _ -> ())
        (fun () ->
          checkb "idle session reaped" true
            (eventually (fun () ->
                 M.counter_value (M.counter metrics "server.sessions.idle_closed")
                 >= 1));
          checkb "gauge back to 0 after reap" true
            (eventually (fun () -> active () = 0));
          match Unix.read fd2 (Bytes.create 16) 0 16 with
          | 0 -> ()
          | _ -> Alcotest.fail "idle-reaped connection still open"
          | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ());
      (* fresh connections serve normally afterwards *)
      Client.with_connect ~port (fun c -> ignore (reply_ok "health" (Client.health c))))

(* {1 Statistics flow: ANALYZE over the wire, cost-based serving}

   Runs LAST: [Client.refresh_stats] mutates the shared module-level
   catalog's statistics, and serving paths behave differently once
   statistics exist (direct range kernels, forced join
   implementations, cached packed indexes).  Every earlier test's
   oracle assumes the statistics-free behavior. *)

let test_statistics_flow () =
  with_server (fun server _ ->
      Client.with_connect ~port:(Server.port server) (fun client ->
          let contains hay needle =
            let n = String.length needle and h = String.length hay in
            let rec go i =
              i + n <= h && (String.sub hay i n = needle || go (i + 1))
            in
            go 0
          in
          (* statistics-free baselines *)
          let box = wk.Sqp_workload.Seeded.query in
          let lo = Box.lo box and hi = Box.hi box in
          let range_before =
            reply_ok "range before" (Client.range_search client ~lo ~hi)
          in
          let join_before = reply_ok "join before" (Client.query client join_plan) in
          let explain_before =
            reply_ok "explain before" (Client.explain client join_plan)
          in
          checkb "no cost column before analyze" false
            (contains explain_before "[cost=");
          (* the analyze frame *)
          let summary = reply_ok "refresh stats" (Client.refresh_stats client) in
          checkb "summary names the point relation" true (contains summary "P");
          checkb "summary names the join sides" true
            (contains summary "R" && contains summary "S");
          (* cost-based serving returns the same rows *)
          let range_after =
            reply_ok "range after" (Client.range_search client ~lo ~hi)
          in
          checkb "range rows unchanged by statistics" true
            (Relation.equal_contents range_before range_after);
          let join_after = reply_ok "join after" (Client.query client join_plan) in
          checkb "join rows unchanged by statistics" true
            (Relation.equal_contents join_before join_after);
          (* ...and EXPLAIN / EXPLAIN ANALYZE now carry predictions *)
          let explain_after =
            reply_ok "explain after" (Client.explain client join_plan)
          in
          checkb "cost column after analyze" true (contains explain_after "[cost=");
          let rendered, rows =
            reply_ok "analyze after" (Client.analyze client join_plan)
          in
          checkb "analyze rows still match" true
            (Relation.equal_contents join_before rows);
          checkb "predicted-vs-actual table appended" true
            (contains rendered "predicted");
          (* the packed-index cache serves live ranges until the table moves *)
          let llo = [| 0; 0 |] and lhi = [| 400; 400 |] in
          let live_before =
            reply_ok "live range" (Client.live_range client ~table:"L" ~lo:llo ~hi:lhi)
          in
          let _applied, _seq =
            reply_ok "create index" (Client.create_index client ~table:"L")
          in
          let live_cached =
            reply_ok "live range (cached packed index)"
              (Client.live_range client ~table:"L" ~lo:llo ~hi:lhi)
          in
          checkb "packed index returns the same rows" true
            (Relation.equal_contents live_before live_cached);
          (* an insert invalidates the cache: the new point must appear *)
          let applied, _seq =
            reply_ok "insert after index"
              (Client.insert client ~table:"L" [ ([| 3; 3 |], 999_001) ])
          in
          checki "insert applied" 1 applied;
          let live_fresh =
            reply_ok "live range after insert"
              (Client.live_range client ~table:"L" ~lo:llo ~hi:lhi)
          in
          checki "stale cache bypassed: new row visible"
            (Relation.cardinality live_cached + 1)
            (Relation.cardinality live_fresh)))

let () =
  Alcotest.run "server"
    [
      ( "fidelity",
        [
          Alcotest.test_case "concurrent differential" `Quick
            test_concurrent_differential;
          Alcotest.test_case "explain and analyze" `Quick test_explain_and_analyze;
          Alcotest.test_case "live ingest" `Quick test_live_ingest;
        ] );
      ( "errors",
        [
          Alcotest.test_case "catalog errors" `Quick test_catalog_errors;
          Alcotest.test_case "malformed frames" `Quick
            test_malformed_frames_on_the_wire;
        ] );
      ( "backpressure",
        [
          Alcotest.test_case "overload sheds" `Quick test_overload_sheds;
          Alcotest.test_case "deadline timeout" `Quick test_deadline_timeout;
        ] );
      ( "lifecycle",
        [ Alcotest.test_case "stop drains" `Quick test_stop_drains_in_flight ] );
      ( "exactly-once",
        [
          Alcotest.test_case "idempotent replay" `Quick test_idempotent_replay;
          Alcotest.test_case "expired deadline" `Quick
            test_expired_deadline_no_touch;
        ] );
      ( "sessions",
        [ Alcotest.test_case "session hygiene" `Quick test_session_hygiene ] );
      (* keep last: mutates the shared catalog's statistics *)
      ( "statistics",
        [ Alcotest.test_case "analyze flow" `Quick test_statistics_flow ] );
    ]
