module S = Sqp_storage

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* {1 Stats} *)

let test_stats () =
  let s = S.Stats.create () in
  s.S.Stats.physical_reads <- 3;
  s.S.Stats.physical_writes <- 2;
  check_int "total" 5 (S.Stats.total_accesses s);
  s.S.Stats.pool_hits <- 3;
  s.S.Stats.pool_misses <- 1;
  Alcotest.(check (float 0.001)) "hit ratio" 0.75 (S.Stats.hit_ratio s);
  let snap = S.Stats.snapshot s in
  s.S.Stats.physical_reads <- 10;
  check_int "snapshot independent" 3 snap.S.Stats.physical_reads;
  let d = S.Stats.diff ~after:s ~before:snap in
  check_int "diff" 7 d.S.Stats.physical_reads;
  S.Stats.reset s;
  check_int "reset" 0 s.S.Stats.physical_reads

let test_stats_zero_ratio () =
  Alcotest.(check (float 0.001)) "no traffic" 0.0 (S.Stats.hit_ratio (S.Stats.create ()))

let fill a b c d e f =
  let s = S.Stats.create () in
  s.S.Stats.physical_reads <- a;
  s.S.Stats.physical_writes <- b;
  s.S.Stats.allocations <- c;
  s.S.Stats.frees <- d;
  s.S.Stats.pool_hits <- e;
  s.S.Stats.pool_misses <- f;
  s

let test_stats_diff_aliasing () =
  (* diff reads both records at call time: aliased arguments are a
     degenerate interval and must yield all zeros, not garbage. *)
  let s = fill 5 4 3 2 1 9 in
  let d = S.Stats.diff ~after:s ~before:s in
  check "aliased diff is zero" true (d = S.Stats.create ());
  (* The supported interval idiom: snapshot first, then mutate. *)
  let before = S.Stats.snapshot s in
  s.S.Stats.physical_reads <- 15;
  s.S.Stats.pool_misses <- 10;
  let d = S.Stats.diff ~after:s ~before in
  check_int "interval reads" 10 d.S.Stats.physical_reads;
  check_int "interval misses" 1 d.S.Stats.pool_misses;
  check_int "untouched fields zero" 0 d.S.Stats.physical_writes

let test_stats_add_sum () =
  let a = fill 1 2 3 4 5 6 and b = fill 10 20 30 40 50 60 in
  let c = S.Stats.add a b in
  check "add is field-wise" true (c = fill 11 22 33 44 55 66);
  check "add leaves inputs alone" true (a = fill 1 2 3 4 5 6);
  check "sum of none is zero" true (S.Stats.sum [] = S.Stats.create ());
  check "sum folds add" true (S.Stats.sum [ a; b; c ] = fill 22 44 66 88 110 132)

let test_stats_accumulate_aliasing () =
  let a = fill 1 2 3 4 5 6 and b = fill 10 20 30 40 50 60 in
  S.Stats.accumulate ~into:a b;
  check "accumulate adds in place" true (a = fill 11 22 33 44 55 66);
  check "source unchanged" true (b = fill 10 20 30 40 50 60);
  (* The aliased call must double, not loop or zero. *)
  S.Stats.accumulate ~into:b b;
  check "self-accumulate doubles" true (b = fill 20 40 60 80 100 120)

(* {1 Pager} *)

let test_pager_basic () =
  let p = S.Pager.create () in
  let id1 = S.Pager.alloc p "a" and id2 = S.Pager.alloc p "b" in
  check "distinct ids" true (id1 <> id2);
  Alcotest.(check string) "read" "a" (S.Pager.read p id1);
  S.Pager.write p id1 "c";
  Alcotest.(check string) "after write" "c" (S.Pager.read p id1);
  check_int "page count" 2 (S.Pager.page_count p);
  S.Pager.free p id1;
  check_int "after free" 1 (S.Pager.page_count p);
  check "mem" true (S.Pager.mem p id2);
  check "freed" false (S.Pager.mem p id1)

let test_pager_counts () =
  let p = S.Pager.create () in
  let id = S.Pager.alloc p 0 in
  ignore (S.Pager.read p id);
  ignore (S.Pager.read p id);
  S.Pager.write p id 1;
  let s = S.Pager.stats p in
  check_int "reads" 2 s.S.Stats.physical_reads;
  check_int "writes (alloc + write)" 2 s.S.Stats.physical_writes;
  check_int "allocs" 1 s.S.Stats.allocations

let test_pager_errors () =
  let p = S.Pager.create () in
  List.iter
    (fun f ->
      match f () with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> ignore (S.Pager.read p 42));
      (fun () -> S.Pager.write p 42 0);
      (fun () -> S.Pager.free p 42);
    ]

(* {1 Buffer pool} *)

let test_pool_hits () =
  let p = S.Pager.create () in
  let id = S.Pager.alloc p "x" in
  let pool = S.Buffer_pool.create ~capacity:2 p in
  ignore (S.Buffer_pool.get pool id);
  ignore (S.Buffer_pool.get pool id);
  ignore (S.Buffer_pool.get pool id);
  let s = S.Pager.stats p in
  check_int "one miss" 1 s.S.Stats.pool_misses;
  check_int "two hits" 2 s.S.Stats.pool_hits;
  check_int "one physical read" 1 s.S.Stats.physical_reads

let test_pool_eviction_lru () =
  let p = S.Pager.create () in
  let ids = Array.init 3 (fun i -> S.Pager.alloc p i) in
  let pool = S.Buffer_pool.create ~policy:S.Buffer_pool.Lru ~capacity:2 p in
  ignore (S.Buffer_pool.get pool ids.(0));
  ignore (S.Buffer_pool.get pool ids.(1));
  ignore (S.Buffer_pool.get pool ids.(0)); (* 0 is now most recent *)
  ignore (S.Buffer_pool.get pool ids.(2)); (* evicts 1 *)
  let before = (S.Pager.stats p).S.Stats.physical_reads in
  ignore (S.Buffer_pool.get pool ids.(0)); (* hit *)
  check_int "0 still resident" before (S.Pager.stats p).S.Stats.physical_reads;
  ignore (S.Buffer_pool.get pool ids.(1)); (* miss *)
  check_int "1 was evicted" (before + 1) (S.Pager.stats p).S.Stats.physical_reads

let test_pool_eviction_fifo () =
  let p = S.Pager.create () in
  let ids = Array.init 3 (fun i -> S.Pager.alloc p i) in
  let pool = S.Buffer_pool.create ~policy:S.Buffer_pool.Fifo ~capacity:2 p in
  ignore (S.Buffer_pool.get pool ids.(0));
  ignore (S.Buffer_pool.get pool ids.(1));
  ignore (S.Buffer_pool.get pool ids.(0)); (* recency must not matter *)
  ignore (S.Buffer_pool.get pool ids.(2)); (* evicts 0 (first in) *)
  let before = (S.Pager.stats p).S.Stats.physical_reads in
  ignore (S.Buffer_pool.get pool ids.(1));
  check_int "1 resident" before (S.Pager.stats p).S.Stats.physical_reads;
  ignore (S.Buffer_pool.get pool ids.(0));
  check_int "0 evicted" (before + 1) (S.Pager.stats p).S.Stats.physical_reads

let test_pool_clock_runs () =
  let p = S.Pager.create () in
  let ids = Array.init 8 (fun i -> S.Pager.alloc p i) in
  let pool = S.Buffer_pool.create ~policy:S.Buffer_pool.Clock ~capacity:3 p in
  (* Just exercise the sweep logic under churn. *)
  for round = 0 to 5 do
    Array.iteri
      (fun i id -> if (i + round) mod 2 = 0 then ignore (S.Buffer_pool.get pool id))
      ids
  done;
  check "resident bounded" true (S.Buffer_pool.resident pool <= 3)

let test_pool_clock_second_chance () =
  let p = S.Pager.create () in
  let ids = Array.init 4 (fun i -> S.Pager.alloc p i) in
  let pool = S.Buffer_pool.create ~policy:S.Buffer_pool.Clock ~capacity:2 p in
  ignore (S.Buffer_pool.get pool ids.(0));
  ignore (S.Buffer_pool.get pool ids.(1));
  (* Both bits set: this sweep clears them and evicts 0; afterwards frame 1
     is resident with a CLEAR bit and freshly-installed 2 with a SET bit. *)
  ignore (S.Buffer_pool.get pool ids.(2));
  (* Next miss must evict 1 (clear bit) and give 2 its second chance, even
     though 2 was installed later. *)
  ignore (S.Buffer_pool.get pool ids.(3));
  let before = (S.Pager.stats p).S.Stats.physical_reads in
  ignore (S.Buffer_pool.get pool ids.(2));
  check_int "2 survived via its reference bit" before
    (S.Pager.stats p).S.Stats.physical_reads

let test_pool_writeback () =
  let p = S.Pager.create () in
  let ids = Array.init 3 (fun i -> S.Pager.alloc p (string_of_int i)) in
  let pool = S.Buffer_pool.create ~capacity:2 p in
  S.Buffer_pool.update pool ids.(0) "dirty0";
  ignore (S.Buffer_pool.get pool ids.(1));
  ignore (S.Buffer_pool.get pool ids.(2)); (* evicts 0, must write back *)
  S.Buffer_pool.drop pool;
  Alcotest.(check string) "written back" "dirty0" (S.Pager.read p ids.(0))

let test_pool_flush () =
  let p = S.Pager.create () in
  let id = S.Pager.alloc p "x" in
  let pool = S.Buffer_pool.create ~capacity:2 p in
  S.Buffer_pool.update pool id "y";
  S.Buffer_pool.flush pool;
  S.Buffer_pool.drop pool;
  Alcotest.(check string) "flushed" "y" (S.Pager.read p id)

let test_pool_discard () =
  let p = S.Pager.create () in
  let id1 = S.Pager.alloc p "a" and id2 = S.Pager.alloc p "b" in
  let pool = S.Buffer_pool.create ~capacity:2 p in
  S.Buffer_pool.update pool id1 "dirty";
  S.Buffer_pool.discard pool id1;
  S.Pager.free p id1;
  (* Filling the pool must not try to write the discarded frame back. *)
  ignore (S.Buffer_pool.get pool id2);
  S.Buffer_pool.flush pool;
  check "survives" true (S.Pager.mem p id2)

let test_pool_counters_survive_drop_discard () =
  (* The counters live in the pager's stats, not in pool frames: dropping
     or discarding frames must not lose or rewind any accounting. *)
  let p = S.Pager.create () in
  let id1 = S.Pager.alloc p "a" and id2 = S.Pager.alloc p "b" in
  let pool = S.Buffer_pool.create ~capacity:2 p in
  ignore (S.Buffer_pool.get pool id1);
  ignore (S.Buffer_pool.get pool id1);
  ignore (S.Buffer_pool.get pool id2);
  let before = S.Stats.snapshot (S.Pager.stats p) in
  check_int "misses before" 2 before.S.Stats.pool_misses;
  check_int "hits before" 1 before.S.Stats.pool_hits;
  S.Buffer_pool.discard pool id2;
  S.Buffer_pool.drop pool;
  check "drop/discard change no counters" true
    (S.Stats.diff ~after:(S.Pager.stats p) ~before = S.Stats.create ());
  (* After a drop every frame is cold again: the next get is a miss and
     keeps counting on top of the old totals. *)
  ignore (S.Buffer_pool.get pool id1);
  let after = S.Pager.stats p in
  check_int "miss counted after drop" 3 after.S.Stats.pool_misses;
  check_int "hits preserved across drop" 1 after.S.Stats.pool_hits;
  check_int "physical reads preserved and counted" 3 after.S.Stats.physical_reads

let test_pool_capacity_invalid () =
  let p = S.Pager.create () in
  match S.Buffer_pool.create ~capacity:0 p with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* Property: pool semantics = pager semantics under random ops. *)

let prop_pool_transparent =
  QCheck2.Test.make ~name:"pool reads = direct reads under random workload"
    ~count:100
    QCheck2.Gen.(
      pair (int_range 1 4)
        (list_size (int_bound 60) (pair (int_bound 7) (int_bound 99))))
    (fun (capacity, ops) ->
      let p = S.Pager.create () in
      let ids = Array.init 8 (fun i -> S.Pager.alloc p i) in
      let mirror = Array.init 8 (fun i -> i) in
      let pool = S.Buffer_pool.create ~capacity p in
      List.for_all
        (fun (slot, v) ->
          if v mod 2 = 0 then begin
            S.Buffer_pool.update pool ids.(slot) v;
            mirror.(slot) <- v;
            true
          end
          else S.Buffer_pool.get pool ids.(slot) = mirror.(slot))
        ops)

let () =
  Alcotest.run "storage"
    [
      ( "stats",
        [
          Alcotest.test_case "counters" `Quick test_stats;
          Alcotest.test_case "zero ratio" `Quick test_stats_zero_ratio;
          Alcotest.test_case "diff under aliasing" `Quick test_stats_diff_aliasing;
          Alcotest.test_case "add and sum" `Quick test_stats_add_sum;
          Alcotest.test_case "accumulate under aliasing" `Quick
            test_stats_accumulate_aliasing;
        ] );
      ( "pager",
        [
          Alcotest.test_case "basics" `Quick test_pager_basic;
          Alcotest.test_case "counting" `Quick test_pager_counts;
          Alcotest.test_case "errors" `Quick test_pager_errors;
        ] );
      ( "buffer pool",
        [
          Alcotest.test_case "hits and misses" `Quick test_pool_hits;
          Alcotest.test_case "LRU eviction" `Quick test_pool_eviction_lru;
          Alcotest.test_case "FIFO eviction" `Quick test_pool_eviction_fifo;
          Alcotest.test_case "CLOCK sweep" `Quick test_pool_clock_runs;
          Alcotest.test_case "CLOCK second chance" `Quick test_pool_clock_second_chance;
          Alcotest.test_case "write-back on eviction" `Quick test_pool_writeback;
          Alcotest.test_case "flush" `Quick test_pool_flush;
          Alcotest.test_case "discard" `Quick test_pool_discard;
          Alcotest.test_case "counters survive drop/discard" `Quick
            test_pool_counters_survive_drop_discard;
          Alcotest.test_case "bad capacity" `Quick test_pool_capacity_invalid;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_pool_transparent ] );
    ]
