module Z = Sqp_zorder
module Zindex = Sqp_btree.Zindex
module W = Sqp_workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let space6 = Z.Space.make ~dims:2 ~depth:6

let strategies =
  [
    ("merge", Zindex.Merge);
    ("lazy", Zindex.Lazy_merge);
    ("bigmin", Zindex.Bigmin);
    ("scan", Zindex.Scan);
  ]

let build ?(n = 300) ?(seed = 17) ?(leaf_capacity = 20) space =
  let rng = W.Rng.create ~seed in
  let points = W.Datagen.uniform rng ~side:(Z.Space.side space) ~n ~dims:2 in
  Zindex.of_points ~leaf_capacity space (Array.mapi (fun i p -> (p, i)) points)

let brute index box =
  Zindex.Tree.to_list (Zindex.tree index)
  |> List.filter_map (fun (_, (p, v)) ->
         if Sqp_geom.Box.contains_point box p then Some (p, v) else None)
  |> List.sort (fun ((a : int array), _) (b, _) ->
         compare
           (Z.Interleave.rank space6 a, a)
           (Z.Interleave.rank space6 b, b))

let test_build () =
  let index = build space6 in
  check_int "length" 300 (Zindex.length index);
  check_int "pages at fill 1.0" 15 (Zindex.data_page_count index);
  match Zindex.Tree.check_invariants (Zindex.tree index) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariants: %s" m

let test_find_insert_delete () =
  let index = Zindex.create space6 in
  Zindex.insert index [| 3; 5 |] "a";
  Zindex.insert index [| 10; 20 |] "b";
  check "find" true (Zindex.find index [| 3; 5 |] = Some "a");
  check "missing" true (Zindex.find index [| 4; 5 |] = None);
  check "delete" true (Zindex.delete index [| 3; 5 |]);
  check "gone" true (Zindex.find index [| 3; 5 |] = None);
  check "delete missing" false (Zindex.delete index [| 3; 5 |])

let test_all_strategies_agree () =
  let index = build space6 in
  let rng = W.Rng.create ~seed:3 in
  for _ = 1 to 60 do
    let x1 = W.Rng.int rng 64 and x2 = W.Rng.int rng 64 in
    let y1 = W.Rng.int rng 64 and y2 = W.Rng.int rng 64 in
    let box =
      Sqp_geom.Box.make ~lo:[| min x1 x2; min y1 y2 |] ~hi:[| max x1 x2; max y1 y2 |]
    in
    let expected = brute index box in
    List.iter
      (fun (name, strategy) ->
        let got, _ = Zindex.range_search ~strategy index box in
        if got <> expected then
          Alcotest.failf "strategy %s disagrees (%d vs %d results)" name
            (List.length got) (List.length expected))
      strategies
  done

let test_results_in_z_order () =
  let index = build space6 in
  let box = Sqp_geom.Box.of_ranges [ (5, 50); (10, 60) ] in
  let results, _ = Zindex.range_search index box in
  let ranks = List.map (fun (p, _) -> Z.Interleave.rank space6 p) results in
  check "sorted" true (List.sort compare ranks = ranks)

let test_empty_box_region () =
  let index = build space6 in
  (* A region with no points: corner query on an area kept empty. *)
  let results, stats =
    Zindex.range_search index (Sqp_geom.Box.of_ranges [ (0, 0); (0, 0) ])
  in
  check "at most 1 result" true (List.length results <= 1);
  check "few pages" true (stats.Zindex.data_pages <= 2)

let test_full_space_query () =
  let index = build space6 in
  let box = Sqp_geom.Box.of_ranges [ (0, 63); (0, 63) ] in
  let results, stats = Zindex.range_search index box in
  check_int "all points" 300 (List.length results);
  check_int "all pages" (Zindex.data_page_count index) stats.Zindex.data_pages;
  Alcotest.(check (float 0.001)) "efficiency 1.0" 1.0 (Zindex.efficiency index stats)

let test_out_of_grid_query () =
  let index = build space6 in
  let box = Sqp_geom.Box.of_ranges [ (100, 200); (100, 200) ] in
  let results, stats = Zindex.range_search index box in
  check_int "no results" 0 (List.length results);
  check_int "no pages" 0 stats.Zindex.data_pages;
  (* Partially outside: clipped, not failed. *)
  let box2 = Sqp_geom.Box.of_ranges [ (-5, 10); (50, 200) ] in
  let r2, _ = Zindex.range_search index box2 in
  let expected = brute index (Sqp_geom.Box.of_ranges [ (0, 10); (50, 63) ]) in
  check "clipped results" true (r2 = expected)

let test_partial_match () =
  let index = build space6 in
  (* Pin y: equivalent to the box y = c. *)
  let results, _ = Zindex.partial_match index [| None; Some 20 |] in
  let expected = brute index (Sqp_geom.Box.of_ranges [ (0, 63); (20, 20) ]) in
  check "pinned y" true (results = expected);
  (* No restriction at all = full scan. *)
  let all, _ = Zindex.partial_match index [| None; None |] in
  check_int "free query returns all" 300 (List.length all)

let test_stats_sane () =
  let index = build space6 in
  let box = Sqp_geom.Box.of_ranges [ (10, 30); (10, 30) ] in
  let _, stats = Zindex.range_search index box in
  check "pages <= leaf accesses" true (stats.Zindex.data_pages <= stats.Zindex.leaf_accesses);
  check "elements > 0" true (stats.Zindex.elements > 0);
  check "scanned >= results" true (stats.Zindex.entries_scanned >= stats.Zindex.results);
  (* Stats are per query: a second identical query reports the same. *)
  let _, stats2 = Zindex.range_search index box in
  check_int "data pages repeatable" stats.Zindex.data_pages stats2.Zindex.data_pages

let test_skip_beats_scan () =
  (* A small query must touch far fewer pages than a scan. *)
  let index = build ~n:1000 (Z.Space.make ~dims:2 ~depth:8) in
  let box = Sqp_geom.Box.of_ranges [ (10, 25); (10, 25) ] in
  let _, merge_stats = Zindex.range_search ~strategy:Zindex.Merge index box in
  let _, scan_stats = Zindex.range_search ~strategy:Zindex.Scan index box in
  check "merge reads fewer pages" true
    (merge_stats.Zindex.data_pages * 3 < scan_stats.Zindex.data_pages)

let test_leaf_points_cover_all () =
  let index = build space6 in
  let pages = Zindex.leaf_points index in
  let total = List.fold_left (fun acc (_, pts) -> acc + List.length pts) 0 pages in
  check_int "all points on pages" 300 total;
  check_int "page count matches" (Zindex.data_page_count index) (List.length pages)

let test_clustered_and_diagonal () =
  (* Strategies agree on skewed data too. *)
  let space = Z.Space.make ~dims:2 ~depth:7 in
  List.iter
    (fun ds ->
      let rng = W.Rng.create ~seed:5 in
      (* The diagonal band at side 128 only holds ~380 distinct cells. *)
      let points = W.Datagen.generate rng ds ~side:128 ~n:250 in
      let index = Zindex.of_points space (Array.mapi (fun i p -> (p, i)) points) in
      let box = Sqp_geom.Box.of_ranges [ (32, 96); (32, 96) ] in
      let reference, _ = Zindex.range_search ~strategy:Zindex.Scan index box in
      List.iter
        (fun (name, strategy) ->
          let got, _ = Zindex.range_search ~strategy index box in
          if got <> reference then Alcotest.failf "%s disagrees on skewed data" name)
        strategies)
    W.Datagen.[ Clustered; Diagonal ]

let test_3d_strategies_agree () =
  let space3 = Z.Space.make ~dims:3 ~depth:5 in
  let rng = W.Rng.create ~seed:9 in
  let points = W.Datagen.uniform rng ~side:32 ~n:400 ~dims:3 in
  let index = Zindex.of_points space3 (Array.mapi (fun i p -> (p, i)) points) in
  for _ = 1 to 25 do
    let c () =
      let a = W.Rng.int rng 32 and b = W.Rng.int rng 32 in
      (min a b, max a b)
    in
    let (x1, x2) = c () and (y1, y2) = c () and (z1, z2) = c () in
    let box = Sqp_geom.Box.make ~lo:[| x1; y1; z1 |] ~hi:[| x2; y2; z2 |] in
    let reference, _ = Zindex.range_search ~strategy:Zindex.Scan index box in
    List.iter
      (fun (name, strategy) ->
        let got, _ = Zindex.range_search ~strategy index box in
        if got <> reference then Alcotest.failf "%s disagrees in 3d" name)
      strategies
  done

let test_4d_range_search () =
  (* The reduction to 1d makes the algorithms dimension-blind; exercise
     4d end to end (shuffle, decompose, BIGMIN all generalize). *)
  let space4 = Z.Space.make ~dims:4 ~depth:3 in
  let rng = W.Rng.create ~seed:23 in
  let points =
    Array.init 200 (fun i -> (Array.init 4 (fun _ -> W.Rng.int rng 8), i))
  in
  let index = Zindex.of_points ~leaf_capacity:8 space4 points in
  for _ = 1 to 15 do
    let lo = Array.init 4 (fun _ -> W.Rng.int rng 8) in
    let hi = Array.mapi (fun i l -> min 7 (l + W.Rng.int rng (8 - lo.(i)))) lo in
    let box = Sqp_geom.Box.make ~lo ~hi in
    let expected =
      Array.to_list points
      |> List.filter (fun (p, _) -> Sqp_geom.Box.contains_point box p)
      |> List.length
    in
    List.iter
      (fun (name, strategy) ->
        let got, _ = Zindex.range_search ~strategy index box in
        if List.length got <> expected then Alcotest.failf "%s wrong in 4d" name)
      strategies
  done

let test_within_distance () =
  let index = build space6 in
  let all = Zindex.Tree.to_list (Zindex.tree index) |> List.map snd in
  let rng = W.Rng.create ~seed:101 in
  for _ = 1 to 30 do
    let c = [| W.Rng.int rng 64; W.Rng.int rng 64 |] in
    let radius = float_of_int (1 + W.Rng.int rng 20) in
    let got, stats = Zindex.within_distance index c ~radius in
    let expected =
      List.filter
        (fun (p, _) -> float_of_int (Sqp_geom.Point.euclidean_sq p c) <= radius *. radius)
        all
    in
    check_int "within_distance count" (List.length expected) (List.length got);
    check_int "stats results" (List.length got) stats.Zindex.results;
    check "subset" true (List.for_all (fun x -> List.mem x expected) got)
  done

let test_within_distance_zero_radius () =
  let index = Zindex.create space6 in
  Zindex.insert index [| 5; 5 |] 0;
  let got, _ = Zindex.within_distance index [| 5; 5 |] ~radius:0.0 in
  check_int "self at radius 0" 1 (List.length got);
  let none, _ = Zindex.within_distance index [| 6; 6 |] ~radius:0.5 in
  check_int "nothing nearby" 0 (List.length none)

let test_nearest () =
  let index = build space6 in
  let all = Zindex.Tree.to_list (Zindex.tree index) |> List.map snd in
  let rng = W.Rng.create ~seed:102 in
  for _ = 1 to 40 do
    let c = [| W.Rng.int rng 64; W.Rng.int rng 64 |] in
    match Zindex.nearest index c with
    | None -> Alcotest.fail "nearest on non-empty index"
    | Some ((p, _), _) ->
        let d = Sqp_geom.Point.euclidean_sq p c in
        List.iter
          (fun (q, _) ->
            if Sqp_geom.Point.euclidean_sq q c < d then
              Alcotest.failf "non-optimal nearest at (%d,%d)" c.(0) c.(1))
          all
  done;
  check "empty index" true (Zindex.nearest (Zindex.create space6) [| 0; 0 |] = None)

let test_nearest_exact_hit () =
  let index = build space6 in
  (* Querying at an indexed point returns that point. *)
  match Zindex.Tree.to_list (Zindex.tree index) with
  | (_, (p, v)) :: _ -> (
      match Zindex.nearest index p with
      | Some ((p', v'), _) ->
          check "same point" true (p = p' && v = v')
      | None -> Alcotest.fail "expected a neighbour")
  | [] -> Alcotest.fail "index empty"

let test_k_nearest () =
  let index = build space6 in
  let all = Zindex.Tree.to_list (Zindex.tree index) |> List.map snd in
  let dist2 p q =
    let dx = float_of_int (p.(0) - q.(0)) and dy = float_of_int (p.(1) - q.(1)) in
    (dx *. dx) +. (dy *. dy)
  in
  let rng = W.Rng.create ~seed:103 in
  for _ = 1 to 25 do
    let c = [| W.Rng.int rng 64; W.Rng.int rng 64 |] in
    let k = 1 + W.Rng.int rng 10 in
    let got, stats = Zindex.k_nearest index c ~k in
    check_int "k results" k (List.length got);
    check_int "stats results" k stats.Zindex.results;
    (* Distances must be the k smallest overall. *)
    let got_d = List.map (fun (p, _) -> dist2 p c) got in
    let best_d =
      List.sort compare (List.map (fun (p, _) -> dist2 p c) all)
      |> List.filteri (fun i _ -> i < k)
    in
    if List.sort compare got_d <> best_d then Alcotest.fail "k-nearest not optimal";
    (* Sorted closest first. *)
    check "sorted" true (List.sort compare got_d = got_d)
  done

let test_k_nearest_edges () =
  let index = build ~n:5 space6 in
  let got, _ = Zindex.k_nearest index [| 0; 0 |] ~k:100 in
  check_int "clamped to size" 5 (List.length got);
  let none, _ = Zindex.k_nearest index [| 0; 0 |] ~k:0 in
  check_int "k = 0" 0 (List.length none);
  let empty = Zindex.create space6 in
  let e, _ = Zindex.k_nearest empty [| 0; 0 |] ~k:3 in
  check_int "empty index" 0 (List.length e)

(* Property: random data, random boxes, all strategies = brute force. *)

let prop_strategies =
  QCheck2.Test.make ~name:"all strategies = brute force" ~count:40
    QCheck2.Gen.(
      tup3 (int_range 0 1000)
        (pair (int_bound 63) (int_bound 63))
        (pair (int_bound 63) (int_bound 63)))
    (fun (seed, (x1, y1), (x2, y2)) ->
      let index = build ~n:150 ~seed space6 in
      let box =
        Sqp_geom.Box.make ~lo:[| min x1 x2; min y1 y2 |] ~hi:[| max x1 x2; max y1 y2 |]
      in
      let expected = brute index box in
      List.for_all
        (fun (_, strategy) -> fst (Zindex.range_search ~strategy index box) = expected)
        strategies)

(* --- Compressed pages: differential against the fixed-width layout --- *)

(* The same byte budget, front-coded vs charged at the v2 fixed width:
   query answers and merge-driven counters must be bit-identical — only
   the page partitioning (and so the page-access counters) may differ,
   and the compressed layout must never touch more pages. *)
let compressed_pair ?(n = 5000) () =
  let wk = W.Seeded.standard ~n_points:n () in
  let pts = W.Seeded.tagged_points wk in
  let space = wk.W.Seeded.space in
  (* Payloads are row ids: charge them as a u32 so the density ratio
     measures the key layouts (mirrors [sqp bench-compress]). *)
  let comp = Zindex.of_points ~page_budget:512 ~value_bytes:4 space pts in
  let fixed =
    Zindex.of_points ~page_budget:512 ~value_bytes:4 ~compressed:false space pts
  in
  (wk, comp, fixed)

let test_compressed_differential () =
  let wk, comp, fixed = compressed_pair () in
  check "comp is compressed" true (Zindex.compressed comp);
  check "fixed is not" false (Zindex.compressed fixed);
  (match (Zindex.Tree.check_invariants (Zindex.tree comp),
          Zindex.Tree.check_invariants (Zindex.tree fixed)) with
  | Ok (), Ok () -> ()
  | Error m, _ | _, Error m -> Alcotest.failf "invariants: %s" m);
  (* Page boundaries are not nested between the layouts, so one query
     can occasionally straddle a compressed boundary that falls inside
     a single fixed page — the win is aggregate, and it must be strict. *)
  let pages_comp = ref 0 and pages_fixed = ref 0 in
  Array.iteri
    (fun qi box ->
      let rc, sc = Zindex.range_search comp box in
      let rf, sf = Zindex.range_search fixed box in
      if rc <> rf then Alcotest.failf "rows differ on box %d" qi;
      if sc.Zindex.elements <> sf.Zindex.elements then
        Alcotest.failf "elements differ on box %d" qi;
      if sc.Zindex.results <> sf.Zindex.results then
        Alcotest.failf "results differ on box %d" qi;
      pages_comp := !pages_comp + sc.Zindex.data_pages;
      pages_fixed := !pages_fixed + sf.Zindex.data_pages)
    wk.W.Seeded.query_boxes;
  check "strictly fewer pages over the batch" true (!pages_comp < !pages_fixed)

let test_compressed_density () =
  let _, comp, fixed = compressed_pair () in
  (match Zindex.compression_stats comp with
  | None -> Alcotest.fail "budget index must report compression"
  | Some c ->
      check "ratio over 1.5x" true (c.Zindex.ratio >= 1.5);
      check "denser than fixed layout" true
        (c.Zindex.avg_entries_per_leaf > Zindex.avg_leaf_entries fixed));
  check "fewer leaves" true
    (Zindex.data_page_count comp < Zindex.data_page_count fixed);
  check_int "page budget surfaced" 512
    (match Zindex.page_budget comp with Some b -> b | None -> -1)

let test_compressed_mutations () =
  (* Insert/delete churn on a budget tree keeps invariants and answers. *)
  let wk, comp, fixed = compressed_pair ~n:800 () in
  let rng = W.Rng.create ~seed:23 in
  let side = Z.Space.side wk.W.Seeded.space in
  for i = 0 to 399 do
    let p = [| W.Rng.int rng side; W.Rng.int rng side |] in
    if i mod 3 = 0 then begin
      ignore (Zindex.delete comp p);
      ignore (Zindex.delete fixed p)
    end
    else begin
      Zindex.insert comp p (100_000 + i);
      Zindex.insert fixed p (100_000 + i)
    end
  done;
  check_int "same length" (Zindex.length fixed) (Zindex.length comp);
  (match Zindex.Tree.check_invariants (Zindex.tree comp) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "compressed invariants after churn: %s" m);
  (match Zindex.Tree.check_invariants (Zindex.tree fixed) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "fixed invariants after churn: %s" m);
  Array.iter
    (fun box ->
      let rc, _ = Zindex.range_search comp box in
      let rf, _ = Zindex.range_search fixed box in
      if rc <> rf then Alcotest.fail "rows differ after churn")
    (Array.sub wk.W.Seeded.query_boxes 0 60)

let test_pool_counters () =
  let wk, comp, _ = compressed_pair ~n:2000 () in
  let total = ref 0 in
  Array.iter
    (fun box ->
      let _, st = Zindex.range_search comp box in
      check "hits nonneg" true (st.Zindex.pool_hits >= 0);
      check "misses nonneg" true (st.Zindex.pool_misses >= 0);
      (* Every page access is either a hit or a miss. *)
      check "accesses covered" true
        (st.Zindex.pool_hits + st.Zindex.pool_misses
        >= st.Zindex.leaf_accesses + st.Zindex.internal_accesses);
      total := !total + st.Zindex.pool_hits + st.Zindex.pool_misses)
    (Array.sub wk.W.Seeded.query_boxes 0 40);
  check "counters move" true (!total > 0)

let () =
  Alcotest.run "zindex"
    [
      ( "unit",
        [
          Alcotest.test_case "bulk build" `Quick test_build;
          Alcotest.test_case "find/insert/delete" `Quick test_find_insert_delete;
          Alcotest.test_case "strategies agree" `Quick test_all_strategies_agree;
          Alcotest.test_case "results in z order" `Quick test_results_in_z_order;
          Alcotest.test_case "empty region" `Quick test_empty_box_region;
          Alcotest.test_case "full-space query" `Quick test_full_space_query;
          Alcotest.test_case "out-of-grid query" `Quick test_out_of_grid_query;
          Alcotest.test_case "partial match" `Quick test_partial_match;
          Alcotest.test_case "stats sanity" `Quick test_stats_sane;
          Alcotest.test_case "skip beats scan" `Quick test_skip_beats_scan;
          Alcotest.test_case "leaf_points" `Quick test_leaf_points_cover_all;
          Alcotest.test_case "skewed datasets" `Quick test_clustered_and_diagonal;
          Alcotest.test_case "3d strategies agree" `Quick test_3d_strategies_agree;
          Alcotest.test_case "4d range search" `Quick test_4d_range_search;
          Alcotest.test_case "within_distance" `Quick test_within_distance;
          Alcotest.test_case "within_distance edge cases" `Quick test_within_distance_zero_radius;
          Alcotest.test_case "nearest" `Quick test_nearest;
          Alcotest.test_case "nearest exact hit" `Quick test_nearest_exact_hit;
          Alcotest.test_case "k nearest" `Quick test_k_nearest;
          Alcotest.test_case "k nearest edges" `Quick test_k_nearest_edges;
        ] );
      ( "compressed",
        [
          Alcotest.test_case "differential vs fixed-width" `Quick
            test_compressed_differential;
          Alcotest.test_case "density and ratio" `Quick test_compressed_density;
          Alcotest.test_case "mutation churn" `Quick test_compressed_mutations;
          Alcotest.test_case "pool counters" `Quick test_pool_counters;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_strategies ]);
    ]
