(* Differential fuzz: Zpacked must agree with Bitstring — the reference
   representation — on every observation, wherever both apply (lengths up
   to Zpacked.max_bits), and refuse (None) beyond. *)

module Z = Sqp_zorder
module B = Z.Bitstring
module P = Z.Zpacked
module Rng = Sqp_workload.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let pack_exn b =
  match P.of_bitstring b with
  | Some p -> p
  | None -> Alcotest.failf "of_bitstring refused %d bits" (B.length b)

let random_bits rng len = B.init len (fun _ -> Rng.bool rng)

(* Pairs biased toward the interesting cases: exact prefixes, one-bit
   perturbations near the end, shared long prefixes — plus independent
   strings. *)
let random_pair rng =
  let a = random_bits rng (Rng.int rng (P.max_bits + 1)) in
  let b =
    match Rng.int rng 4 with
    | 0 ->
        (* extension of a *)
        let extra = Rng.int rng (P.max_bits + 1 - B.length a) in
        B.concat a (random_bits rng extra)
    | 1 when not (B.is_empty a) ->
        (* flip one bit *)
        let i = Rng.int rng (B.length a) in
        B.set a i (not (B.get a i))
    | 2 when not (B.is_empty a) ->
        (* a prefix of a *)
        B.take a (Rng.int rng (B.length a + 1))
    | _ -> random_bits rng (Rng.int rng (P.max_bits + 1))
  in
  (a, b)

let sign x = Stdlib.compare x 0

let test_agree_with_bitstring () =
  let rng = Rng.create ~seed:4242 in
  for _ = 1 to 3000 do
    let a, b = random_pair rng in
    let pa = pack_exn a and pb = pack_exn b in
    check_int "compare" (sign (B.compare a b)) (sign (P.compare pa pb));
    check "equal" (B.equal a b) (P.equal pa pb);
    check "is_prefix a b" (B.is_prefix a b) (P.is_prefix pa pb);
    check "is_prefix b a" (B.is_prefix b a) (P.is_prefix pb pa);
    check "contains" (P.is_prefix pa pb) (P.contains pa pb);
    check_int "common_prefix_len" (B.common_prefix_len a b)
      (P.common_prefix_len pa pb)
  done

let test_observation_roundtrip () =
  let rng = Rng.create ~seed:77001 in
  for _ = 1 to 500 do
    let a = random_bits rng (Rng.int rng (P.max_bits + 1)) in
    let pa = pack_exn a in
    check_int "length" (B.length a) (P.length pa);
    for i = 0 to B.length a - 1 do
      check "get" (B.get a i) (P.get pa i)
    done;
    check "to_bitstring roundtrip" true (B.equal (P.to_bitstring pa) a)
  done

let test_pad_to () =
  let rng = Rng.create ~seed:31337 in
  for _ = 1 to 500 do
    let a = random_bits rng (Rng.int rng (P.max_bits + 1)) in
    let pa = pack_exn a in
    let n = Rng.int_in rng (B.length a) P.max_bits in
    List.iter
      (fun bit ->
        check "pad_to agrees" true
          (B.equal (P.to_bitstring (P.pad_to pa n bit)) (B.pad_to a n bit)))
      [ false; true ]
  done;
  (match P.pad_to (pack_exn (B.of_string "01")) 1 false with
  | _ -> Alcotest.fail "pad_to shorter should raise"
  | exception Invalid_argument _ -> ());
  match P.pad_to P.empty (P.max_bits + 1) true with
  | _ -> Alcotest.fail "pad_to beyond max_bits should raise"
  | exception Invalid_argument _ -> ()

let test_fallback_boundary () =
  let rng = Rng.create ~seed:555 in
  (* exactly max_bits packs... *)
  let at = random_bits rng P.max_bits in
  check "126 bits pack" true (P.of_bitstring at <> None);
  check "126-bit roundtrip" true
    (B.equal (P.to_bitstring (pack_exn at)) at);
  (* ...one more does not *)
  let over = random_bits rng (P.max_bits + 1) in
  check "127 bits refused" true (P.of_bitstring over = None);
  (* pack_array is all-or-nothing *)
  check "pack_array ok" true (P.pack_array [| at; B.empty |] <> None);
  check "pack_array refuses the whole batch" true
    (P.pack_array [| at; over; B.empty |] = None)

let test_word_boundary_cases () =
  (* Hand-picked strings straddling the w0/w1 boundary at bit 63. *)
  let zeros n = B.init n (fun _ -> false) in
  let ones n = B.init n (fun _ -> true) in
  let cases =
    [
      zeros 62; zeros 63; zeros 64; ones 62; ones 63; ones 64;
      B.concat (zeros 63) (ones 1);
      B.concat (ones 63) (zeros 1);
      B.concat (zeros 62) (ones 64);
      ones 126; zeros 126; B.empty;
    ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let pa = pack_exn a and pb = pack_exn b in
          check_int "compare" (sign (B.compare a b)) (sign (P.compare pa pb));
          check "is_prefix" (B.is_prefix a b) (P.is_prefix pa pb);
          check_int "common_prefix_len" (B.common_prefix_len a b)
            (P.common_prefix_len pa pb))
        cases)
    cases

let test_shuffle_unshuffle () =
  let rng = Rng.create ~seed:90210 in
  let spaces =
    [
      Z.Space.make ~dims:2 ~depth:10;
      Z.Space.make ~dims:2 ~depth:31;
      Z.Space.make ~dims:3 ~depth:42; (* exactly 126 bits *)
      Z.Space.make ~dims:1 ~depth:61;
      Z.Space.make ~dims:7 ~depth:18; (* 126 bits, odd arity *)
    ]
  in
  List.iter
    (fun space ->
      check "fits" true (P.fits_space space);
      for _ = 1 to 100 do
        let coords =
          Array.init (Z.Space.dims space) (fun _ ->
              Rng.int rng (Z.Space.side space))
        in
        let p = P.shuffle space coords in
        let b = Z.Interleave.shuffle space coords in
        check "shuffle agrees" true (B.equal (P.to_bitstring p) b);
        let up = P.unshuffle space p and ub = Z.Interleave.unshuffle space b in
        check "unshuffle agrees" true (up = ub);
        check "coords roundtrip" true (Array.map fst up = coords)
      done)
    spaces;
  (* partial (element) z values unshuffle identically too *)
  let space = Z.Space.make ~dims:2 ~depth:10 in
  for _ = 1 to 200 do
    let z = random_bits rng (Rng.int rng (Z.Space.total_bits space + 1)) in
    check "partial unshuffle" true
      (P.unshuffle space (pack_exn z) = Z.Interleave.unshuffle space z)
  done

let test_fits_space () =
  check "2x10 fits" true (P.fits_space (Z.Space.make ~dims:2 ~depth:10));
  check "3x42 fits (126)" true (P.fits_space (Z.Space.make ~dims:3 ~depth:42));
  check "127 bits does not" false (P.fits_space (Z.Space.make ~dims:127 ~depth:1));
  check "2x64 does not" false (P.fits_space (Z.Space.make ~dims:2 ~depth:64));
  match P.shuffle (Z.Space.make ~dims:2 ~depth:64) [| 0; 0 |] with
  | _ -> Alcotest.fail "shuffle on an oversized space should raise"
  | exception Invalid_argument _ -> ()

let test_order_is_total () =
  (* Sorting packed and reference representations of the same set must
     produce the same sequence. *)
  let rng = Rng.create ~seed:60902 in
  let bits = Array.init 500 (fun _ -> random_bits rng (Rng.int rng 127)) in
  let packed = Array.map pack_exn bits in
  let b = Array.copy bits and p = Array.copy packed in
  Array.sort B.compare b;
  Array.sort P.compare p;
  Array.iteri
    (fun i pb -> check "same sort order" true (B.equal (P.to_bitstring pb) b.(i)))
    p

(* The Zrun building blocks: take / suffix_bytes / append_bytes must
   compose back to the identity at every split point, and the stored
   suffix must match a reference bit-by-bit extraction. *)
let test_surgery_roundtrip () =
  let rng = Rng.create ~seed:880 in
  for _ = 1 to 800 do
    let a = random_bits rng (Rng.int rng (P.max_bits + 1)) in
    let pa = pack_exn a in
    let s = Rng.int rng (B.length a + 1) in
    check "take agrees" true
      (B.equal (P.to_bitstring (P.take pa s)) (B.take a s));
    let tail = P.length pa - s in
    let suffix = P.suffix_bytes pa ~pos:s in
    check_int "suffix byte count" ((tail + 7) / 8) (String.length suffix);
    (* bits pack MSB-first; padding past the last bit is zero *)
    String.iteri
      (fun i c ->
        let c = Char.code c in
        for bit = 0 to 7 do
          let idx = s + (8 * i) + bit in
          let expect = idx < P.length pa && P.get pa idx in
          check "suffix bit" expect (c land (0x80 lsr bit) <> 0)
        done)
      suffix;
    check "split/rejoin identity" true
      (P.equal pa (P.append_bytes (P.take pa s) ~bytes:suffix ~pos:0 ~nbits:tail));
    (* reading the suffix out of a larger buffer, as Zrun does *)
    let embedded = "\xAA\xBB" ^ suffix ^ "\xCC" in
    check "embedded rejoin" true
      (P.equal pa (P.append_bytes (P.take pa s) ~bytes:embedded ~pos:2 ~nbits:tail))
  done;
  (* grafting a suffix onto a different prefix keeps exactly those bits *)
  let rng = Rng.create ~seed:881 in
  for _ = 1 to 300 do
    let a = pack_exn (random_bits rng (Rng.int rng (P.max_bits + 1))) in
    let s = Rng.int rng (P.length a + 1) in
    let prefix_len = Rng.int rng (P.max_bits - (P.length a - s) + 1) in
    let prefix = pack_exn (random_bits rng prefix_len) in
    let tail = P.length a - s in
    let grafted =
      P.append_bytes prefix ~bytes:(P.suffix_bytes a ~pos:s) ~pos:0 ~nbits:tail
    in
    check_int "grafted length" (prefix_len + tail) (P.length grafted);
    check "grafted prefix" true (P.equal prefix (P.take grafted prefix_len));
    for i = 0 to tail - 1 do
      check "grafted suffix bit" (P.get a (s + i)) (P.get grafted (prefix_len + i))
    done
  done

let test_surgery_guards () =
  let p = pack_exn (B.of_string "10110") in
  (match P.take p 6 with
  | _ -> Alcotest.fail "take beyond length should raise"
  | exception Invalid_argument _ -> ());
  (match P.take p (-1) with
  | _ -> Alcotest.fail "negative take should raise"
  | exception Invalid_argument _ -> ());
  (match P.suffix_bytes p ~pos:6 with
  | _ -> Alcotest.fail "suffix_bytes beyond length should raise"
  | exception Invalid_argument _ -> ());
  (match P.suffix_bytes p ~pos:(-1) with
  | _ -> Alcotest.fail "negative suffix_bytes pos should raise"
  | exception Invalid_argument _ -> ());
  let full = pack_exn (B.init P.max_bits (fun _ -> true)) in
  (match P.append_bytes full ~bytes:"\xff" ~pos:0 ~nbits:1 with
  | _ -> Alcotest.fail "append past max_bits should raise"
  | exception Invalid_argument _ -> ());
  (match P.append_bytes P.empty ~bytes:"\xff" ~pos:0 ~nbits:9 with
  | _ -> Alcotest.fail "append past the buffer should raise"
  | exception Invalid_argument _ -> ());
  (* boundary cases that must NOT raise *)
  check "empty suffix of empty" true (P.suffix_bytes P.empty ~pos:0 = "");
  check "append nothing" true
    (P.equal p (P.append_bytes p ~bytes:"" ~pos:0 ~nbits:0));
  check_int "append up to max_bits" P.max_bits
    (P.length
       (P.append_bytes (P.take full 120)
          ~bytes:(P.suffix_bytes full ~pos:120) ~pos:0 ~nbits:6))

let test_hash_consistent () =
  let rng = Rng.create ~seed:11 in
  for _ = 1 to 200 do
    let a = random_bits rng (Rng.int rng 127) in
    check_int "hash stable across conversions" (P.hash (pack_exn a))
      (P.hash (pack_exn (P.to_bitstring (pack_exn a))))
  done

let () =
  Alcotest.run "zpacked"
    [
      ( "differential",
        [
          Alcotest.test_case "agrees with Bitstring" `Quick test_agree_with_bitstring;
          Alcotest.test_case "get/length/to_bitstring" `Quick test_observation_roundtrip;
          Alcotest.test_case "pad_to" `Quick test_pad_to;
          Alcotest.test_case "sorting agreement" `Quick test_order_is_total;
        ] );
      ( "boundaries",
        [
          Alcotest.test_case ">126-bit fallback" `Quick test_fallback_boundary;
          Alcotest.test_case "word straddling" `Quick test_word_boundary_cases;
          Alcotest.test_case "fits_space" `Quick test_fits_space;
        ] );
      ( "interleaving",
        [
          Alcotest.test_case "shuffle/unshuffle" `Quick test_shuffle_unshuffle;
        ] );
      ( "bit surgery",
        [
          Alcotest.test_case "split/rejoin roundtrip" `Quick
            test_surgery_roundtrip;
          Alcotest.test_case "guards" `Quick test_surgery_guards;
        ] );
      ( "misc",
        [ Alcotest.test_case "hash" `Quick test_hash_consistent ] );
    ]
