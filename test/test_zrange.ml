module Z = Sqp_zorder
module B = Z.Bitstring
module R = Z.Zrange

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let s23 = Z.Space.make ~dims:2 ~depth:3

let test_usable () =
  check "2d depth 3" true (R.usable s23);
  check "2d depth 30" true (R.usable (Z.Space.make ~dims:2 ~depth:30));
  check "2d depth 31 too deep" false (R.usable (Z.Space.make ~dims:2 ~depth:31))

let test_of_element () =
  Alcotest.(check (pair int int)) "001" (8, 15) (R.of_element s23 (B.of_string "001"));
  Alcotest.(check (pair int int)) "root" (0, 63) (R.of_element s23 B.empty);
  Alcotest.(check (pair int int)) "pixel" (27, 27)
    (R.of_element s23 (B.of_string "011011"))

let test_to_element () =
  (match R.to_element s23 ~lo:8 ~hi:15 with
  | Some e -> Alcotest.(check string) "001" "001" (B.to_string e)
  | None -> Alcotest.fail "element expected");
  check "unaligned" true (R.to_element s23 ~lo:9 ~hi:16 = None);
  check "not power of two" true (R.to_element s23 ~lo:8 ~hi:13 = None);
  check "out of range" true (R.to_element s23 ~lo:0 ~hi:64 = None)

let test_cover_single_element () =
  (* Covering exactly one element's range yields that element. *)
  List.iter
    (fun s ->
      let e = B.of_string s in
      let lo, hi = R.of_element s23 e in
      match R.cover s23 ~lo ~hi with
      | [ e' ] -> check ("cover " ^ s) true (B.equal e e')
      | other -> Alcotest.failf "cover %s: %d elements" s (List.length other))
    [ ""; "0"; "001"; "011011"; "1111" ]

let test_cover_unaligned () =
  (* [1, 6] = {1} {2,3} {4,5} {6}: buddy decomposition. *)
  let els = R.cover s23 ~lo:1 ~hi:6 in
  Alcotest.(check (list string)) "buddy"
    [ "000001"; "00001"; "00010"; "000110" ]
    (List.map B.to_string els)

let test_cover_count () =
  for lo = 0 to 63 do
    for hi = lo to 63 do
      check_int "count" (List.length (R.cover s23 ~lo ~hi)) (R.cover_count s23 ~lo ~hi)
    done
  done

let test_elements_to_intervals () =
  let els = [ B.of_string "000001"; B.of_string "00001"; B.of_string "00010" ] in
  Alcotest.(check (list (pair int int))) "merged" [ (1, 5) ]
    (R.elements_to_intervals s23 els);
  let gap = [ B.of_string "000001"; B.of_string "00010" ] in
  Alcotest.(check (list (pair int int))) "gap" [ (1, 1); (4, 5) ]
    (R.elements_to_intervals s23 gap)

let test_total_cells () =
  check_int "cells" 7 (R.total_cells [ (1, 5); (10, 11) ])

(* Edge cases the z-prefix sharder leans on: shard boundaries are exactly
   the level-k element ranges, and clipped query intervals end at the
   2^total border. *)

let test_cover_full_space () =
  (* The whole z range is one element: the root. *)
  match R.cover s23 ~lo:0 ~hi:63 with
  | [ e ] -> check "root" true (B.is_empty e)
  | other -> Alcotest.failf "full space: %d elements" (List.length other)

let test_cover_single_cells_at_borders () =
  (* Degenerate one-pixel intervals, including both ends of the space. *)
  List.iter
    (fun z ->
      match R.cover s23 ~lo:z ~hi:z with
      | [ e ] ->
          check_int "pixel-level element" 6 (B.length e);
          check_int "right value" z (B.to_int e)
      | other -> Alcotest.failf "cell %d: %d elements" z (List.length other))
    [ 0; 1; 31; 32; 62; 63 ]

let test_cover_touching_border () =
  (* Intervals ending at the last cell: the cover must stop exactly at
     2^total - 1 and still tile. *)
  List.iter
    (fun lo ->
      let els = R.cover s23 ~lo ~hi:63 in
      let rec walk pos = function
        | [] -> pos = 64
        | e :: rest ->
            let elo, ehi = R.of_element s23 e in
            elo = pos && walk (ehi + 1) rest
      in
      check (Printf.sprintf "[%d, 63] tiles to the border" lo) true (walk lo els))
    [ 0; 1; 31; 32; 33; 62; 63 ]

let test_shard_boundaries_are_element_ranges () =
  (* Cutting [0, 2^total - 1] at the 2^k aligned boundaries gives exactly
     the level-k elements, in z order — the sharder's partition. *)
  let total = 6 in
  for k = 0 to total do
    let width = 1 lsl (total - k) in
    List.init (1 lsl k) (fun i ->
        match R.to_element s23 ~lo:(i * width) ~hi:(((i + 1) * width) - 1) with
        | Some e -> check_int (Printf.sprintf "level %d shard %d" k i) k (B.length e)
        | None -> Alcotest.failf "level %d shard %d is not an element" k i)
    |> ignore
  done;
  (* Misaligned or non-power-of-two cuts are rejected. *)
  check "misaligned" true (R.to_element s23 ~lo:1 ~hi:2 = None);
  check "spanning a boundary" true (R.to_element s23 ~lo:31 ~hi:32 = None)

let test_overlaps_interval () =
  (* The router's fan-out test over an ascending disjoint list. *)
  let ivs = [ (2, 5); (10, 10); (20, 30) ] in
  check "inside first" true (R.overlaps_interval ivs ~lo:3 ~hi:4);
  check "touching an end" true (R.overlaps_interval ivs ~lo:0 ~hi:2);
  check "single-cell interval" true (R.overlaps_interval ivs ~lo:10 ~hi:10);
  check "spanning a gap" true (R.overlaps_interval ivs ~lo:6 ~hi:12);
  check "in a gap" false (R.overlaps_interval ivs ~lo:6 ~hi:9);
  check "before everything" false (R.overlaps_interval ivs ~lo:0 ~hi:1);
  check "past everything" false (R.overlaps_interval ivs ~lo:31 ~hi:99);
  check "empty list" false (R.overlaps_interval [] ~lo:0 ~hi:63);
  check "lo > hi rejected" true
    (try
       ignore (R.overlaps_interval ivs ~lo:5 ~hi:4);
       false
     with Invalid_argument _ -> true);
  (* cover_overlaps agrees, through a real cover. *)
  let els = R.cover s23 ~lo:9 ~hi:22 in
  check "cover overlaps its own range" true (R.cover_overlaps s23 els ~lo:20 ~hi:40);
  check "cover misses a disjoint shard" false (R.cover_overlaps s23 els ~lo:23 ~hi:63)

(* Properties *)

let s6 = Z.Space.make ~dims:2 ~depth:6

let gen_interval =
  QCheck2.Gen.(
    map
      (fun (a, b) -> (min a b, max a b))
      (pair (int_bound 4095) (int_bound 4095)))

let prop_cover_exact =
  QCheck2.Test.make ~name:"cover = interval, disjoint, sorted, aligned" ~count:300
    gen_interval (fun (lo, hi) ->
      let els = R.cover s6 ~lo ~hi in
      (* Ranges are consecutive and exactly tile [lo, hi]. *)
      let rec walk pos = function
        | [] -> pos = hi + 1
        | e :: rest ->
            let elo, ehi = R.of_element s6 e in
            elo = pos && ehi <= hi && walk (ehi + 1) rest
      in
      walk lo els)

let prop_cover_minimal =
  QCheck2.Test.make ~name:"cover is canonical (no sibling pairs)" ~count:300
    gen_interval (fun (lo, hi) ->
      let els = R.cover s6 ~lo ~hi in
      (* No two adjacent output elements may be siblings (they would merge
         into the parent). *)
      let rec ok = function
        | a :: b :: rest ->
            let merged =
              match (Z.Element.parent a, Z.Element.parent b) with
              | Some pa, Some pb -> B.equal pa pb && B.get a (B.length a - 1) = false
              | _ -> false
            in
            (not merged) && ok (b :: rest)
        | _ -> true
      in
      ok els)

let prop_roundtrip_intervals =
  QCheck2.Test.make ~name:"intervals -> elements -> intervals" ~count:300
    QCheck2.Gen.(list_size (int_bound 5) gen_interval)
    (fun intervals ->
      (* Normalize to disjoint, sorted, non-adjacent. *)
      let sorted = List.sort_uniq compare intervals in
      let rec normalize = function
        | (a1, b1) :: (a2, b2) :: rest ->
            if a2 <= b1 + 1 then normalize ((a1, max b1 b2) :: rest)
            else (a1, b1) :: normalize ((a2, b2) :: rest)
        | l -> l
      in
      let normalized = normalize sorted in
      let els = R.intervals_to_elements s6 normalized in
      R.elements_to_intervals s6 els = normalized)

let prop_overlaps_naive =
  QCheck2.Test.make ~name:"overlaps_interval = naive scan" ~count:500
    QCheck2.Gen.(pair (list_size (int_bound 5) gen_interval) gen_interval)
    (fun (intervals, (lo, hi)) ->
      let sorted = List.sort_uniq compare intervals in
      let rec normalize = function
        | (a1, b1) :: (a2, b2) :: rest ->
            if a2 <= b1 + 1 then normalize ((a1, max b1 b2) :: rest)
            else (a1, b1) :: normalize ((a2, b2) :: rest)
        | l -> l
      in
      let normalized = normalize sorted in
      let naive = List.exists (fun (a, b) -> a <= hi && lo <= b) normalized in
      R.overlaps_interval normalized ~lo ~hi = naive)

let () =
  Alcotest.run "zrange"
    [
      ( "unit",
        [
          Alcotest.test_case "usable" `Quick test_usable;
          Alcotest.test_case "of_element" `Quick test_of_element;
          Alcotest.test_case "to_element" `Quick test_to_element;
          Alcotest.test_case "cover single element" `Quick test_cover_single_element;
          Alcotest.test_case "cover unaligned" `Quick test_cover_unaligned;
          Alcotest.test_case "cover_count exhaustive" `Quick test_cover_count;
          Alcotest.test_case "elements_to_intervals" `Quick test_elements_to_intervals;
          Alcotest.test_case "total_cells" `Quick test_total_cells;
          Alcotest.test_case "cover full space" `Quick test_cover_full_space;
          Alcotest.test_case "single cells at borders" `Quick
            test_cover_single_cells_at_borders;
          Alcotest.test_case "intervals touching the border" `Quick
            test_cover_touching_border;
          Alcotest.test_case "shard boundaries are element ranges" `Quick
            test_shard_boundaries_are_element_ranges;
          Alcotest.test_case "overlaps_interval" `Quick test_overlaps_interval;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_cover_exact;
            prop_cover_minimal;
            prop_roundtrip_intervals;
            prop_overlaps_naive;
          ] );
    ]
