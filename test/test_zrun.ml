(* Unit and property tests for the front-coded run codec (Zrun): exact
   roundtrips in both length modes, restart-point navigation, the
   seeded-workload compression claim, and corruption detection. *)

module Z = Sqp_zorder
module B = Z.Bitstring
module P = Z.Zpacked
module Run = Z.Zrun
module W = Sqp_workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let pack_exn b =
  match P.of_bitstring b with Some p -> p | None -> assert false

(* Sorted full-resolution z values of [n] seeded points. *)
let seeded_zs n =
  let space = Z.Space.make ~dims:2 ~depth:10 in
  let rng = W.Rng.create ~seed:77 in
  let pts = W.Datagen.uniform rng ~side:1024 ~n ~dims:2 in
  let zs = Array.map (fun p -> pack_exn (Z.Interleave.shuffle space p)) pts in
  Array.sort P.compare zs;
  (space, zs)

(* Random variable-length values (not sorted, lengths 0..60). *)
let ragged_zs n =
  let rng = W.Rng.create ~seed:4242 in
  Array.init n (fun _ ->
      let len = W.Rng.int rng 61 in
      pack_exn (B.init len (fun _ -> W.Rng.int rng 2 = 0)))

let equal_arrays a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> P.compare x y = 0 && P.length x = P.length y) a b

let test_roundtrip_fixed () =
  (* 5000 points — the standard workload's density, where neighbors
     share enough prefix bits for byte-granular front coding to win. *)
  let space, zs = seeded_zs 5000 in
  let run = Run.encode ~fixed_len:(Z.Space.total_bits space) zs in
  check "fixed mode" true (Run.fixed_len run = Some (Z.Space.total_bits space));
  check_int "count" 5000 (Run.count run);
  check "decode = input" true (equal_arrays zs (Run.decode run));
  check "validate" true (Run.validate run = Ok ());
  (* The compression claim: front-coded well under the raw bytes. *)
  check "compresses" true (Run.byte_length run < Run.raw_bytes run)

let test_roundtrip_variable_intervals () =
  let zs = ragged_zs 300 in
  List.iter
    (fun interval ->
      let run = Run.encode ~restart_interval:interval zs in
      check "variable mode" true (Run.fixed_len run = None);
      check_int "interval" interval (Run.restart_interval run);
      check "decode = input" true (equal_arrays zs (Run.decode run));
      check "validate" true (Run.validate run = Ok ()))
    [ 1; 2; 7; 16; 255 ]

let test_empty_and_singleton () =
  let empty = Run.encode [||] in
  check_int "empty count" 0 (Run.count empty);
  check "empty decode" true (Run.decode empty = [||]);
  check "empty validate" true (Run.validate empty = Ok ());
  let one = Run.encode [| pack_exn (B.of_string "1011") |] in
  check_int "singleton count" 1 (Run.count one);
  check_int "singleton len" 4 (P.length (Run.get one 0))

let test_string_roundtrip_with_offset () =
  let _, zs = seeded_zs 200 in
  let run = Run.encode ~fixed_len:20 zs in
  let s = "PREFIX" ^ Run.to_string run ^ "SUFFIX" in
  let back = Run.of_string ~pos:6 ~len:(Run.byte_length run) s in
  check "embedded parse" true (equal_arrays (Run.decode run) (Run.decode back));
  check "embedded validate" true (Run.validate back = Ok ())

let test_get_and_lower_bound () =
  let _, zs = seeded_zs 500 in
  let run = Run.encode ~restart_interval:8 ~fixed_len:20 zs in
  List.iter
    (fun i -> check "get agrees" true (P.compare (Run.get run i) zs.(i) = 0))
    [ 0; 1; 7; 8; 9; 63; 64; 255; 499 ];
  (* lower_bound against a linear scan, probing present and absent keys. *)
  let linear key =
    let rec go i =
      if i >= Array.length zs then i
      else if P.compare zs.(i) key >= 0 then i
      else go (i + 1)
    in
    go 0
  in
  let rng = W.Rng.create ~seed:5 in
  for _ = 1 to 200 do
    let key =
      if W.Rng.int rng 2 = 0 then zs.(W.Rng.int rng 500)
      else pack_exn (B.init 20 (fun _ -> W.Rng.int rng 2 = 0))
    in
    check_int "lower_bound" (linear key) (Run.lower_bound run key)
  done;
  check_int "past the end" 500
    (Run.lower_bound run (pack_exn (B.init 20 (fun _ -> true))))

let test_cursor_from_restart () =
  let zs = ragged_zs 100 in
  let run = Run.encode ~restart_interval:16 zs in
  let c = Run.cursor ~from:32 run in
  check_int "cursor index" 32 (Run.cursor_index c);
  for i = 32 to 99 do
    match Run.next c with
    | Some z -> check "cursor value" true (P.compare z zs.(i) = 0)
    | None -> Alcotest.fail "cursor ended early"
  done;
  check "cursor exhausted" true (Run.next c = None);
  (* A cursor may start at [count] (empty tail) but nowhere mid-block. *)
  check "cursor at count" true (Run.next (Run.cursor ~from:100 run) = None);
  (match Run.cursor ~from:17 run with
  | _ -> Alcotest.fail "mid-block start should raise"
  | exception Invalid_argument _ -> ())

let test_encode_guards () =
  (match Run.encode ~restart_interval:0 [||] with
  | _ -> Alcotest.fail "interval 0 should raise"
  | exception Invalid_argument _ -> ());
  (match Run.encode ~fixed_len:8 [| pack_exn (B.of_string "101") |] with
  | _ -> Alcotest.fail "length mismatch should raise"
  | exception Invalid_argument _ -> ())

let test_corruption_detected () =
  let _, zs = seeded_zs 400 in
  let run = Run.encode ~fixed_len:20 zs in
  let s = Run.to_string run in
  (* Random single-byte flips anywhere in the serialized form must
     never crash with anything but Invalid_argument, and a run that
     still validates must still decode to 400 full-length values —
     Zrun is fed attacker-grade bytes by fsck. *)
  let rng = W.Rng.create ~seed:6 in
  for _ = 1 to 120 do
    let i = W.Rng.int rng (String.length s) in
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl W.Rng.int rng 8)));
    match Run.of_string (Bytes.to_string b) with
    | exception Invalid_argument _ -> ()
    | run' -> (
        match Run.validate run' with
        | Error _ -> ()
        | Ok () ->
            let vs = Run.decode run' in
            check_int "validated run decodes fully" (Run.count run')
              (Array.length vs);
            Array.iter (fun v -> check_int "full length" 20 (P.length v)) vs)
  done;
  (* A shared-prefix byte claiming more bits than the key has. *)
  let header = 7 + (2 * (((400 - 1) / 16) + 1)) in
  let b = Bytes.of_string s in
  (* Entry 1's shared byte sits right after restart 0's 3 key bytes. *)
  Bytes.set b (header + 3) '\xff';
  (match Run.of_string (Bytes.to_string b) with
  | exception Invalid_argument _ -> ()
  | run' -> check "oversized shared prefix rejected" true (Run.validate run' <> Ok ()));
  (* Truncations are caught by parse or validate. *)
  for cut = 1 to 40 do
    let t = String.sub s 0 (String.length s - cut) in
    match Run.of_string t with
    | exception Invalid_argument _ -> ()
    | run' ->
        check "truncation detected" true (Run.validate run' <> Ok ())
  done

let () =
  Alcotest.run "zrun"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "fixed-length mode" `Quick test_roundtrip_fixed;
          Alcotest.test_case "variable mode, all intervals" `Quick
            test_roundtrip_variable_intervals;
          Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
          Alcotest.test_case "embedded in a larger string" `Quick
            test_string_roundtrip_with_offset;
        ] );
      ( "navigation",
        [
          Alcotest.test_case "get + lower_bound" `Quick test_get_and_lower_bound;
          Alcotest.test_case "cursor from restart" `Quick test_cursor_from_restart;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "encode guards" `Quick test_encode_guards;
          Alcotest.test_case "bit flips and truncation" `Quick
            test_corruption_detected;
        ] );
    ]
