(* Differential suite for the packed kernels: the fast paths of Zmerge,
   Range_search and Spatial_join must reproduce the bitstring reference
   implementations bit for bit (same rows, same order — and for range
   search, the same counters) on the seeded workloads, and the fallback
   beyond Zpacked.max_bits must stay correct. *)

module Z = Sqp_zorder
module B = Z.Bitstring
module P = Z.Zpacked
module W = Sqp_workload
module RS = Sqp_core.Range_search
module Zseq = Sqp_core.Zseq
module Zmerge = Sqp_core.Zmerge
module SJ = Sqp_relalg.Spatial_join

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let wk = lazy (W.Seeded.standard ())

(* --- Zseq unit behaviour ------------------------------------------- *)

let pack_exn b =
  match P.of_bitstring b with Some p -> p | None -> assert false

let test_zseq_sorts_stably () =
  let comparisons = ref 0 in
  let items =
    [
      (B.of_string "10", "a");
      (B.of_string "01", "b");
      (B.of_string "10", "c");
      (B.of_string "0", "d");
      (B.of_string "10", "e");
    ]
  in
  match Zseq.of_list ~comparisons items with
  | None -> Alcotest.fail "short strings must pack"
  | Some t ->
      Alcotest.(check (list string))
        "z order, ties in input order" [ "d"; "b"; "a"; "c"; "e" ]
        (List.init (Zseq.length t) (Zseq.payload t));
      check "counted sort work" true (!comparisons > 0)

let test_zseq_of_sorted_validates () =
  let zs = Array.map (fun s -> pack_exn (B.of_string s)) [| "1"; "0" |] in
  match Zseq.of_sorted zs [| 0; 1 |] with
  | _ -> Alcotest.fail "descending input should raise"
  | exception Invalid_argument _ -> (
      match Zseq.of_sorted zs [| 0 |] with
      | _ -> Alcotest.fail "length mismatch should raise"
      | exception Invalid_argument _ -> ())

let test_zseq_lower_bound () =
  let comparisons = ref 0 in
  let strings = [ "00"; "01"; "01"; "10"; "11" ] in
  let t =
    match Zseq.of_list ~comparisons (List.map (fun s -> (B.of_string s, s)) strings) with
    | Some t -> t
    | None -> assert false
  in
  let linear key =
    let rec go i = if i >= Zseq.length t then i
      else if P.compare (Zseq.z t i) key >= 0 then i
      else go (i + 1)
    in
    go 0
  in
  List.iter
    (fun s ->
      let key = pack_exn (B.of_string s) in
      check_int ("lower_bound " ^ s) (linear key)
        (Zseq.lower_bound ~comparisons t key))
    [ ""; "0"; "00"; "01"; "011"; "10"; "11"; "111" ]

let test_zseq_of_list_refuses_long () =
  let comparisons = ref 0 in
  let long = B.init (P.max_bits + 1) (fun i -> i mod 2 = 0) in
  check "long element -> None" true
    (Zseq.of_list ~comparisons [ (B.empty, 0); (long, 1) ] = None)

(* --- Zmerge: packed vs reference vs naive --------------------------- *)

let canon pairs = List.sort Stdlib.compare pairs

let test_zmerge_differential () =
  let left, right = W.Seeded.join_elements (Lazy.force wk) in
  let fast, fs = Zmerge.pairs left right in
  let ref_, rs = Zmerge.pairs_reference left right in
  check "identical pairs in identical order" true (fast = ref_);
  check_int "same pair count" fs.Zmerge.pairs rs.Zmerge.pairs;
  check_int "same item count" fs.items rs.items;
  let naive, ns = Zmerge.pairs_naive left right in
  check "multiset equals the oracle" true (canon fast = canon naive);
  check_int "naive pair count" fs.Zmerge.pairs ns.Zmerge.pairs

let test_zmerge_fallback_long_elements () =
  (* 130-bit elements exceed Zpacked.max_bits: pairs must silently use
     the reference sweep and still match the naive oracle. *)
  let base = B.init 128 (fun i -> i mod 3 = 0) in
  let extend bits = B.concat base (B.of_string bits) in
  let left = [ (base, "l0"); (extend "01", "l1"); (B.empty, "l2") ] in
  let right = [ (extend "0", "r0"); (extend "11", "r1"); (base, "r2") ] in
  let fast, _ = Zmerge.pairs left right in
  let ref_, _ = Zmerge.pairs_reference left right in
  let naive, _ = Zmerge.pairs_naive left right in
  check "fallback = reference" true (fast = ref_);
  check "fallback = oracle (multiset)" true (canon fast = canon naive)

let test_zmerge_empty_sides () =
  let some = [ (B.of_string "01", 1) ] in
  List.iter
    (fun (l, r) ->
      let fast, fs = Zmerge.pairs l r in
      let ref_, rs = Zmerge.pairs_reference l r in
      check "empty-side equal" true (fast = ref_);
      check_int "empty-side pairs" fs.Zmerge.pairs rs.Zmerge.pairs)
    [ ([], []); (some, []); ([], some) ]

(* --- Range search: packed vs reference, rows AND counters ----------- *)

let counters_equal (a : RS.counters) (b : RS.counters) =
  a.point_steps = b.point_steps
  && a.element_steps = b.element_steps
  && a.point_jumps = b.point_jumps
  && a.element_jumps = b.element_jumps
  && a.comparisons = b.comparisons

let test_range_search_differential () =
  let wk = Lazy.force wk in
  let prep = RS.prepare wk.W.Seeded.space (W.Seeded.tagged_points wk) in
  let boxes = Array.to_list (Array.sub wk.W.Seeded.query_boxes 0 120) in
  List.iteri
    (fun qi box ->
      let rows_p, cp = RS.search_plain prep box in
      let rows_pr, cpr = RS.search_plain_reference prep box in
      if rows_p <> rows_pr then Alcotest.failf "plain rows differ on box %d" qi;
      if not (counters_equal cp cpr) then
        Alcotest.failf "plain counters differ on box %d" qi;
      let rows_s, cs = RS.search_skip prep box in
      let rows_sr, csr = RS.search_skip_reference prep box in
      if rows_s <> rows_sr then Alcotest.failf "skip rows differ on box %d" qi;
      if not (counters_equal cs csr) then
        Alcotest.failf "skip counters differ on box %d" qi;
      if rows_p <> rows_s then Alcotest.failf "plain <> skip on box %d" qi)
    (wk.W.Seeded.query :: boxes)

let test_range_search_oversized_space () =
  (* 3 x 43 = 129 bits: prepare must fall back (packed path impossible)
     and the searches must still agree with a brute-force filter. *)
  let space = Z.Space.make ~dims:3 ~depth:43 in
  check "space does not fit packed" false (P.fits_space space);
  let rng = W.Rng.create ~seed:2024 in
  let pts =
    Array.init 200 (fun i ->
        (Array.init 3 (fun _ -> W.Rng.int rng 64), i))
  in
  let prep = RS.prepare space pts in
  let lo = [| 8; 8; 8 |] and hi = [| 40; 40; 40 |] in
  let box = Sqp_geom.Box.make ~lo ~hi in
  let expected =
    List.sort Stdlib.compare
      (Array.to_list pts
      |> List.filter_map (fun (p, v) ->
             let inside =
               p.(0) >= 8 && p.(0) <= 40 && p.(1) >= 8 && p.(1) <= 40
               && p.(2) >= 8 && p.(2) <= 40
             in
             if inside then Some (p, v) else None))
  in
  let rows_s, _ = RS.search_skip prep box in
  let rows_p, _ = RS.search_plain prep box in
  check "skip = brute force" true (List.sort Stdlib.compare rows_s = expected);
  check "plain = skip" true (rows_p = rows_s)

(* --- Delta-encoded runs: compressed form vs flat form ---------------- *)

let test_runs_roundtrip () =
  let wk = Lazy.force wk in
  let comparisons = ref 0 in
  let items =
    Array.to_list
      (Array.map
         (fun (p, i) -> (Z.Interleave.shuffle wk.W.Seeded.space p, i))
         (W.Seeded.tagged_points wk))
  in
  match Zseq.of_list ~comparisons items with
  | None -> Alcotest.fail "seeded z values must pack"
  | Some t ->
      (* Small blocks force multi-block runs and cursor block crossings. *)
      List.iter
        (fun block ->
          let r = Zseq.to_runs ~block t in
          check_int "runs length" (Zseq.length t) (Zseq.runs_length r);
          let back = Zseq.of_runs r in
          check "z roundtrip" true (Zseq.packed back = Zseq.packed t);
          check "payload roundtrip" true (Zseq.payloads back = Zseq.payloads t);
          (* The cursor streams the same values of_runs materializes. *)
          let next = Zseq.runs_cursor r in
          Array.iter
            (fun z ->
              match next () with
              | Some v -> check "cursor value" true (P.compare v z = 0)
              | None -> Alcotest.fail "cursor ended early")
            (Zseq.packed t);
          check "cursor exhausted" true (next () = None))
        [ 64; 4096 ];
      (* Full-resolution keys all share one length: fixed mode kicks in
         and the z blocks beat the raw encoding. *)
      let r = Zseq.to_runs t in
      check "compresses" true (Zseq.runs_bytes r < Zseq.runs_raw_bytes r)

let test_pairs_runs_differential () =
  let left, right = W.Seeded.join_elements (Lazy.force wk) in
  let comparisons = ref 0 in
  match (Zseq.of_list ~comparisons left, Zseq.of_list ~comparisons right) with
  | Some l, Some r ->
      let flat_pairs, flat_stats = Zseq.pairs ~comparisons l r in
      List.iter
        (fun block ->
          let lr = Zseq.to_runs ~block l and rr = Zseq.to_runs ~block r in
          let run_pairs, run_stats =
            Zseq.pairs_runs ~comparisons lr rr
          in
          check "identical pairs in identical order" true
            (flat_pairs = run_pairs);
          check_int "same pair count" flat_stats.Z.Zkernel.pairs
            run_stats.Z.Zkernel.pairs;
          check_int "same max stack" flat_stats.Z.Zkernel.max_stack
            run_stats.Z.Zkernel.max_stack)
        [ 16; 4096 ]
  | _ -> Alcotest.fail "seeded join elements must pack"

let test_pairs_runs_empty_sides () =
  let comparisons = ref 0 in
  let some =
    match Zseq.of_list ~comparisons [ (B.of_string "01", 1) ] with
    | Some t -> t
    | None -> assert false
  in
  let empty =
    match Zseq.of_list ~comparisons [] with Some t -> t | None -> assert false
  in
  List.iter
    (fun (l, r) ->
      let flat, _ = Zseq.pairs ~comparisons l r in
      let runs, _ =
        Zseq.pairs_runs ~comparisons (Zseq.to_runs l) (Zseq.to_runs r)
      in
      check "empty-side equal" true (flat = runs))
    [ (empty, empty); (some, empty); (empty, some) ]

(* --- Spatial join: packed merge vs reference merge ------------------ *)

let test_spatial_join_differential () =
  let wk = Lazy.force wk in
  let module R = Sqp_relalg in
  let module Rel = Sqp_relalg.Relation in
  let schema_of name z =
    R.Schema.make [ (name, R.Value.TInt); (z, R.Value.TZval) ]
  in
  let rel_of name z items =
    Rel.make ~name (schema_of name z)
      (List.map (fun (e, id) -> [| R.Value.Int id; R.Value.Zval e |]) items)
  in
  let left, right = W.Seeded.join_elements wk in
  let r = rel_of "rid" "zr" left and s = rel_of "sid" "zs" right in
  let joined, st = SJ.merge r ~zr:"zr" s ~zs:"zs" in
  let joined_ref, st_ref = SJ.merge_reference r ~zr:"zr" s ~zs:"zs" in
  check "identical tuples in identical order" true
    (Rel.tuples joined = Rel.tuples joined_ref);
  check_int "pairs" st.SJ.pairs st_ref.SJ.pairs;
  check_int "sorted_items" st.sorted_items st_ref.sorted_items;
  check_int "max_stack" st.max_stack st_ref.max_stack;
  let _, st_nested = SJ.nested_loop r ~zr:"zr" s ~zs:"zs" in
  check_int "pairs vs nested oracle" st.SJ.pairs st_nested.SJ.pairs

let () =
  Alcotest.run "zseq"
    [
      ( "zseq",
        [
          Alcotest.test_case "stable sort" `Quick test_zseq_sorts_stably;
          Alcotest.test_case "of_sorted validates" `Quick test_zseq_of_sorted_validates;
          Alcotest.test_case "lower_bound" `Quick test_zseq_lower_bound;
          Alcotest.test_case "refuses long z" `Quick test_zseq_of_list_refuses_long;
        ] );
      ( "zmerge",
        [
          Alcotest.test_case "packed = reference = oracle" `Quick test_zmerge_differential;
          Alcotest.test_case "fallback beyond 126 bits" `Quick test_zmerge_fallback_long_elements;
          Alcotest.test_case "empty sides" `Quick test_zmerge_empty_sides;
        ] );
      ( "runs",
        [
          Alcotest.test_case "roundtrip + cursor" `Quick test_runs_roundtrip;
          Alcotest.test_case "pairs_runs = pairs" `Quick test_pairs_runs_differential;
          Alcotest.test_case "empty sides" `Quick test_pairs_runs_empty_sides;
        ] );
      ( "range search",
        [
          Alcotest.test_case "packed = reference (rows + counters)" `Quick
            test_range_search_differential;
          Alcotest.test_case "129-bit space falls back" `Quick
            test_range_search_oversized_space;
        ] );
      ( "spatial join",
        [
          Alcotest.test_case "packed merge = reference merge" `Quick
            test_spatial_join_differential;
        ] );
    ]
