(* Seeded mixed-operation workload generator, shared by the
   crash-torture and live-ingest suites.

   Every schedule is a concrete, fully deterministic list of operations
   — points, payloads and query boxes are materialized at generation
   time — so the same schedule can be replayed against the live table,
   an in-memory oracle, a crash-injected store and a concurrent run, and
   any failure reproduces from the seed alone. *)

module W = Sqp_workload
module Z = Sqp_zorder

type op =
  | Insert of Sqp_geom.Point.t * int
  | Delete of Sqp_geom.Point.t  (* may target an absent point *)
  | Range of Sqp_geom.Box.t
  | Scan  (* full snapshot scan *)

type ratios = {
  p_insert : int;
  p_delete : int;
  p_range : int;
  p_scan : int;
}
(* Relative weights; they need not sum to anything in particular. *)

let default_ratios = { p_insert = 5; p_delete = 2; p_range = 3; p_scan = 1 }

let mutates = function Insert _ | Delete _ -> true | Range _ | Scan -> false

(* The payload scheme of test_crash's index workloads: distinct,
   seed-dependent, cheap to recompute. *)
let payload ~seed i = (i * 7919) + seed

let uniform_points ~seed ~side ~n ~dims =
  W.Datagen.uniform (W.Rng.create ~seed) ~side ~n ~dims

(* The fixed query battery of the crash suite: [count] random boxes from
   independent corner pairs. *)
let battery_boxes ?(seed = 9) ?(count = 15) ~side ~dims () =
  let rng = W.Rng.create ~seed in
  List.init count (fun _ ->
      let c1 = Array.init dims (fun _ -> W.Rng.int rng side) in
      let c2 = Array.init dims (fun _ -> W.Rng.int rng side) in
      Sqp_geom.Box.make
        ~lo:(Array.init dims (fun i -> min c1.(i) c2.(i)))
        ~hi:(Array.init dims (fun i -> max c1.(i) c2.(i))))

let random_box rng ~side ~dims =
  let c1 = Array.init dims (fun _ -> W.Rng.int rng side) in
  let c2 = Array.init dims (fun _ -> W.Rng.int rng side) in
  Sqp_geom.Box.make
    ~lo:(Array.init dims (fun i -> min c1.(i) c2.(i)))
    ~hi:(Array.init dims (fun i -> max c1.(i) c2.(i)))

let generate ?(ratios = default_ratios) ?(side = 256) ?(dims = 2) ~seed ~n () =
  let rng = W.Rng.create ~seed in
  let total = ratios.p_insert + ratios.p_delete + ratios.p_range + ratios.p_scan in
  if total <= 0 then invalid_arg "Workload_gen.generate: zero ratios";
  (* Points inserted so far and not yet targeted by a delete, so deletes
     usually hit (3 in 4) but sometimes chase an absent point. *)
  let alive = ref [||] and alive_n = ref 0 in
  let push p =
    if !alive_n = Array.length !alive then begin
      let bigger = Array.make (max 16 (2 * !alive_n)) [||] in
      Array.blit !alive 0 bigger 0 !alive_n;
      alive := bigger
    end;
    !alive.(!alive_n) <- p;
    incr alive_n
  in
  let take i =
    let p = !alive.(i) in
    decr alive_n;
    !alive.(i) <- !alive.(!alive_n);
    p
  in
  let fresh_point () = Array.init dims (fun _ -> W.Rng.int rng side) in
  List.init n (fun i ->
      let pick = W.Rng.int rng total in
      if pick < ratios.p_insert || !alive_n = 0 then begin
        let p = fresh_point () in
        push p;
        Insert (p, payload ~seed i)
      end
      else if pick < ratios.p_insert + ratios.p_delete then begin
        if W.Rng.int rng 4 = 0 then Delete (fresh_point ())
        else Delete (take (W.Rng.int rng !alive_n))
      end
      else if pick < ratios.p_insert + ratios.p_delete + ratios.p_range then
        Range (random_box rng ~side ~dims)
      else Scan)

(* {1 In-memory oracle}

   Entries in arrival order; a query sorts matching entries stably by z
   value, which reproduces the live table's order exactly (equal-z runs
   stay in insertion order).  A delete removes the earliest arrival at
   exactly that point — the same entry the live tree's
   first-equal-removal takes, since earlier arrivals sit earlier in the
   equal-z run. *)

module Oracle = struct
  type t = {
    space : Z.Space.t;
    mutable entries : (Sqp_geom.Point.t * int) list;  (* arrival order *)
  }

  let create space = { space; entries = [] }

  let copy o = { o with entries = o.entries }

  let insert o p v = o.entries <- o.entries @ [ (p, v) ]

  let delete o p =
    let rec go = function
      | [] -> None
      | (q, _) :: rest when Sqp_geom.Point.equal p q -> Some rest
      | e :: rest -> Option.map (fun r -> e :: r) (go rest)
    in
    match go o.entries with
    | None -> false
    | Some entries ->
        o.entries <- entries;
        true

  let in_z_order o entries =
    List.stable_sort
      (fun (p, _) (q, _) ->
        Z.Bitstring.compare
          (Z.Interleave.shuffle o.space p)
          (Z.Interleave.shuffle o.space q))
      entries

  let scan o = in_z_order o o.entries

  let range o box =
    in_z_order o
      (List.filter (fun (p, _) -> Sqp_geom.Box.contains_point box p) o.entries)

  let length o = List.length o.entries
end
